//! Erasure codes for chunk-level fault tolerance.
//!
//! PeerStripe stores each chunk of a file as `m` erasure-coded blocks placed on
//! independent nodes, so that the chunk survives node failures (Section 4.2 of
//! the paper).  This crate implements the three codecs evaluated in the paper
//! plus the *optimal* codec the paper compares them against:
//!
//! * [`null::NullCode`] — a pass-through baseline (no redundancy), the reference
//!   point of Table 2;
//! * [`xor::XorCode`] — the RAID-5-style parity-check code, default "(2,3)"
//!   configuration with 50 % storage overhead;
//! * [`online::OnlineCode`] — Maymounkov's rateless online codes with `q = 3`,
//!   `ε = 0.01`: ~3 % storage overhead, decode from any `(1 + ε)n` blocks, and
//!   the ability to mint *new* encoded blocks after failures, which the paper's
//!   recovery path relies on;
//! * [`rs::ReedSolomonCode`] — systematic GF(2⁸) Reed–Solomon: the optimal
//!   erasure code (any `n` of `m` blocks decode, with certainty) whose cost the
//!   paper's Section 4.2 trade-off discussion weighs the online code against.
//!   Built on [`gf256`] field kernels (wide-lane split-nibble `nibble64` by
//!   default, with the scalar reference kernel selectable via
//!   [`gf256::Gf256Kernel`]) and [`matrix`] linear algebra, with cache-blocked
//!   parity application and a chunk-granular column-stripe parallel encode
//!   ([`pipeline`] streams stripes to downstream placement/dissemination
//!   stages).
//!
//! [`measure`] provides the timing/size harness behind Table 2, including
//! decode timing from an exactly-minimal block subset.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod code;
pub mod gf256;
pub mod matrix;
pub mod measure;
pub mod null;
pub mod online;
pub mod pipeline;
pub mod rs;
pub mod xor;

pub use code::{DecodeError, EncodedBlock, ErasureCode};
pub use gf256::{Gf256Kernel, PreparedCoeff};
pub use matrix::GfMatrix;
pub use measure::{measure_code, CodeCost};
pub use null::NullCode;
pub use online::OnlineCode;
pub use pipeline::EncodedStripe;
pub use rs::ReedSolomonCode;
pub use xor::XorCode;
