//! The erasure-code abstraction shared by all codecs.
//!
//! A chunk of a file is divided into `n` equal-size blocks and encoded into
//! `m ≥ n` blocks; the original chunk can be reconstructed from a subset of the
//! encoded blocks (Section 4.2 of the paper).  Different codecs trade storage
//! overhead (`m/n`), the number of blocks needed for decoding, and CPU time —
//! exactly the trade-off the paper's Table 2 quantifies.

use std::fmt;

/// One encoded block, identified by its index within the chunk's encoding.
///
/// The index corresponds to the paper's `ECB` number in the block-naming
/// convention `filename_chunkNo_ECB`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedBlock {
    /// Index of the block within the chunk's encoding (0-based).
    pub index: u32,
    /// Encoded payload bytes.
    pub data: Vec<u8>,
}

impl EncodedBlock {
    /// Create an encoded block.
    pub fn new(index: u32, data: Vec<u8>) -> Self {
        EncodedBlock { index, data }
    }

    /// Size of the payload in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Why a decode attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer blocks were supplied than the codec can possibly decode from.
    NotEnoughBlocks {
        /// Number of blocks supplied.
        have: usize,
        /// Minimum number of blocks the codec needs.
        need: usize,
    },
    /// The supplied blocks were sufficient in number but did not allow full
    /// recovery (e.g. an unlucky online-code neighbourhood); retrying with more
    /// blocks usually succeeds.
    Unrecoverable {
        /// Number of source blocks still missing after decoding stalled.
        missing: usize,
    },
    /// A block index was out of range or inconsistent with the codec parameters.
    CorruptBlock {
        /// The offending block index.
        index: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::NotEnoughBlocks { have, need } => {
                write!(
                    f,
                    "not enough encoded blocks: have {have}, need at least {need}"
                )
            }
            DecodeError::Unrecoverable { missing } => {
                write!(
                    f,
                    "decoding stalled with {missing} source blocks unrecovered"
                )
            }
            DecodeError::CorruptBlock { index } => {
                write!(f, "corrupt or out-of-range block {index}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A chunk erasure codec.
///
/// Implementations are parameterised by the number of source blocks `n` the
/// chunk is divided into; [`ErasureCode::encode`] splits and pads internally, so
/// callers only handle whole chunks.
pub trait ErasureCode: Send + Sync {
    /// Human-readable codec name as used in the paper's tables ("Null", "XOR", "Online").
    fn name(&self) -> &'static str;

    /// Number of source blocks a chunk is divided into.
    fn source_blocks(&self) -> usize;

    /// Number of encoded blocks produced for a chunk.
    fn encoded_blocks(&self) -> usize;

    /// Minimum number of encoded blocks that guarantees successful decoding.
    ///
    /// For sub-optimal codes (online codes) this is the `(1 + ε)n` bound and is
    /// probabilistic — decoding from exactly this many blocks succeeds with high
    /// probability, not certainty.
    fn min_decode_blocks(&self) -> usize;

    /// Number of encoded-block losses the codec tolerates while still meeting
    /// [`ErasureCode::min_decode_blocks`].
    fn tolerable_losses(&self) -> usize {
        self.encoded_blocks()
            .saturating_sub(self.min_decode_blocks())
    }

    /// Storage overhead: encoded size over original size, e.g. 1.5 for (2,3) XOR.
    fn storage_overhead(&self) -> f64 {
        self.encoded_blocks() as f64 / self.source_blocks() as f64
    }

    /// Encode a chunk into blocks.
    fn encode(&self, chunk: &[u8]) -> Vec<EncodedBlock>;

    /// Decode a chunk of original length `chunk_len` from (a subset of) its blocks.
    fn decode(&self, blocks: &[EncodedBlock], chunk_len: usize) -> Result<Vec<u8>, DecodeError>;

    /// Regenerate only the encoded blocks listed in `missing` from the
    /// `available` survivors — the block-level repair entry point (Section 4.4:
    /// a failed participant's blocks are recreated from the surviving ones).
    ///
    /// The default path decodes the chunk and re-encodes it, returning the
    /// requested indices in ascending order; codecs with cheaper partial
    /// re-encoding (e.g. Reed–Solomon parity rows) override this.  Indices not
    /// produced by the codec are silently absent from the result.
    fn reencode(
        &self,
        available: &[EncodedBlock],
        chunk_len: usize,
        missing: &[u32],
    ) -> Result<Vec<EncodedBlock>, DecodeError> {
        let chunk = self.decode(available, chunk_len)?;
        let mut wanted: Vec<u32> = missing.to_vec();
        wanted.sort_unstable();
        wanted.dedup();
        Ok(self
            .encode(&chunk)
            .into_iter()
            .filter(|b| wanted.binary_search(&b.index).is_ok())
            .collect())
    }
}

/// Split a chunk into `n` equal-size source blocks, zero-padding the last one.
///
/// Returns `(blocks, block_size)`.  An empty chunk yields `n` empty blocks.
pub fn split_into_blocks(chunk: &[u8], n: usize) -> (Vec<Vec<u8>>, usize) {
    assert!(n > 0, "cannot split into zero blocks");
    let block_size = chunk.len().div_ceil(n);
    let mut blocks = Vec::with_capacity(n);
    for i in 0..n {
        let start = (i * block_size).min(chunk.len());
        let end = ((i + 1) * block_size).min(chunk.len());
        let mut b = chunk[start..end].to_vec();
        b.resize(block_size, 0);
        blocks.push(b);
    }
    (blocks, block_size)
}

/// Reassemble source blocks into the original chunk of length `chunk_len`.
pub fn join_blocks(blocks: &[Vec<u8>], chunk_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(chunk_len);
    for b in blocks {
        out.extend_from_slice(b);
        if out.len() >= chunk_len {
            break;
        }
    }
    out.truncate(chunk_len);
    out
}

/// XOR `src` into `dst` in place (`dst ^= src`); both must have equal length.
#[inline]
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    // Process a word at a time; the tail is handled bytewise.
    let words = dst.len() / 8;
    for i in 0..words {
        let range = i * 8..i * 8 + 8;
        let a = u64::from_ne_bytes(dst[range.clone()].try_into().unwrap()); // lint:allow(panic) -- 8-byte window: i < words == dst.len()/8
        let b = u64::from_ne_bytes(src[range.clone()].try_into().unwrap()); // lint:allow(panic) -- 8-byte window: src.len() asserted equal to dst.len()
        dst[range].copy_from_slice(&(a ^ b).to_ne_bytes());
    }
    for i in words * 8..dst.len() {
        dst[i] ^= src[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_join_round_trip() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for n in [1, 2, 3, 7, 16, 100, 1000, 1024] {
            let (blocks, size) = split_into_blocks(&data, n);
            assert_eq!(blocks.len(), n);
            assert!(blocks.iter().all(|b| b.len() == size));
            assert_eq!(join_blocks(&blocks, data.len()), data);
        }
    }

    #[test]
    fn split_empty_chunk() {
        let (blocks, size) = split_into_blocks(&[], 4);
        assert_eq!(blocks.len(), 4);
        assert_eq!(size, 0);
        assert!(blocks.iter().all(|b| b.is_empty()));
        assert!(join_blocks(&blocks, 0).is_empty());
    }

    #[test]
    fn split_pads_with_zeros() {
        let data = vec![1u8, 2, 3, 4, 5];
        let (blocks, size) = split_into_blocks(&data, 2);
        assert_eq!(size, 3);
        assert_eq!(blocks[0], vec![1, 2, 3]);
        assert_eq!(blocks[1], vec![4, 5, 0]);
    }

    #[test]
    fn xor_into_is_involutive() {
        let a: Vec<u8> = (0..37).map(|i| i as u8).collect();
        let b: Vec<u8> = (0..37).map(|i| (i * 7 + 3) as u8).collect();
        let mut c = a.clone();
        xor_into(&mut c, &b);
        assert_ne!(c, a);
        xor_into(&mut c, &b);
        assert_eq!(c, a);
    }

    #[test]
    fn encoded_block_accessors() {
        let b = EncodedBlock::new(3, vec![1, 2, 3]);
        assert_eq!(b.index, 3);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(EncodedBlock::new(0, vec![]).is_empty());
    }

    #[test]
    fn default_reencode_rebuilds_exactly_the_missing_blocks() {
        // Exercised through the XOR codec, which does not override the default.
        let code = crate::xor::XorCode::new(2, 4);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let encoded = code.encode(&data);
        // Lose one block per parity group (indices 1 and 2 here).
        let surviving: Vec<EncodedBlock> = encoded
            .iter()
            .filter(|b| b.index != 1 && b.index != 2)
            .cloned()
            .collect();
        let rebuilt = code.reencode(&surviving, data.len(), &[2, 1, 1]).unwrap();
        assert_eq!(rebuilt.len(), 2, "duplicates deduplicated");
        for b in &rebuilt {
            let original = encoded.iter().find(|o| o.index == b.index).unwrap();
            assert_eq!(b, original, "regenerated block {} differs", b.index);
        }
        // Not enough survivors propagates the decode error.
        let too_few: Vec<EncodedBlock> = encoded[..1].to_vec();
        assert!(code.reencode(&too_few, data.len(), &[5]).is_err());
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::NotEnoughBlocks { have: 1, need: 2 };
        assert!(e.to_string().contains("have 1"));
        let e = DecodeError::Unrecoverable { missing: 5 };
        assert!(e.to_string().contains("5"));
        let e = DecodeError::CorruptBlock { index: 9 };
        assert!(e.to_string().contains("9"));
    }
}
