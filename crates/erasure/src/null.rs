//! The NULL "code": a pass-through baseline.
//!
//! Table 2 of the paper compares XOR and online codes against a NULL code that
//! "simply copies the input data to the output".  It provides no redundancy —
//! losing any block loses data — but establishes the baseline cost of splitting
//! and copying a chunk.

use crate::code::{join_blocks, split_into_blocks, DecodeError, EncodedBlock, ErasureCode};

/// Pass-through codec: the chunk is split into `n` blocks and stored verbatim.
#[derive(Debug, Clone, Copy)]
pub struct NullCode {
    n: usize,
}

impl NullCode {
    /// Create a NULL code over `n` source blocks (panics if `n` is zero).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "block count must be positive");
        NullCode { n }
    }
}

impl Default for NullCode {
    /// The paper's Table 2 configuration: 4096 blocks per chunk.
    fn default() -> Self {
        NullCode::new(4096)
    }
}

impl ErasureCode for NullCode {
    fn name(&self) -> &'static str {
        "Null"
    }

    fn source_blocks(&self) -> usize {
        self.n
    }

    fn encoded_blocks(&self) -> usize {
        self.n
    }

    fn min_decode_blocks(&self) -> usize {
        self.n
    }

    fn encode(&self, chunk: &[u8]) -> Vec<EncodedBlock> {
        let (blocks, _) = split_into_blocks(chunk, self.n);
        blocks
            .into_iter()
            .enumerate()
            .map(|(i, data)| EncodedBlock::new(i as u32, data))
            .collect()
    }

    fn decode(&self, blocks: &[EncodedBlock], chunk_len: usize) -> Result<Vec<u8>, DecodeError> {
        if blocks.len() < self.n {
            return Err(DecodeError::NotEnoughBlocks {
                have: blocks.len(),
                need: self.n,
            });
        }
        let mut ordered: Vec<Option<&EncodedBlock>> = vec![None; self.n];
        for b in blocks {
            let idx = b.index as usize;
            if idx >= self.n {
                return Err(DecodeError::CorruptBlock { index: b.index });
            }
            ordered[idx] = Some(b);
        }
        if ordered.iter().any(Option::is_none) {
            let missing = ordered.iter().filter(|b| b.is_none()).count();
            return Err(DecodeError::Unrecoverable { missing });
        }
        let data: Vec<Vec<u8>> = ordered
            .into_iter()
            .map(|b| b.expect("checked above").data.clone()) // lint:allow(panic) -- every slot verified Some in the missing-block scan above
            .collect();
        Ok(join_blocks(&data, chunk_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chunk(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 256) as u8).collect()
    }

    #[test]
    fn round_trip() {
        let code = NullCode::new(16);
        let chunk = sample_chunk(10_000);
        let blocks = code.encode(&chunk);
        assert_eq!(blocks.len(), 16);
        let decoded = code.decode(&blocks, chunk.len()).unwrap();
        assert_eq!(decoded, chunk);
    }

    #[test]
    fn no_redundancy() {
        let code = NullCode::new(8);
        assert_eq!(code.tolerable_losses(), 0);
        assert_eq!(code.storage_overhead(), 1.0);
        let chunk = sample_chunk(999);
        let mut blocks = code.encode(&chunk);
        blocks.remove(3);
        assert!(matches!(
            code.decode(&blocks, chunk.len()),
            Err(DecodeError::NotEnoughBlocks { .. })
        ));
    }

    #[test]
    fn encoded_size_equals_padded_input() {
        let code = NullCode::new(10);
        let chunk = sample_chunk(1001);
        let blocks = code.encode(&chunk);
        let total: usize = blocks.iter().map(EncodedBlock::len).sum();
        assert_eq!(total, 101 * 10, "only padding overhead");
    }

    #[test]
    fn rejects_out_of_range_index() {
        let code = NullCode::new(4);
        let chunk = sample_chunk(64);
        let mut blocks = code.encode(&chunk);
        blocks[0].index = 99;
        assert!(matches!(
            code.decode(&blocks, chunk.len()),
            Err(DecodeError::CorruptBlock { index: 99 })
        ));
    }

    #[test]
    fn duplicate_blocks_do_not_substitute_for_missing_ones() {
        let code = NullCode::new(4);
        let chunk = sample_chunk(64);
        let mut blocks = code.encode(&chunk);
        blocks[1] = blocks[0].clone();
        assert!(matches!(
            code.decode(&blocks, chunk.len()),
            Err(DecodeError::Unrecoverable { missing: 1 })
        ));
    }

    #[test]
    fn default_matches_paper_table2() {
        let code = NullCode::default();
        assert_eq!(code.source_blocks(), 4096);
    }
}
