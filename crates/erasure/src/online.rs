//! Rateless *online codes* (Maymounkov, TR2003-883), the paper's preferred codec.
//!
//! Online codes are sub-optimal rateless erasure codes: from `n` source blocks an
//! unbounded stream of *check blocks* can be generated, and the original data can
//! be recovered from any `(1 + ε)·n'` of them with high probability (where
//! `n' = n·(1 + 0.55·q·ε)` counts the auxiliary blocks added by the outer code).
//! Encoding is O(1) per check block and decoding is O(n) in total, which is why
//! the paper favours them over optimal codes for very large chunks.
//!
//! The construction follows the technical report the paper cites:
//!
//! 1. **Outer code** — `0.55·q·ε·n` auxiliary blocks are created; every source
//!    block is XORed into `q` pseudo-randomly chosen auxiliary blocks.  The
//!    source plus auxiliary blocks form the *composite message*.
//! 2. **Inner code** — each check block draws a degree `d` from the online-code
//!    degree distribution ρ and XORs `d` uniformly chosen composite blocks.
//!    The (degree, neighbour) choices are derived deterministically from the
//!    check block's index, so the decoder reconstructs them without metadata.
//! 3. **Decoding** — a peeling (belief-propagation) pass recovers composite
//!    blocks from check constraints with a single unknown; a small Gaussian
//!    elimination over the residual constraints finishes off the rare stalls so
//!    that decoding is deterministic whenever the received blocks span the data.

use crate::code::{
    join_blocks, split_into_blocks, xor_into, DecodeError, EncodedBlock, ErasureCode,
};
use peerstripe_sim::DetRng;

/// Configuration and implementation of the online code.
#[derive(Debug, Clone)]
pub struct OnlineCode {
    n: usize,
    epsilon: f64,
    q: usize,
    check_blocks: usize,
    seed: u64,
    degree_cdf: Vec<f64>,
}

impl OnlineCode {
    /// Create an online code over `n` source blocks with quality parameters
    /// `epsilon` and `q`, producing `check_blocks` encoded blocks per chunk.
    ///
    /// Panics on degenerate parameters (`n = 0`, `epsilon` outside `(0, 1)`,
    /// `q = 0`, or too few check blocks to ever decode).
    pub fn new(n: usize, epsilon: f64, q: usize, check_blocks: usize) -> Self {
        assert!(n > 0, "source block count must be positive");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(q > 0, "q must be positive");
        let aux = Self::aux_count(n, epsilon, q);
        let min_needed = ((1.0 + epsilon) * (n + aux) as f64).ceil() as usize;
        assert!(
            check_blocks >= min_needed,
            "check_blocks {check_blocks} below the decode threshold {min_needed}"
        );
        let degree_cdf = Self::build_degree_cdf(epsilon);
        OnlineCode {
            n,
            epsilon,
            q,
            check_blocks,
            seed: 0x0411_13E0_C0DE_5EED,
            degree_cdf,
        }
    }

    /// The paper's Table 2 configuration: 4096 blocks per 4 MB chunk, `q = 3`,
    /// `ε = 0.01`, with enough check blocks for ≈3 % storage overhead.
    pub fn paper_default() -> Self {
        Self::with_overhead(4096, 0.01, 3, 1.03)
    }

    /// Create a code whose encoded size is about `overhead` times the source size
    /// (e.g. `1.03` for the 3 % overhead of Table 2), never below the decode
    /// threshold.
    pub fn with_overhead(n: usize, epsilon: f64, q: usize, overhead: f64) -> Self {
        assert!(overhead >= 1.0, "overhead must be at least 1.0");
        let aux = Self::aux_count(n, epsilon, q);
        let threshold = ((1.0 + epsilon) * (n + aux) as f64).ceil() as usize;
        let wanted = (overhead * n as f64).ceil() as usize;
        Self::new(n, epsilon, q, wanted.max(threshold))
    }

    /// Number of auxiliary blocks used by the outer code.
    pub fn aux_blocks(&self) -> usize {
        Self::aux_count(self.n, self.epsilon, self.q)
    }

    /// The ε quality parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The q quality parameter (aux blocks touched per source block).
    pub fn q(&self) -> usize {
        self.q
    }

    fn aux_count(n: usize, epsilon: f64, q: usize) -> usize {
        ((0.55 * q as f64 * epsilon * n as f64).ceil() as usize).max(1)
    }

    /// Build the cumulative degree distribution ρ of the inner code.
    ///
    /// `F = ceil(ln(ε²/4) / ln(1 − ε/2))`, `ρ₁ = 1 − (1 + 1/F)/(1 + ε)`,
    /// `ρᵢ = (1 − ρ₁)·F / ((F − 1)·i·(i − 1))` for `2 ≤ i ≤ F`.
    fn build_degree_cdf(epsilon: f64) -> Vec<f64> {
        let f = ((epsilon * epsilon / 4.0).ln() / (1.0 - epsilon / 2.0).ln()).ceil();
        let f = f.max(2.0);
        let rho1 = 1.0 - (1.0 + 1.0 / f) / (1.0 + epsilon);
        let rho1 = rho1.clamp(0.0, 1.0);
        // Cap the maximum degree for practicality: beyond a few hundred the tail
        // probabilities are negligible (< 1e-5 combined) and huge degrees only
        // slow encoding down.  The residual mass is folded into the cap.
        let max_degree = (f as usize).clamp(2, 512);
        let mut cdf = Vec::with_capacity(max_degree);
        let mut cum = rho1;
        cdf.push(cum);
        for i in 2..=max_degree {
            let rho_i = (1.0 - rho1) * f / ((f - 1.0) * i as f64 * (i as f64 - 1.0));
            cum += rho_i;
            cdf.push(cum.min(1.0));
        }
        let last = cdf.last_mut().expect("non-empty cdf"); // lint:allow(panic) -- cdf has >= 1 entry: degree 1 is always pushed
        *last = 1.0;
        cdf
    }

    fn sample_degree(&self, rng: &mut DetRng) -> usize {
        let u = rng.next_f64();
        match self
            .degree_cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite probabilities")) // lint:allow(panic) -- cdf entries are finite by construction (no NaN to compare)
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.degree_cdf.len()),
        }
    }

    /// Auxiliary-block assignment of the outer code: which aux blocks source
    /// block `i` is XORed into.  Deterministic in the codec seed and `i`.
    fn aux_assignment(&self, source_index: usize) -> Vec<usize> {
        let aux = self.aux_blocks();
        let mut rng =
            DetRng::new(self.seed ^ 0xA0A0_A0A0).fork_indexed("outer", source_index as u64);
        let mut picks = Vec::with_capacity(self.q);
        for _ in 0..self.q {
            picks.push(rng.index(aux));
        }
        picks.sort_unstable();
        picks.dedup();
        picks
    }

    /// Neighbourhood of check block `check_index` over the composite message
    /// (indices `0..n` are source blocks, `n..n+aux` auxiliary blocks).
    fn check_neighbours(&self, check_index: usize) -> Vec<usize> {
        let composite = self.n + self.aux_blocks();
        let mut rng =
            DetRng::new(self.seed ^ 0x1BBE_D0D0).fork_indexed("inner", check_index as u64);
        let degree = self.sample_degree(&mut rng).min(composite);
        let mut picks = Vec::with_capacity(degree);
        while picks.len() < degree {
            let candidate = rng.index(composite);
            if !picks.contains(&candidate) {
                picks.push(candidate);
            }
        }
        picks
    }
}

impl ErasureCode for OnlineCode {
    fn name(&self) -> &'static str {
        "Online"
    }

    fn source_blocks(&self) -> usize {
        self.n
    }

    fn encoded_blocks(&self) -> usize {
        self.check_blocks
    }

    fn min_decode_blocks(&self) -> usize {
        ((1.0 + self.epsilon) * (self.n + self.aux_blocks()) as f64).ceil() as usize
    }

    fn encode(&self, chunk: &[u8]) -> Vec<EncodedBlock> {
        let (sources, block_size) = split_into_blocks(chunk, self.n);
        // Outer code: build auxiliary blocks.
        let aux_count = self.aux_blocks();
        let mut aux = vec![vec![0u8; block_size]; aux_count];
        for (i, src) in sources.iter().enumerate() {
            for a in self.aux_assignment(i) {
                xor_into(&mut aux[a], src);
            }
        }
        // Composite message view used by the inner code.
        let composite: Vec<&Vec<u8>> = sources.iter().chain(aux.iter()).collect();
        // Inner code: generate check blocks.
        let mut out = Vec::with_capacity(self.check_blocks);
        for c in 0..self.check_blocks {
            let mut data = vec![0u8; block_size];
            for neighbour in self.check_neighbours(c) {
                xor_into(&mut data, composite[neighbour]);
            }
            out.push(EncodedBlock::new(c as u32, data));
        }
        out
    }

    fn decode(&self, blocks: &[EncodedBlock], chunk_len: usize) -> Result<Vec<u8>, DecodeError> {
        let composite_count = self.n + self.aux_blocks();
        let block_size = if chunk_len == 0 {
            0
        } else {
            chunk_len.div_ceil(self.n)
        };
        if blocks.is_empty() && chunk_len > 0 {
            return Err(DecodeError::NotEnoughBlocks {
                have: 0,
                need: self.min_decode_blocks(),
            });
        }

        // Constraint system over composite variables: every received check block
        // contributes one parity equation (its neighbours XOR to its payload);
        // every auxiliary block contributes one equation with RHS zero
        // (aux ^ its source blocks = 0).
        struct Constraint {
            unknowns: Vec<usize>,
            value: Vec<u8>,
        }
        let mut constraints: Vec<Constraint> = Vec::with_capacity(blocks.len() + self.aux_blocks());
        for b in blocks {
            let idx = b.index as usize;
            if idx >= self.check_blocks {
                return Err(DecodeError::CorruptBlock { index: b.index });
            }
            let mut value = b.data.clone();
            value.resize(block_size, 0);
            constraints.push(Constraint {
                unknowns: self.check_neighbours(idx),
                value,
            });
        }
        for a in 0..self.aux_blocks() {
            let mut unknowns = vec![self.n + a];
            for s in 0..self.n {
                if self.aux_assignment(s).contains(&a) {
                    unknowns.push(s);
                }
            }
            constraints.push(Constraint {
                unknowns,
                value: vec![0u8; block_size],
            });
        }

        // variable -> constraints referencing it
        let mut var_constraints: Vec<Vec<usize>> = vec![Vec::new(); composite_count];
        for (ci, c) in constraints.iter().enumerate() {
            for &v in &c.unknowns {
                var_constraints[v].push(ci);
            }
        }

        let mut solved: Vec<Option<Vec<u8>>> = vec![None; composite_count];
        let mut queue: Vec<usize> = constraints
            .iter()
            .enumerate()
            .filter(|(_, c)| c.unknowns.len() == 1)
            .map(|(i, _)| i)
            .collect();

        // Peeling phase.
        while let Some(ci) = queue.pop() {
            let (var, value) = {
                let c = &constraints[ci];
                if c.unknowns.len() != 1 {
                    continue;
                }
                (c.unknowns[0], c.value.clone())
            };
            if solved[var].is_some() {
                constraints[ci].unknowns.clear();
                continue;
            }
            solved[var] = Some(value.clone());
            constraints[ci].unknowns.clear();
            for &other in &var_constraints[var] {
                let c = &mut constraints[other];
                if let Some(pos) = c.unknowns.iter().position(|&v| v == var) {
                    c.unknowns.swap_remove(pos);
                    xor_into(&mut c.value, &value);
                    if c.unknowns.len() == 1 {
                        queue.push(other);
                    }
                }
            }
        }

        // Gaussian-elimination fallback on the residual system (usually tiny).
        if solved[..self.n].iter().any(Option::is_none) {
            let residual_vars: Vec<usize> = (0..composite_count)
                .filter(|&v| solved[v].is_none())
                .collect();
            let var_pos: std::collections::HashMap<usize, usize> = residual_vars
                .iter()
                .enumerate()
                .map(|(pos, &v)| (v, pos))
                .collect();
            let mut rows: Vec<(Vec<bool>, Vec<u8>)> = Vec::new();
            for c in &constraints {
                if c.unknowns.is_empty() {
                    continue;
                }
                let mut mask = vec![false; residual_vars.len()];
                for &v in &c.unknowns {
                    mask[var_pos[&v]] ^= true;
                }
                rows.push((mask, c.value.clone()));
            }
            // Forward elimination.
            let mut pivot_of_col: Vec<Option<usize>> = vec![None; residual_vars.len()];
            let mut next_row = 0usize;
            for (col, pivot_slot) in pivot_of_col.iter_mut().enumerate() {
                let Some(pivot) = (next_row..rows.len()).find(|&r| rows[r].0[col]) else {
                    continue;
                };
                rows.swap(next_row, pivot);
                for r in 0..rows.len() {
                    if r != next_row && rows[r].0[col] {
                        let (a, b) = if r < next_row {
                            let (lo, hi) = rows.split_at_mut(next_row);
                            (&mut lo[r], &hi[0])
                        } else {
                            let (lo, hi) = rows.split_at_mut(r);
                            (&mut hi[0], &lo[next_row])
                        };
                        for (x, y) in a.0.iter_mut().zip(b.0.iter()) {
                            *x ^= *y;
                        }
                        xor_into(&mut a.1, &b.1);
                    }
                }
                *pivot_slot = Some(next_row);
                next_row += 1;
            }
            for (col, &var) in residual_vars.iter().enumerate() {
                if let Some(row) = pivot_of_col[col] {
                    // The row must now reference only this column.
                    if rows[row]
                        .0
                        .iter()
                        .enumerate()
                        .all(|(c2, &set)| !set || c2 == col)
                    {
                        solved[var] = Some(rows[row].1.clone());
                    }
                }
            }
        }

        let missing = solved[..self.n].iter().filter(|s| s.is_none()).count();
        if missing > 0 {
            if blocks.len() < self.min_decode_blocks() {
                return Err(DecodeError::NotEnoughBlocks {
                    have: blocks.len(),
                    need: self.min_decode_blocks(),
                });
            }
            return Err(DecodeError::Unrecoverable { missing });
        }
        let sources: Vec<Vec<u8>> = solved
            .into_iter()
            .take(self.n)
            .map(|s| s.expect("checked")) // lint:allow(panic) -- first n slots verified solved before this loop
            .collect();
        Ok(join_blocks(&sources, chunk_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chunk(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = DetRng::new(seed);
        (0..len).map(|_| rng.next_u32() as u8).collect()
    }

    fn small_code() -> OnlineCode {
        // Generous redundancy keeps the probabilistic decode reliable at small n.
        OnlineCode::with_overhead(64, 0.01, 3, 1.25)
    }

    #[test]
    fn round_trip_with_all_blocks() {
        let code = small_code();
        let chunk = sample_chunk(10_000, 1);
        let blocks = code.encode(&chunk);
        assert_eq!(blocks.len(), code.encoded_blocks());
        assert_eq!(code.decode(&blocks, chunk.len()).unwrap(), chunk);
    }

    #[test]
    fn round_trip_with_losses() {
        let code = small_code();
        let chunk = sample_chunk(8_192, 2);
        let blocks = code.encode(&chunk);
        // Drop 10% of the check blocks.
        let surviving: Vec<EncodedBlock> = blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 10 != 0)
            .map(|(_, b)| b.clone())
            .collect();
        assert_eq!(code.decode(&surviving, chunk.len()).unwrap(), chunk);
    }

    #[test]
    fn round_trip_from_random_subsets() {
        let code = small_code();
        let chunk = sample_chunk(4_096, 3);
        let blocks = code.encode(&chunk);
        let mut rng = DetRng::new(99);
        for _ in 0..5 {
            let keep = code.min_decode_blocks() + 6;
            let idx = rng.sample_indices(blocks.len(), keep);
            let subset: Vec<EncodedBlock> = idx.iter().map(|&i| blocks[i].clone()).collect();
            assert_eq!(code.decode(&subset, chunk.len()).unwrap(), chunk);
        }
    }

    #[test]
    fn too_few_blocks_is_an_error() {
        let code = small_code();
        let chunk = sample_chunk(2_000, 4);
        let blocks = code.encode(&chunk);
        let few: Vec<EncodedBlock> = blocks.into_iter().take(10).collect();
        match code.decode(&few, chunk.len()) {
            Err(DecodeError::NotEnoughBlocks { have: 10, .. }) => {}
            other => panic!("expected NotEnoughBlocks, got {other:?}"),
        }
    }

    #[test]
    fn storage_overhead_is_low() {
        // The paper reports ~3% overhead for the online code (Table 2).
        let code = OnlineCode::paper_default();
        let overhead = code.storage_overhead();
        assert!(overhead > 1.0 && overhead < 1.06, "overhead {overhead}");
        assert_eq!(code.source_blocks(), 4096);
        assert!(
            code.tolerable_losses() >= 2,
            "must tolerate at least two losses"
        );
    }

    #[test]
    fn degree_distribution_is_a_cdf() {
        let cdf = OnlineCode::build_degree_cdf(0.01);
        assert!(cdf.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(
            cdf[0] > 0.0 && cdf[0] < 0.05,
            "rho_1 should be small: {}",
            cdf[0]
        );
    }

    #[test]
    fn neighbourhoods_are_deterministic() {
        let code = small_code();
        assert_eq!(code.check_neighbours(5), code.check_neighbours(5));
        assert_eq!(code.aux_assignment(7), code.aux_assignment(7));
        assert_ne!(code.check_neighbours(5), code.check_neighbours(6));
    }

    #[test]
    fn aux_block_count_matches_formula() {
        let code = OnlineCode::with_overhead(1000, 0.01, 3, 1.2);
        assert_eq!(
            code.aux_blocks(),
            (0.55f64 * 3.0 * 0.01 * 1000.0).ceil() as usize
        );
    }

    #[test]
    fn corrupt_index_rejected() {
        let code = small_code();
        let chunk = sample_chunk(512, 5);
        let mut blocks = code.encode(&chunk);
        blocks[0].index = 10_000;
        assert!(matches!(
            code.decode(&blocks, chunk.len()),
            Err(DecodeError::CorruptBlock { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "below the decode threshold")]
    fn rejects_insufficient_check_blocks() {
        let _ = OnlineCode::new(100, 0.01, 3, 50);
    }

    #[test]
    fn empty_chunk_round_trip() {
        let code = small_code();
        let blocks = code.encode(&[]);
        assert_eq!(code.decode(&blocks, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn single_byte_chunk() {
        // Tiny messages are far outside the asymptotic regime online codes are
        // designed for; a wide epsilon and generous redundancy keep the decode
        // deterministic for this edge case.
        let code = OnlineCode::with_overhead(4, 0.5, 2, 6.0);
        let chunk = vec![0xAB];
        let blocks = code.encode(&chunk);
        assert_eq!(code.decode(&blocks, 1).unwrap(), chunk);
    }
}
