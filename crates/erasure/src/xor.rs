//! XOR parity-check code (the RAID-5 style code of the paper).
//!
//! For every group of `n` source blocks an extra parity block containing their
//! XOR is produced, so a group can survive the loss of any *one* of its `n + 1`
//! blocks.  The paper's default is the "(2,3) XOR code": groups of two source
//! blocks plus one parity block, a 50 % storage overhead (Table 2).

use crate::code::{
    join_blocks, split_into_blocks, xor_into, DecodeError, EncodedBlock, ErasureCode,
};

/// Parity-check erasure code over groups of `group` source blocks.
///
/// A chunk is divided into `source_blocks` blocks which are processed in groups
/// of `group`; each group contributes one parity block.  Encoded blocks are
/// numbered so that indices `< source_blocks` are the source blocks in order and
/// indices `>= source_blocks` are the parity blocks in group order, matching the
/// sequential `ECB` numbering of the paper's naming convention.
#[derive(Debug, Clone, Copy)]
pub struct XorCode {
    group: usize,
    source: usize,
}

impl XorCode {
    /// Create an XOR parity code with the given group size over `source_blocks`
    /// total source blocks.  Panics if either is zero or if the group size does
    /// not divide the block count (keeps group bookkeeping trivial).
    pub fn new(group: usize, source_blocks: usize) -> Self {
        assert!(group > 0, "group size must be positive");
        assert!(source_blocks > 0, "block count must be positive");
        assert!(
            source_blocks.is_multiple_of(group),
            "group size {group} must divide source block count {source_blocks}"
        );
        XorCode {
            group,
            source: source_blocks,
        }
    }

    /// The paper's (2,3) configuration over 4096 source blocks (Table 2).
    pub fn paper_default() -> Self {
        XorCode::new(2, 4096)
    }

    /// Number of parity groups.
    pub fn groups(&self) -> usize {
        self.source / self.group
    }

    /// Which parity group an encoded block (source or parity) belongs to.
    pub fn group_of(&self, index: usize) -> usize {
        if index < self.source {
            index / self.group
        } else {
            index - self.source
        }
    }
}

impl Default for XorCode {
    fn default() -> Self {
        XorCode::paper_default()
    }
}

impl ErasureCode for XorCode {
    fn name(&self) -> &'static str {
        "XOR"
    }

    fn source_blocks(&self) -> usize {
        self.source
    }

    fn encoded_blocks(&self) -> usize {
        self.source + self.groups()
    }

    fn min_decode_blocks(&self) -> usize {
        // Any single loss per group is tolerable; in the worst case all losses hit
        // the same group, so only one loss is guaranteed tolerable overall.
        self.encoded_blocks() - 1
    }

    fn encode(&self, chunk: &[u8]) -> Vec<EncodedBlock> {
        let (blocks, block_size) = split_into_blocks(chunk, self.source);
        let mut out: Vec<EncodedBlock> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| EncodedBlock::new(i as u32, b.clone()))
            .collect();
        for g in 0..self.groups() {
            let mut parity = vec![0u8; block_size];
            for b in &blocks[g * self.group..(g + 1) * self.group] {
                xor_into(&mut parity, b);
            }
            out.push(EncodedBlock::new((self.source + g) as u32, parity));
        }
        out
    }

    fn decode(&self, blocks: &[EncodedBlock], chunk_len: usize) -> Result<Vec<u8>, DecodeError> {
        let total = self.encoded_blocks();
        // Group the available blocks.
        let mut by_index: Vec<Option<&EncodedBlock>> = vec![None; total];
        for b in blocks {
            let idx = b.index as usize;
            if idx >= total {
                return Err(DecodeError::CorruptBlock { index: b.index });
            }
            by_index[idx] = Some(b);
        }
        let block_size = blocks.first().map(|b| b.len()).unwrap_or(0);
        let mut sources: Vec<Option<Vec<u8>>> = vec![None; self.source];
        for (idx, b) in by_index.iter().enumerate().take(self.source) {
            if let Some(b) = b {
                sources[idx] = Some(b.data.clone());
            }
        }
        // Recover missing source blocks group by group using the parity block.
        let mut missing_total = 0usize;
        for g in 0..self.groups() {
            let range = g * self.group..(g + 1) * self.group;
            let missing: Vec<usize> = range.clone().filter(|i| sources[*i].is_none()).collect();
            match missing.len() {
                0 => {}
                1 => {
                    let parity_idx = self.source + g;
                    let Some(parity) = by_index[parity_idx] else {
                        missing_total += 1;
                        continue;
                    };
                    let mut rec = parity.data.clone();
                    rec.resize(block_size, 0);
                    for i in range {
                        if i != missing[0] {
                            if let Some(src) = &sources[i] {
                                xor_into(&mut rec, src);
                            }
                        }
                    }
                    sources[missing[0]] = Some(rec);
                }
                k => missing_total += k,
            }
        }
        if missing_total > 0 {
            if blocks.len() < self.min_decode_blocks() {
                return Err(DecodeError::NotEnoughBlocks {
                    have: blocks.len(),
                    need: self.min_decode_blocks(),
                });
            }
            return Err(DecodeError::Unrecoverable {
                missing: missing_total,
            });
        }
        let data: Vec<Vec<u8>> = sources.into_iter().map(|s| s.expect("recovered")).collect(); // lint:allow(panic) -- recovery loop above fills every missing source slot
        Ok(join_blocks(&data, chunk_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerstripe_sim::DetRng;

    fn sample_chunk(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = DetRng::new(seed);
        (0..len).map(|_| rng.next_u32() as u8).collect()
    }

    #[test]
    fn round_trip_all_blocks() {
        let code = XorCode::new(2, 8);
        let chunk = sample_chunk(10_000, 1);
        let blocks = code.encode(&chunk);
        assert_eq!(blocks.len(), 12);
        assert_eq!(code.decode(&blocks, chunk.len()).unwrap(), chunk);
    }

    #[test]
    fn recovers_one_loss_per_group() {
        let code = XorCode::new(2, 8);
        let chunk = sample_chunk(4321, 2);
        let blocks = code.encode(&chunk);
        // Remove one source block from every group (indices 0, 2, 4, 6).
        let surviving: Vec<EncodedBlock> = blocks
            .iter()
            .filter(|b| ![0u32, 2, 4, 6].contains(&b.index))
            .cloned()
            .collect();
        assert_eq!(code.decode(&surviving, chunk.len()).unwrap(), chunk);
    }

    #[test]
    fn losing_a_parity_block_is_harmless() {
        let code = XorCode::new(2, 4);
        let chunk = sample_chunk(100, 3);
        let blocks = code.encode(&chunk);
        let surviving: Vec<EncodedBlock> = blocks
            .iter()
            .filter(|b| (b.index as usize) < code.source_blocks())
            .cloned()
            .collect();
        assert_eq!(code.decode(&surviving, chunk.len()).unwrap(), chunk);
    }

    #[test]
    fn two_losses_in_one_group_fail() {
        let code = XorCode::new(2, 4);
        let chunk = sample_chunk(1000, 4);
        let blocks = code.encode(&chunk);
        // Group 0 consists of source blocks 0, 1 and parity block 4; drop 0 and 1.
        let surviving: Vec<EncodedBlock> = blocks
            .iter()
            .filter(|b| b.index != 0 && b.index != 1)
            .cloned()
            .collect();
        assert!(
            code.decode(&surviving, chunk.len()).is_err(),
            "two losses in the same (2,3) group must be unrecoverable"
        );
    }

    #[test]
    fn storage_overhead_matches_paper() {
        // (2,3) XOR: 50 % overhead, as reported in Table 2.
        let code = XorCode::paper_default();
        assert!((code.storage_overhead() - 1.5).abs() < 1e-12);
        assert_eq!(code.encoded_blocks(), 6144);
        assert_eq!(code.tolerable_losses(), 1);
    }

    #[test]
    fn group_of_maps_blocks_correctly() {
        let code = XorCode::new(2, 8);
        assert_eq!(code.group_of(0), 0);
        assert_eq!(code.group_of(1), 0);
        assert_eq!(code.group_of(2), 1);
        assert_eq!(code.group_of(8), 0, "first parity block belongs to group 0");
        assert_eq!(code.group_of(11), 3);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn group_must_divide_block_count() {
        let _ = XorCode::new(3, 8);
    }

    #[test]
    fn rejects_out_of_range_index() {
        let code = XorCode::new(2, 4);
        let chunk = sample_chunk(100, 5);
        let mut blocks = code.encode(&chunk);
        blocks[0].index = 1000;
        assert!(matches!(
            code.decode(&blocks, chunk.len()),
            Err(DecodeError::CorruptBlock { .. })
        ));
    }

    #[test]
    fn empty_chunk_round_trip() {
        let code = XorCode::new(2, 4);
        let blocks = code.encode(&[]);
        assert_eq!(code.decode(&blocks, 0).unwrap(), Vec::<u8>::new());
    }
}
