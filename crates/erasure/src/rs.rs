//! Systematic Reed–Solomon erasure coding over GF(2⁸) — the *optimal* codec
//! the paper's Table 2 discussion compares the online code against.
//!
//! A chunk is split into `data` source blocks and `parity` extra blocks are
//! derived from them, for `m = data + parity ≤ 256` encoded blocks total.
//! **Any** `data` of the `m` blocks reconstruct the chunk — the
//! information-theoretic optimum — in contrast to the online code's
//! probabilistic `(1 + ε)·n'` bound.  The price is quadratic encode cost and a
//! matrix inversion on the decode path, exactly the trade-off that makes the
//! paper prefer online codes for very large block counts.
//!
//! The encode matrix is derived from a Vandermonde matrix put in systematic
//! form ([`GfMatrix::systematic`]): the first `data` encoded blocks are the
//! source blocks verbatim and every `data`-row submatrix stays invertible.
//!
//! # Encode engine
//!
//! Parity generation runs on the [`gf256`] slice kernels (selectable via
//! [`ReedSolomonCode::with_kernel`]; the wide-lane `nibble64` kernel is the
//! default) and is **cache-blocked**: every coefficient's kernel tables are
//! prepared once per encode ([`gf256::PreparedCoeff`]), then the parity
//! columns are walked in L1-sized tiles ([`TILE_BYTES`]) with the source tile
//! reused across all parity rows while it is hot.  Parallelism is
//! **chunk-granular** rather than parity-row-granular: workers own disjoint
//! *column stripes* of every parity block (so a single stripe touches each
//! cache line once, and the split does not degenerate when `parity <
//! workers`).  [`ReedSolomonCode::encode_with_workers`] exposes the worker
//! count; [`ReedSolomonCode::parallel_encode`] sizes it from
//! `available_parallelism()` and — on a 1-CPU host — takes the serial path
//! with **zero** thread spawns.  The streaming stage form of the same split
//! lives in [`crate::pipeline`].

use crate::code::{join_blocks, split_into_blocks, DecodeError, EncodedBlock, ErasureCode};
use crate::gf256::{self, Gf256Kernel, PreparedCoeff};
use crate::matrix::GfMatrix;
use crate::pipeline;
use std::ops::Range;

/// Parity workloads at least this large (parity rows × block size) are sharded
/// over threads by the default [`ErasureCode::encode`] path.
pub const DEFAULT_PARALLEL_MIN_BYTES: usize = 1 << 20;

/// Tile width (in bytes) for cache-blocked parity application.  One source
/// tile plus one parity tile per row must fit in L1/L2 alongside the kernel
/// tables; 16 KiB keeps `tile × (1 + parity_rows_in_flight)` well under
/// typical 256 KiB L2 slices while amortising loop overhead.
pub(crate) const TILE_BYTES: usize = 16 * 1024;

/// Workers get at least this many parity columns each; below that the spawn
/// and join overhead outweighs the arithmetic.
const MIN_WORKER_SPAN_BYTES: usize = 4 * 1024;

/// Systematic Reed–Solomon code: `data` source blocks, `parity` parity blocks,
/// any `data` of the `data + parity` encoded blocks decode.
#[derive(Debug, Clone)]
pub struct ReedSolomonCode {
    data: usize,
    parity: usize,
    /// The bottom `parity × data` rows of the systematic encode matrix; the
    /// top `data` rows are the identity and are never materialised.
    coef: GfMatrix,
    parallel_min_bytes: usize,
    kernel: Gf256Kernel,
}

impl ReedSolomonCode {
    /// Create a Reed–Solomon code with `data` source and `parity` parity
    /// blocks.  Panics unless `data ≥ 1`, `parity ≥ 1` and
    /// `data + parity ≤ 256` (the field only has 256 evaluation points).
    pub fn new(data: usize, parity: usize) -> Self {
        assert!(data >= 1, "need at least one data block");
        assert!(parity >= 1, "need at least one parity block");
        assert!(
            data + parity <= 256,
            "GF(256) Reed-Solomon supports at most 256 blocks, got {}",
            data + parity
        );
        let enc = GfMatrix::vandermonde(data + parity, data)
            .systematic()
            .expect("top square of a Vandermonde matrix is invertible"); // lint:allow(panic) -- Vandermonde top square over distinct points is provably invertible
        let parity_rows: Vec<usize> = (data..data + parity).collect();
        ReedSolomonCode {
            data,
            parity,
            coef: enc.select_rows(&parity_rows),
            parallel_min_bytes: DEFAULT_PARALLEL_MIN_BYTES,
            kernel: Gf256Kernel::best(),
        }
    }

    /// Override the parity-workload size (in bytes) above which the default
    /// encode path goes parallel.  `usize::MAX` forces serial encoding.
    pub fn with_parallel_threshold(mut self, bytes: usize) -> Self {
        self.parallel_min_bytes = bytes;
        self
    }

    /// Pin the GF(256) slice kernel (default: [`Gf256Kernel::best`]).  The
    /// `scalar` kernel is the reference implementation; both produce
    /// byte-identical blocks.
    pub fn with_kernel(mut self, kernel: Gf256Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The GF(256) slice kernel this code encodes and decodes with.
    pub fn kernel(&self) -> Gf256Kernel {
        self.kernel
    }

    /// Number of data blocks (also the decode threshold).
    pub fn data(&self) -> usize {
        self.data
    }

    /// Number of parity blocks (the tolerable losses).
    pub fn parity(&self) -> usize {
        self.parity
    }

    /// Prepare every parity coefficient's kernel tables once, so the tiled
    /// loops below never rebuild them per tile.
    pub(crate) fn prepared_parity_matrix(&self) -> Vec<Vec<PreparedCoeff>> {
        (0..self.parity)
            .map(|r| {
                (0..self.data)
                    .map(|j| PreparedCoeff::new(self.kernel, self.coef.get(r, j)))
                    .collect()
            })
            .collect()
    }

    fn assemble(&self, sources: Vec<Vec<u8>>, parity: Vec<Vec<u8>>) -> Vec<EncodedBlock> {
        sources
            .into_iter()
            .chain(parity)
            .enumerate()
            .map(|(i, b)| EncodedBlock::new(i as u32, b))
            .collect()
    }

    /// Re-encode exactly the rows in `rows` (ascending, deduplicated by the
    /// caller) from a decoded chunk: source rows are sliced straight out of the
    /// chunk, parity rows run only their own coefficient row — so repairing one
    /// lost block costs one row of GF multiply-adds, not a full encode.
    fn reencode_rows(&self, chunk: &[u8], rows: &[u32]) -> Vec<EncodedBlock> {
        let (sources, block_size) = split_into_blocks(chunk, self.data);
        rows.iter()
            .filter(|&&r| (r as usize) < self.data + self.parity)
            .map(|&r| {
                let data = if (r as usize) < self.data {
                    sources[r as usize].clone()
                } else {
                    let mut out = vec![0u8; block_size];
                    for (j, src) in sources.iter().enumerate() {
                        gf256::mul_add_slice_with(
                            self.kernel,
                            self.coef.get(r as usize - self.data, j),
                            src,
                            &mut out,
                        );
                    }
                    out
                };
                EncodedBlock::new(r, data)
            })
            .collect()
    }

    /// Encode on the calling thread only.
    pub fn encode_serial(&self, chunk: &[u8]) -> Vec<EncodedBlock> {
        self.encode_with_workers(chunk, 1)
    }

    /// Encode with parity columns sharded over up to `workers`
    /// `std::thread::scope` workers (chunk-granular column stripes).
    ///
    /// Produces bit-identical output to [`ReedSolomonCode::encode_serial`]
    /// for every worker count.  `workers <= 1` runs entirely on the calling
    /// thread — zero spawns (pinned by a spawn-counting test) — and the
    /// effective worker count is capped so every stripe keeps at least a few
    /// KiB of parity columns.
    pub fn encode_with_workers(&self, chunk: &[u8], workers: usize) -> Vec<EncodedBlock> {
        let (sources, block_size) = split_into_blocks(chunk, self.data);
        let prepared = self.prepared_parity_matrix();
        let mut parity: Vec<Vec<u8>> = (0..self.parity).map(|_| vec![0u8; block_size]).collect();
        let workers = workers.clamp(1, block_size.div_ceil(MIN_WORKER_SPAN_BYTES).max(1));
        if workers <= 1 {
            let mut outs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
            apply_parity_stripe(&prepared, &sources, 0..block_size, &mut outs);
            return self.assemble(sources, parity);
        }
        let spans = column_spans(block_size, workers);
        // Split every parity row at the span boundaries and regroup the
        // pieces per worker: job `w` owns columns `spans[w]` of ALL rows.
        let mut jobs: Vec<Vec<&mut [u8]>> = spans
            .iter()
            .map(|_| Vec::with_capacity(self.parity))
            .collect();
        for row in parity.iter_mut() {
            let mut rest: &mut [u8] = row.as_mut_slice();
            for (job, span) in jobs.iter_mut().zip(&spans) {
                let (piece, tail) = rest.split_at_mut(span.len());
                job.push(piece);
                rest = tail;
            }
        }
        let sources_ref = &sources;
        let prepared_ref = &prepared;
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .into_iter()
                .zip(spans)
                .map(|(mut outs, span)| {
                    pipeline::note_spawn();
                    s.spawn(move || apply_parity_stripe(prepared_ref, sources_ref, span, &mut outs))
                })
                .collect();
            for h in handles {
                h.join().expect("parity worker panicked"); // lint:allow(panic) -- worker panic is unrecoverable; propagate it to the caller
            }
        });
        self.assemble(sources, parity)
    }

    /// Encode with the worker count sized from `available_parallelism()`.
    ///
    /// On a single-CPU host this is exactly [`ReedSolomonCode::encode_serial`]
    /// — no threads are spawned.
    pub fn parallel_encode(&self, chunk: &[u8]) -> Vec<EncodedBlock> {
        self.encode_with_workers(chunk, available_workers())
    }
}

/// `available_parallelism()`, defaulting to 1 when the host cannot say.
pub(crate) fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `0..block_size` into `workers` contiguous column spans (the first
/// `block_size % workers` spans one byte larger).
pub(crate) fn column_spans(block_size: usize, workers: usize) -> Vec<Range<usize>> {
    let per = block_size / workers;
    let rem = block_size % workers;
    let mut spans = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = per + usize::from(w < rem);
        spans.push(start..start + len);
        start += len;
    }
    spans
}

/// Accumulate every parity row's coefficients over columns `cols` of the
/// source blocks, cache-blocked: tiles are outermost so one source tile is
/// streamed through all parity rows while it is hot in L1/L2.
///
/// `outs[r]` is the slice of parity row `r` covering exactly `cols` (workers
/// hand in disjoint `split_at_mut` views of the full rows); it must be
/// zero-initialised.
pub(crate) fn apply_parity_stripe(
    prepared: &[Vec<PreparedCoeff>],
    sources: &[Vec<u8>],
    cols: Range<usize>,
    outs: &mut [&mut [u8]],
) {
    debug_assert_eq!(prepared.len(), outs.len());
    let mut tile_start = cols.start;
    while tile_start < cols.end {
        let tile_end = (tile_start + TILE_BYTES).min(cols.end);
        for (row, out) in prepared.iter().zip(outs.iter_mut()) {
            let dst = &mut out[tile_start - cols.start..tile_end - cols.start];
            for (coeff, src) in row.iter().zip(sources) {
                coeff.mul_add(&src[tile_start..tile_end], dst);
            }
        }
        tile_start = tile_end;
    }
}

impl ErasureCode for ReedSolomonCode {
    fn name(&self) -> &'static str {
        "ReedSolomon"
    }

    fn source_blocks(&self) -> usize {
        self.data
    }

    fn encoded_blocks(&self) -> usize {
        self.data + self.parity
    }

    /// Exactly `data` — the optimal bound, with certainty (not probabilistic).
    fn min_decode_blocks(&self) -> usize {
        self.data
    }

    fn encode(&self, chunk: &[u8]) -> Vec<EncodedBlock> {
        let block_size = chunk.len().div_ceil(self.data);
        if self.parity >= 2 && self.parity * block_size >= self.parallel_min_bytes {
            self.parallel_encode(chunk)
        } else {
            self.encode_serial(chunk)
        }
    }

    /// Partial re-encode: decode once, then compute only the requested rows.
    fn reencode(
        &self,
        available: &[EncodedBlock],
        chunk_len: usize,
        missing: &[u32],
    ) -> Result<Vec<EncodedBlock>, DecodeError> {
        let chunk = self.decode(available, chunk_len)?;
        let mut wanted: Vec<u32> = missing.to_vec();
        wanted.sort_unstable();
        wanted.dedup();
        Ok(self.reencode_rows(&chunk, &wanted))
    }

    fn decode(&self, blocks: &[EncodedBlock], chunk_len: usize) -> Result<Vec<u8>, DecodeError> {
        if chunk_len == 0 {
            return Ok(Vec::new());
        }
        let total = self.data + self.parity;
        let block_size = chunk_len.div_ceil(self.data);
        // First-seen payload per encoded-block index.
        let mut have: Vec<Option<&EncodedBlock>> = vec![None; total];
        let mut distinct = 0usize;
        for b in blocks {
            let idx = b.index as usize;
            if idx >= total {
                return Err(DecodeError::CorruptBlock { index: b.index });
            }
            if have[idx].is_none() {
                have[idx] = Some(b);
                distinct += 1;
            }
        }
        if distinct < self.data {
            return Err(DecodeError::NotEnoughBlocks {
                have: distinct,
                need: self.data,
            });
        }
        let normalise = |b: &EncodedBlock| {
            let mut v = b.data.clone();
            v.resize(block_size, 0);
            v
        };
        // Fast path: all source blocks survived — the code is systematic.
        if have[..self.data].iter().all(Option::is_some) {
            let sources: Vec<Vec<u8>> = have[..self.data]
                .iter()
                .map(|b| normalise(b.expect("checked"))) // lint:allow(panic) -- all data rows verified Some on the branch condition
                .collect();
            return Ok(join_blocks(&sources, chunk_len));
        }
        // Pick `data` surviving rows — source rows first (identity rows keep
        // the decode matrix sparse), then parity rows to fill up.
        let mut chosen: Vec<usize> = (0..self.data).filter(|&i| have[i].is_some()).collect();
        chosen.extend((self.data..total).filter(|&i| have[i].is_some()));
        chosen.truncate(self.data);
        // Decode matrix: the chosen rows of the systematic encode matrix.
        let mut dec = GfMatrix::zero(self.data, self.data);
        for (r, &idx) in chosen.iter().enumerate() {
            if idx < self.data {
                dec.set(r, idx, 1);
            } else {
                for c in 0..self.data {
                    dec.set(r, c, self.coef.get(idx - self.data, c));
                }
            }
        }
        let Some(inv) = dec.invert() else {
            // Mathematically unreachable for a Vandermonde-derived code; kept
            // as a defensive error rather than a panic on corrupted input.
            let missing = (0..self.data).filter(|&i| have[i].is_none()).count();
            return Err(DecodeError::Unrecoverable { missing });
        };
        let received: Vec<Vec<u8>> = chosen
            .iter()
            .map(|&idx| normalise(have[idx].expect("chosen rows exist"))) // lint:allow(panic) -- chosen only collects indices with have[idx].is_some()
            .collect();
        let mut sources: Vec<Vec<u8>> = Vec::with_capacity(self.data);
        for (j, surviving) in have.iter().enumerate().take(self.data) {
            if let Some(b) = surviving {
                sources.push(normalise(b));
                continue;
            }
            let mut out = vec![0u8; block_size];
            for (i, rec) in received.iter().enumerate() {
                gf256::mul_add_slice_with(self.kernel, inv.get(j, i), rec, &mut out);
            }
            sources.push(out);
        }
        Ok(join_blocks(&sources, chunk_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerstripe_sim::DetRng;

    fn sample_chunk(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = DetRng::new(seed);
        (0..len).map(|_| rng.next_u32() as u8).collect()
    }

    #[test]
    fn round_trip_all_blocks() {
        let code = ReedSolomonCode::new(4, 2);
        let chunk = sample_chunk(10_000, 1);
        let blocks = code.encode(&chunk);
        assert_eq!(blocks.len(), 6);
        assert_eq!(code.decode(&blocks, chunk.len()).unwrap(), chunk);
    }

    #[test]
    fn decodes_from_every_minimal_subset() {
        // The optimality claim, exhaustively: all C(6,4) = 15 subsets work.
        let code = ReedSolomonCode::new(4, 2);
        let chunk = sample_chunk(4_321, 2);
        let blocks = code.encode(&chunk);
        let m = blocks.len();
        let mut subsets = 0;
        for mask in 0u32..1 << m {
            if mask.count_ones() as usize != code.min_decode_blocks() {
                continue;
            }
            let subset: Vec<EncodedBlock> = blocks
                .iter()
                .filter(|b| mask & (1 << b.index) != 0)
                .cloned()
                .collect();
            assert_eq!(
                code.decode(&subset, chunk.len()).unwrap(),
                chunk,
                "subset mask {mask:b} failed"
            );
            subsets += 1;
        }
        assert_eq!(subsets, 15);
    }

    #[test]
    fn below_threshold_is_not_enough() {
        let code = ReedSolomonCode::new(5, 3);
        let chunk = sample_chunk(1_000, 3);
        let blocks = code.encode(&chunk);
        let few: Vec<EncodedBlock> = blocks.into_iter().take(4).collect();
        match code.decode(&few, chunk.len()) {
            Err(DecodeError::NotEnoughBlocks { have: 4, need: 5 }) => {}
            other => panic!("expected NotEnoughBlocks, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_indices_do_not_count_twice() {
        let code = ReedSolomonCode::new(3, 2);
        let chunk = sample_chunk(500, 4);
        let blocks = code.encode(&chunk);
        let dups = vec![blocks[0].clone(), blocks[0].clone(), blocks[1].clone()];
        assert!(matches!(
            code.decode(&dups, chunk.len()),
            Err(DecodeError::NotEnoughBlocks { have: 2, need: 3 })
        ));
    }

    #[test]
    fn rejects_out_of_range_index() {
        let code = ReedSolomonCode::new(3, 2);
        let chunk = sample_chunk(100, 5);
        let mut blocks = code.encode(&chunk);
        blocks[1].index = 99;
        assert!(matches!(
            code.decode(&blocks, chunk.len()),
            Err(DecodeError::CorruptBlock { index: 99 })
        ));
    }

    #[test]
    fn parallel_encode_matches_serial() {
        let code = ReedSolomonCode::new(16, 8);
        for len in [0usize, 1, 1_000, 100_000, 1 << 20] {
            let chunk = sample_chunk(len, 6);
            assert_eq!(
                code.parallel_encode(&chunk),
                code.encode_serial(&chunk),
                "len {len}"
            );
        }
    }

    #[test]
    fn every_worker_count_matches_serial() {
        // Column striping must be invisible in the output for any split,
        // including worker counts above the span cap and above block_size.
        let code = ReedSolomonCode::new(5, 3);
        let chunk = sample_chunk(300_000, 11);
        let serial = code.encode_serial(&chunk);
        for workers in [2usize, 3, 4, 7, 64] {
            assert_eq!(
                code.encode_with_workers(&chunk, workers),
                serial,
                "workers {workers}"
            );
        }
    }

    #[test]
    fn single_worker_spawns_no_threads() {
        // The 1-CPU degenerate case: workers <= 1 must run entirely on the
        // calling thread.  The spawn counter is thread-local, so parallel
        // test execution cannot perturb it.
        let code = ReedSolomonCode::new(8, 4);
        let chunk = sample_chunk(1 << 20, 12);
        let before = pipeline::spawned_workers();
        let blocks = code.encode_with_workers(&chunk, 1);
        assert_eq!(pipeline::spawned_workers(), before, "serial path spawned");
        assert_eq!(blocks, code.encode_serial(&chunk));
        // And the threaded path does spawn (counted from this thread).
        let threaded = code.encode_with_workers(&chunk, 2);
        assert_eq!(pipeline::spawned_workers(), before + 2);
        assert_eq!(threaded, blocks);
    }

    #[test]
    fn tiny_blocks_do_not_spawn() {
        // The span cap folds sub-4KiB parity blocks back to the serial path
        // even when many workers are requested.
        let code = ReedSolomonCode::new(4, 2);
        let chunk = sample_chunk(1_000, 13);
        let before = pipeline::spawned_workers();
        let _ = code.encode_with_workers(&chunk, 8);
        assert_eq!(pipeline::spawned_workers(), before);
    }

    #[test]
    fn kernels_produce_identical_blocks() {
        let chunk = sample_chunk(200_000, 14);
        let reference = ReedSolomonCode::new(8, 4)
            .with_kernel(Gf256Kernel::Scalar)
            .encode_serial(&chunk);
        for kernel in Gf256Kernel::ALL {
            let code = ReedSolomonCode::new(8, 4).with_kernel(kernel);
            assert_eq!(code.kernel(), kernel);
            assert_eq!(code.encode_serial(&chunk), reference, "kernel {kernel}");
            assert_eq!(
                code.encode_with_workers(&chunk, 3),
                reference,
                "kernel {kernel} striped"
            );
        }
    }

    #[test]
    fn cross_kernel_decode_round_trip() {
        // Blocks encoded under one kernel decode under the other: the kernels
        // compute the same field, so artifacts are interchangeable.
        let chunk = sample_chunk(5_000, 15);
        let scalar = ReedSolomonCode::new(5, 3).with_kernel(Gf256Kernel::Scalar);
        let fast = ReedSolomonCode::new(5, 3).with_kernel(Gf256Kernel::Nibble64);
        let blocks = scalar.encode(&chunk);
        let subset: Vec<EncodedBlock> = blocks.into_iter().skip(3).collect();
        assert_eq!(fast.decode(&subset, chunk.len()).unwrap(), chunk);
        let blocks = fast.encode(&chunk);
        let subset: Vec<EncodedBlock> = blocks.into_iter().skip(3).collect();
        assert_eq!(scalar.decode(&subset, chunk.len()).unwrap(), chunk);
    }

    #[test]
    fn reencode_matches_across_kernels() {
        let chunk = sample_chunk(40_000, 16);
        let scalar = ReedSolomonCode::new(6, 3).with_kernel(Gf256Kernel::Scalar);
        let fast = ReedSolomonCode::new(6, 3).with_kernel(Gf256Kernel::Nibble64);
        let encoded = scalar.encode(&chunk);
        let surviving: Vec<EncodedBlock> = encoded.iter().skip(3).cloned().collect();
        let a = scalar.reencode(&surviving, chunk.len(), &[0, 7]).unwrap();
        let b = fast.reencode(&surviving, chunk.len(), &[0, 7]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn default_encode_goes_parallel_only_above_threshold() {
        // Identical results either way; this pins the dispatch boundary.
        let code = ReedSolomonCode::new(8, 4).with_parallel_threshold(usize::MAX);
        let chunk = sample_chunk(1 << 21, 7);
        assert_eq!(code.encode(&chunk), code.encode_serial(&chunk));
    }

    #[test]
    fn optimality_metadata() {
        let code = ReedSolomonCode::new(10, 4);
        assert_eq!(code.name(), "ReedSolomon");
        assert_eq!(code.source_blocks(), 10);
        assert_eq!(code.encoded_blocks(), 14);
        assert_eq!(code.min_decode_blocks(), 10, "optimal: exactly n of m");
        assert_eq!(code.tolerable_losses(), 4);
        assert!((code.storage_overhead() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn non_multiple_lengths_pad_and_truncate() {
        let code = ReedSolomonCode::new(7, 3);
        for len in [1usize, 6, 7, 8, 13, 4099] {
            let chunk = sample_chunk(len, len as u64);
            let blocks = code.encode(&chunk);
            // Drop the first three (data!) blocks: decode must still succeed.
            let subset: Vec<EncodedBlock> = blocks.into_iter().skip(3).collect();
            assert_eq!(code.decode(&subset, len).unwrap(), chunk, "len {len}");
        }
    }

    #[test]
    fn empty_chunk_round_trip() {
        let code = ReedSolomonCode::new(4, 2);
        let blocks = code.encode(&[]);
        assert_eq!(code.decode(&blocks, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn largest_supported_geometry() {
        let code = ReedSolomonCode::new(223, 33);
        let chunk = sample_chunk(8_192, 9);
        let blocks = code.encode(&chunk);
        // Lose every parity block plus none of the data: trivial; instead lose
        // 33 data blocks and decode from the rest.
        let subset: Vec<EncodedBlock> = blocks.into_iter().skip(33).collect();
        assert_eq!(code.decode(&subset, chunk.len()).unwrap(), chunk);
    }

    #[test]
    #[should_panic(expected = "at most 256 blocks")]
    fn rejects_too_many_blocks() {
        let _ = ReedSolomonCode::new(200, 100);
    }

    #[test]
    fn partial_reencode_matches_full_encode() {
        let code = ReedSolomonCode::new(5, 3);
        let chunk = sample_chunk(4_097, 10);
        let encoded = code.encode(&chunk);
        // Lose a data block and a parity block, keep a minimal mixed subset.
        let surviving: Vec<EncodedBlock> = encoded
            .iter()
            .filter(|b| b.index != 2 && b.index != 6)
            .cloned()
            .collect();
        let rebuilt = code
            .reencode(&surviving, chunk.len(), &[6, 2, 2, 99])
            .unwrap();
        // Deduplicated, ascending, out-of-range indices dropped.
        let indices: Vec<u32> = rebuilt.iter().map(|b| b.index).collect();
        assert_eq!(indices, vec![2, 6]);
        for b in &rebuilt {
            let original = encoded.iter().find(|o| o.index == b.index).unwrap();
            assert_eq!(b, original, "row {} differs from full encode", b.index);
        }
        // Fewer than `data` survivors cannot re-encode anything.
        let too_few: Vec<EncodedBlock> = encoded[..4].to_vec();
        assert!(matches!(
            code.reencode(&too_few, chunk.len(), &[7]),
            Err(DecodeError::NotEnoughBlocks { have: 4, need: 5 })
        ));
    }
}
