//! Dense matrices over GF(2⁸), the linear algebra behind the Reed–Solomon
//! codec: Vandermonde construction, multiplication, systematic-form
//! conversion for encoding, and Gauss–Jordan inversion for decoding.

use crate::gf256;

/// A dense `rows × cols` matrix over GF(2⁸), stored row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GfMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl GfMatrix {
    /// The all-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        GfMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = GfMatrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// The `rows × cols` Vandermonde matrix with evaluation points
    /// `0, 1, …, rows − 1`: entry `(r, c)` is `r^c` (with `0⁰ = 1`).
    ///
    /// The points are distinct field elements, so *every* square submatrix
    /// formed by choosing `cols` of the rows is invertible — the property that
    /// makes any `n` of the `m` encoded blocks sufficient for decoding.
    /// Requires `rows ≤ 256` (the field has only 256 distinct points).
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= 256,
            "GF(256) has only 256 distinct evaluation points"
        );
        let mut m = GfMatrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, gf256::pow(r as u8, c));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c] // lint:allow(slice-index) -- r*cols+c < rows*cols == data.len(), the matrix invariant
    }

    /// Set the entry at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v; // lint:allow(slice-index) -- r*cols+c < rows*cols == data.len(), the matrix invariant
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u8] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The matrix formed by the given rows of `self`, in the given order.
    pub fn select_rows(&self, indices: &[usize]) -> GfMatrix {
        let mut m = GfMatrix::zero(indices.len(), self.cols);
        for (out_r, &r) in indices.iter().enumerate() {
            m.data[out_r * self.cols..(out_r + 1) * self.cols].copy_from_slice(self.row(r));
        }
        m
    }

    /// Matrix product `self · other`.  Panics on a dimension mismatch.
    pub fn mul(&self, other: &GfMatrix) -> GfMatrix {
        assert_eq!(
            self.cols, other.rows,
            "dimension mismatch: {}×{} · {}×{}",
            self.rows, self.cols, other.rows, other.cols
        );
        // Each `(r, k)` term is `out.row(r) ^= a · other.row(k)` — the same
        // accumulate shape as parity generation, so it runs on the slice
        // kernels rather than per-entry field multiplies.
        let mut out = GfMatrix::zero(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                gf256::mul_add_slice(self.get(r, k), other.row(k), out.row_mut(r));
            }
        }
        out
    }

    /// The inverse of a square matrix via Gauss–Jordan elimination with
    /// partial pivoting, or `None` if the matrix is singular.
    pub fn invert(&self) -> Option<GfMatrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        // Augmented working copy [A | I].
        let mut work = GfMatrix::zero(n, 2 * n);
        for r in 0..n {
            for c in 0..n {
                work.set(r, c, self.get(r, c));
            }
            work.set(r, n + r, 1);
        }
        for col in 0..n {
            // Find a non-zero pivot at or below the diagonal.
            let pivot = (col..n).find(|&r| work.get(r, col) != 0)?;
            if pivot != col {
                for c in 0..2 * n {
                    let (a, b) = (work.get(col, c), work.get(pivot, c));
                    work.set(col, c, b);
                    work.set(pivot, c, a);
                }
            }
            // Scale the pivot row to a leading 1.
            let scale = gf256::inv(work.get(col, col));
            if scale != 1 {
                for c in 0..2 * n {
                    work.set(col, c, gf256::mul(scale, work.get(col, c)));
                }
            }
            // Eliminate the column everywhere else.
            for r in 0..n {
                let factor = work.get(r, col);
                if r == col || factor == 0 {
                    continue;
                }
                for c in 0..2 * n {
                    let v = work.get(r, c) ^ gf256::mul(factor, work.get(col, c));
                    work.set(r, c, v);
                }
            }
        }
        let mut out = GfMatrix::zero(n, n);
        for r in 0..n {
            for c in 0..n {
                out.set(r, c, work.get(r, n + c));
            }
        }
        Some(out)
    }

    /// Convert an `m × n` encode matrix (`m ≥ n`, top `n × n` part invertible)
    /// to *systematic* form: right-multiply by the inverse of its top square so
    /// the first `n` rows become the identity while every `n`-row subset stays
    /// invertible.  Returns `None` when the top square is singular.
    pub fn systematic(&self) -> Option<GfMatrix> {
        assert!(self.rows >= self.cols, "need at least cols rows");
        let top: Vec<usize> = (0..self.cols).collect();
        let inv = self.select_rows(&top).invert()?;
        Some(self.mul(&inv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let v = GfMatrix::vandermonde(5, 3);
        assert_eq!(GfMatrix::identity(5).mul(&v), v);
        assert_eq!(v.mul(&GfMatrix::identity(3)), v);
    }

    #[test]
    fn vandermonde_entries_are_powers() {
        let v = GfMatrix::vandermonde(6, 4);
        for r in 0..6 {
            for c in 0..4 {
                assert_eq!(v.get(r, c), gf256::pow(r as u8, c));
            }
        }
        // Row 0 evaluates the point 0: [1, 0, 0, 0].
        assert_eq!(v.row(0), &[1, 0, 0, 0]);
    }

    #[test]
    fn inverse_round_trips() {
        for n in [1usize, 2, 3, 5, 8, 16] {
            let m = GfMatrix::vandermonde(n, n);
            let inv = m.invert().expect("Vandermonde is invertible");
            assert_eq!(m.mul(&inv), GfMatrix::identity(n));
            assert_eq!(inv.mul(&m), GfMatrix::identity(n));
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let mut m = GfMatrix::zero(3, 3);
        // Two equal rows.
        for c in 0..3 {
            m.set(0, c, c as u8 + 1);
            m.set(1, c, c as u8 + 1);
            m.set(2, c, 7);
        }
        assert!(m.invert().is_none());
    }

    #[test]
    fn systematic_form_has_identity_top() {
        let enc = GfMatrix::vandermonde(9, 5).systematic().unwrap();
        for r in 0..5 {
            for c in 0..5 {
                assert_eq!(enc.get(r, c), u8::from(r == c), "({r},{c})");
            }
        }
    }

    #[test]
    fn every_row_subset_of_systematic_vandermonde_inverts() {
        // The decoding guarantee: any n rows of the m×n encode matrix are
        // linearly independent.  Exhaustive over all C(6,3) subsets.
        let enc = GfMatrix::vandermonde(6, 3).systematic().unwrap();
        for a in 0..6 {
            for b in a + 1..6 {
                for c in b + 1..6 {
                    let sub = enc.select_rows(&[a, b, c]);
                    assert!(sub.invert().is_some(), "rows {a},{b},{c} singular");
                }
            }
        }
    }

    #[test]
    fn select_rows_preserves_order() {
        let v = GfMatrix::vandermonde(5, 2);
        let s = v.select_rows(&[4, 0]);
        assert_eq!(s.row(0), v.row(4));
        assert_eq!(s.row(1), v.row(0));
    }
}
