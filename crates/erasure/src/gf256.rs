//! Arithmetic over the Galois field GF(2⁸), the coefficient field of the
//! Reed–Solomon codec ([`crate::rs`]).
//!
//! Elements are bytes; addition is XOR and multiplication is polynomial
//! multiplication modulo the primitive polynomial `x⁸ + x⁴ + x³ + x² + 1`
//! (0x11d), the conventional choice for storage Reed–Solomon codes.  All
//! products are resolved through logarithm/antilogarithm tables built at
//! compile time in a `const` context, so field operations are two table
//! lookups and an add.
//!
//! The encoder hot loop never multiplies byte-by-byte through the log tables:
//! [`mul_slice`] and [`mul_add_slice`] first materialise the 256-entry product
//! row of the constant coefficient (it lives comfortably in L1) and then
//! stream the operand slices through it, which is the standard cache-friendly
//! kernel shape for software Reed–Solomon.

use crate::code::xor_into;

/// The primitive polynomial x⁸ + x⁴ + x³ + x² + 1 defining the field.
const POLY: u16 = 0x11d;

/// Antilog table: `EXP[i] = g^i` for the generator `g = 2`, doubled so that
/// `EXP[log a + log b]` needs no reduction modulo 255.
const EXP: [u8; 512] = EXP_LOG.0;

/// Log table: `LOG[a]` is the discrete logarithm of `a` (unused slot 0).
const LOG: [u8; 256] = EXP_LOG.1;

const EXP_LOG: ([u8; 512], [u8; 256]) = build_tables();

const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Double the antilog table: log a + log b ≤ 508 < 510.
    let mut j = 255;
    while j < 510 {
        exp[j] = exp[j - 255]; // lint:allow(slice-index) -- j in 255..510, j-255 < 255 < EXP.len()==510
        j += 1;
    }
    (exp, log)
}

/// Field addition (and subtraction): XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize] // lint:allow(slice-index) -- log a + log b <= 508 < EXP.len()==510
    }
}

/// Multiplicative inverse.  Panics on zero, which has no inverse.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    EXP[255 - LOG[a as usize] as usize] // lint:allow(slice-index) -- LOG[a] <= 255 so 255-LOG[a] <= 255 < EXP.len()
}

/// Field division `a / b`.  Panics when `b` is zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + 255 - LOG[b as usize] as usize] // lint:allow(slice-index) -- log a + 255 - log b <= 509 < EXP.len()==510
    }
}

/// Exponentiation `a^e` (with the convention `0⁰ = 1`).
#[inline]
pub fn pow(a: u8, e: usize) -> u8 {
    if e == 0 {
        1
    } else if a == 0 {
        0
    } else {
        EXP[(LOG[a as usize] as usize * e) % 255] // lint:allow(slice-index) -- x % 255 < 255 < EXP.len()
    }
}

/// The 256-entry product row of a constant coefficient: `row[x] = c·x`.
#[inline]
fn mul_row(c: u8) -> [u8; 256] {
    debug_assert!(c > 1, "rows for 0 and 1 are handled by the fast paths");
    let lc = LOG[c as usize] as usize;
    let mut row = [0u8; 256];
    let mut x = 1usize;
    while x < 256 {
        row[x] = EXP[lc + LOG[x] as usize]; // lint:allow(slice-index) -- lc + log x <= 508 < EXP.len()==510
        x += 1;
    }
    row
}

/// Slice kernel `dst[i] = c · src[i]`.  Both slices must have equal length.
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    match c {
        0 => dst.fill(0),
        1 => dst.copy_from_slice(src),
        _ => {
            let row = mul_row(c);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = row[s as usize];
            }
        }
    }
}

/// Slice kernel `dst[i] ^= c · src[i]` — the Reed–Solomon encode/decode hot
/// loop.  Both slices must have equal length.
pub fn mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    match c {
        0 => {}
        1 => xor_into(dst, src),
        _ => {
            let row = mul_row(c);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d ^= row[s as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        // g^log(a) = a for every non-zero a, and logs are a permutation.
        let mut seen = [false; 255];
        for a in 1..=255u8 {
            assert_eq!(EXP[LOG[a as usize] as usize], a);
            assert!(!seen[LOG[a as usize] as usize]);
            seen[LOG[a as usize] as usize] = true;
        }
        // The doubled half mirrors the first.
        for i in 0..255 {
            assert_eq!(EXP[i], EXP[i + 255]);
        }
    }

    #[test]
    fn multiplication_axioms() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(a, 1), a);
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul(b, a));
                // Distributivity over a fixed third element.
                assert_eq!(mul(a, add(b, 7)), add(mul(a, b), mul(a, 7)));
            }
        }
    }

    #[test]
    fn multiplication_is_associative_on_samples() {
        for a in [1u8, 2, 3, 29, 76, 142, 255] {
            for b in [1u8, 5, 53, 200, 254] {
                for c in [2u8, 99, 187] {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn inverse_and_division() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1);
            assert_eq!(div(a, a), 1);
            assert_eq!(div(0, a), 0);
        }
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_has_no_inverse() {
        let _ = inv(0);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 97, 255] {
            let mut acc = 1u8;
            for e in 0..20 {
                assert_eq!(pow(a, e), acc, "a = {a}, e = {e}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1);
    }

    #[test]
    fn slice_kernels_match_scalar_ops() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 77, 255] {
            let mut product = vec![0xAA; src.len()];
            mul_slice(c, &src, &mut product);
            let mut accum = src.clone();
            mul_add_slice(c, &src, &mut accum);
            for (i, &s) in src.iter().enumerate() {
                assert_eq!(product[i], mul(c, s));
                assert_eq!(accum[i], add(s, mul(c, s)));
            }
        }
    }
}
