//! Chunk-granular streaming encode: fixed-size column stripes of parity flow
//! from encode workers to a downstream consumer (placement planning,
//! dissemination) while later stripes are still being computed.
//!
//! [`ReedSolomonCode::encode_with_workers`] parallelises a *single* encode but
//! still materialises the whole parity set before returning.  When the encode
//! feeds a store path — plan placements for a stripe, push its bytes to the
//! ring, move on — that barrier wastes the overlap between CPU (encode) and
//! I/O (dissemination).  [`ReedSolomonCode::encode_stripes`] removes it:
//!
//! ```text
//!   chunk ──► [encode workers: claim stripe, tile-apply parity] ──►
//!             [reorder to stripe order] ──► sink(stripe)  (caller thread)
//! ```
//!
//! Stripes are *column ranges* over all parity rows, so every stripe is
//! self-contained: together with the (systematic, pass-through) data blocks
//! it is exactly the bytes a disseminator ships for those columns.  The sink
//! always runs on the calling thread and always observes stripes in ascending
//! index order — with any worker count, on any machine — so downstream stages
//! stay deterministic.  With `workers <= 1` the whole pipeline runs inline
//! with **zero** thread spawns (the 1-CPU fast path; pinned by a test against
//! the spawn counter below).

use crate::code::{split_into_blocks, EncodedBlock};
use crate::rs::{apply_parity_stripe, available_workers, ReedSolomonCode};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

thread_local! {
    /// Worker threads spawned by *this* thread's encode calls.
    static SPAWNED: Cell<u64> = const { Cell::new(0) };
}

/// Record one worker spawn on behalf of the calling thread.
pub(crate) fn note_spawn() {
    SPAWNED.with(|c| c.set(c.get() + 1));
}

/// Total encode worker threads spawned by the calling thread so far.
///
/// Test instrumentation for the single-CPU degenerate case: the counter is
/// thread-local, so a test reads it before and after an encode and asserts
/// the delta without interference from concurrently running tests.
pub fn spawned_workers() -> u64 {
    SPAWNED.with(|c| c.get())
}

/// One encoded column stripe: columns `cols` of every parity block, in row
/// order.  The data blocks are systematic (the chunk's own bytes), so a
/// consumer slices them from the chunk directly; only parity is carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedStripe {
    /// Stripe sequence number, ascending from 0; the sink sees them in order.
    pub index: usize,
    /// The column range of every parity block this stripe covers.
    pub cols: Range<usize>,
    /// `parity[r]` holds columns `cols` of parity row `r`.
    pub parity: Vec<Vec<u8>>,
}

impl ReedSolomonCode {
    /// Stream-encode `chunk` in column stripes of at most `stripe_bytes`,
    /// delivering each [`EncodedStripe`] to `sink` in ascending stripe order
    /// on the calling thread.
    ///
    /// `workers <= 1` computes every stripe inline (zero spawns); otherwise
    /// up to `workers` scoped threads claim stripes from a shared counter and
    /// a bounded channel + reorder buffer restores stripe order before the
    /// sink runs.  Concatenating the stripes of every parity row yields
    /// exactly the parity blocks of [`ReedSolomonCode::encode_serial`].
    pub fn encode_stripes(
        &self,
        chunk: &[u8],
        stripe_bytes: usize,
        workers: usize,
        mut sink: impl FnMut(EncodedStripe),
    ) {
        let (sources, block_size) = split_into_blocks(chunk, self.data());
        let prepared = self.prepared_parity_matrix();
        let stripe_bytes = stripe_bytes.max(1);
        let stripes = column_spans_by_width(block_size, stripe_bytes);
        let encode_one = |span: &Range<usize>| -> Vec<Vec<u8>> {
            let mut parity: Vec<Vec<u8>> = prepared.iter().map(|_| vec![0u8; span.len()]).collect();
            let mut outs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
            apply_parity_stripe(&prepared, &sources, span.clone(), &mut outs);
            parity
        };
        let workers = workers.clamp(1, stripes.len().max(1));
        if workers <= 1 {
            for (index, span) in stripes.iter().enumerate() {
                sink(EncodedStripe {
                    index,
                    cols: span.clone(),
                    parity: encode_one(span),
                });
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::sync_channel::<(usize, Vec<Vec<u8>>)>(workers * 2);
        let stripes_ref = &stripes;
        let next_ref = &next;
        let encode_ref = &encode_one;
        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                note_spawn();
                s.spawn(move || loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    let Some(span) = stripes_ref.get(i) else {
                        break;
                    };
                    if tx.send((i, encode_ref(span))).is_err() {
                        break; // receiver gone: the sink side is done
                    }
                });
            }
            drop(tx);
            // Reorder: workers finish stripes out of order; hold early
            // arrivals in a BTreeMap until their turn.
            let mut pending: BTreeMap<usize, Vec<Vec<u8>>> = BTreeMap::new();
            let mut due = 0usize;
            for (index, parity) in rx {
                pending.insert(index, parity);
                while let Some(parity) = pending.remove(&due) {
                    sink(EncodedStripe {
                        index: due,
                        cols: stripes[due].clone(),
                        parity,
                    });
                    due += 1;
                }
            }
            debug_assert!(pending.is_empty());
        });
    }

    /// Assemble the full encoded-block set from a streamed encode — the
    /// pipeline run as a batch API.  Equivalent to
    /// [`ReedSolomonCode::encode_with_workers`]; exists so tests can pin the
    /// stripe path against the batch path byte for byte.
    pub fn encode_via_stripes(
        &self,
        chunk: &[u8],
        stripe_bytes: usize,
        workers: usize,
    ) -> Vec<EncodedBlock> {
        let (sources, block_size) = split_into_blocks(chunk, self.data());
        let mut parity: Vec<Vec<u8>> = (0..self.parity())
            .map(|_| Vec::with_capacity(block_size))
            .collect();
        self.encode_stripes(chunk, stripe_bytes, workers, |stripe| {
            for (row, piece) in parity.iter_mut().zip(&stripe.parity) {
                row.extend_from_slice(piece);
            }
        });
        sources
            .into_iter()
            .chain(parity)
            .enumerate()
            .map(|(i, b)| EncodedBlock::new(i as u32, b))
            .collect()
    }

    /// [`ReedSolomonCode::encode_stripes`] with the worker count sized from
    /// `available_parallelism()` (1 CPU → fully inline, zero spawns).
    pub fn encode_stripes_auto(
        &self,
        chunk: &[u8],
        stripe_bytes: usize,
        sink: impl FnMut(EncodedStripe),
    ) {
        self.encode_stripes(chunk, stripe_bytes, available_workers(), sink);
    }
}

/// Split `0..block_size` into contiguous spans of `width` bytes (last span
/// ragged).  Zero-length blocks yield no spans.
fn column_spans_by_width(block_size: usize, width: usize) -> Vec<Range<usize>> {
    let mut spans = Vec::with_capacity(block_size.div_ceil(width.max(1)));
    let mut start = 0;
    while start < block_size {
        let end = (start + width).min(block_size);
        spans.push(start..end);
        start = end;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerstripe_sim::DetRng;

    fn sample_chunk(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = DetRng::new(seed);
        (0..len).map(|_| rng.next_u32() as u8).collect()
    }

    #[test]
    fn stripe_assembly_matches_serial_encode() {
        let code = ReedSolomonCode::new(5, 3);
        for len in [0usize, 1, 4_096, 100_001, 1 << 20] {
            let chunk = sample_chunk(len, 21);
            let serial = code.encode_serial(&chunk);
            for (stripe_bytes, workers) in [(1 << 14, 1), (1 << 14, 3), (777, 2), (1 << 20, 4)] {
                assert_eq!(
                    code.encode_via_stripes(&chunk, stripe_bytes, workers),
                    serial,
                    "len {len}, stripe {stripe_bytes}, workers {workers}"
                );
            }
        }
    }

    #[test]
    fn sink_sees_stripes_in_order_with_full_coverage() {
        let code = ReedSolomonCode::new(4, 2);
        let chunk = sample_chunk(200_000, 22);
        for workers in [1usize, 2, 5] {
            let mut indices = Vec::new();
            let mut covered = 0usize;
            code.encode_stripes(&chunk, 8_192, workers, |stripe| {
                indices.push(stripe.index);
                assert_eq!(stripe.cols.start, covered, "gap before stripe");
                assert_eq!(stripe.parity.len(), 2);
                for row in &stripe.parity {
                    assert_eq!(row.len(), stripe.cols.len());
                }
                covered = stripe.cols.end;
            });
            let expected: Vec<usize> = (0..indices.len()).collect();
            assert_eq!(indices, expected, "workers {workers}");
            assert_eq!(covered, chunk.len().div_ceil(4));
        }
    }

    #[test]
    fn inline_pipeline_spawns_no_threads() {
        let code = ReedSolomonCode::new(8, 4);
        let chunk = sample_chunk(1 << 20, 23);
        let before = spawned_workers();
        code.encode_stripes(&chunk, 1 << 14, 1, |_| {});
        assert_eq!(spawned_workers(), before, "inline pipeline spawned");
        code.encode_stripes(&chunk, 1 << 14, 3, |_| {});
        assert_eq!(spawned_workers(), before + 3);
    }

    #[test]
    fn worker_count_is_capped_by_stripe_count() {
        // 2 stripes cannot occupy 8 workers; only as many threads as stripes.
        let code = ReedSolomonCode::new(4, 2);
        let chunk = sample_chunk(40_000, 24); // block_size 10_000
        let before = spawned_workers();
        code.encode_stripes(&chunk, 8_192, 8, |_| {});
        assert_eq!(spawned_workers(), before + 2);
    }

    #[test]
    fn empty_chunk_yields_no_stripes() {
        let code = ReedSolomonCode::new(4, 2);
        let mut calls = 0;
        code.encode_stripes(&[], 4_096, 4, |_| calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    fn span_widths_cover_exactly() {
        assert_eq!(column_spans_by_width(0, 10), vec![]);
        assert_eq!(column_spans_by_width(10, 10), vec![0..10]);
        assert_eq!(column_spans_by_width(25, 10), vec![0..10, 10..20, 20..25]);
    }
}
