//! The `nibble64` kernel lanes: split-nibble (low/high 4-bit) product tables
//! applied over wide lanes.
//!
//! Multiplication by a constant `c` is linear over GF(2), so the product of
//! `c` with a byte `x` splits along the nibble boundary:
//!
//! ```text
//! c·x = c·(x & 0x0f)  ^  c·(x & 0xf0)
//!     = LO[x & 0x0f]  ^  HI[x >> 4]
//! ```
//!
//! where `LO` and `HI` are 16-entry product tables built once per coefficient
//! ([`NibbleTables`]).  Both tables fit in a single SIMD register, which is
//! what makes the split worthwhile: a 16-lane (SSSE3 `pshufb`) or 32-lane
//! (AVX2 `vpshufb`) shuffle performs sixteen/thirty-two table lookups per
//! instruction.  Where no shuffle unit is available the same tables are
//! evaluated 8 bytes at a time in a `u64` ([`swar64`]): each nibble lookup is
//! itself linear in its 4 input bits, so it unrolls into four broadcast-mask
//! column XORs over the lane — branch-free, load-free chunked-`u64` code.
//!
//! The lane is picked once per process by [`lane`] (AVX2 → SSSE3 → SWAR) via
//! runtime CPU-feature detection; every lane produces byte-identical output
//! to the scalar reference kernel, which the workspace property tests pin for
//! all 256 coefficients and arbitrary slice lengths (including the
//! non-multiple-of-lane tails, which fall back to per-byte table lookups).

use super::mul;

/// Split-nibble product tables of one coefficient: `lo[v] = c·v` and
/// `hi[v] = c·(v << 4)` for `v` in `0..16`.
#[derive(Debug, Clone, Copy)]
pub(super) struct NibbleTables {
    lo: [u8; 16],
    hi: [u8; 16],
}

impl NibbleTables {
    /// Build the two 16-entry product tables of `c`.
    pub(super) fn new(c: u8) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for v in 0..16u8 {
            lo[v as usize] = mul(c, v);
            hi[v as usize] = mul(c, v << 4);
        }
        NibbleTables { lo, hi }
    }

    /// Product of the coefficient with one byte: two nibble lookups.
    #[inline]
    fn product(&self, x: u8) -> u8 {
        self.lo[(x & 0x0f) as usize] ^ self.hi[(x >> 4) as usize]
    }
}

/// Which wide-lane implementation backs the `nibble64` kernel on this CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    /// Portable 8-byte `u64` SWAR evaluation of the nibble tables.
    Swar64,
    /// 16-byte SSSE3 `pshufb` table shuffles.
    #[cfg(target_arch = "x86_64")]
    Ssse3,
    /// 32-byte AVX2 `vpshufb` table shuffles.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

/// The widest lane this CPU supports, detected once per process.
fn lane() -> Lane {
    #[cfg(target_arch = "x86_64")]
    {
        static LANE: std::sync::OnceLock<Lane> = std::sync::OnceLock::new();
        *LANE.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx2") {
                Lane::Avx2
            } else if std::arch::is_x86_feature_detected!("ssse3") {
                Lane::Ssse3
            } else {
                Lane::Swar64
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Lane::Swar64
    }
}

/// Human-readable name of the active wide lane (for reports and benches).
pub(super) fn active_lane_label() -> &'static str {
    match lane() {
        Lane::Swar64 => "swar64",
        #[cfg(target_arch = "x86_64")]
        Lane::Ssse3 => "ssse3",
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2 => "avx2",
    }
}

/// `dst[i] ^= c·src[i]` (`ACC = true`) or `dst[i] = c·src[i]` (`ACC = false`)
/// through the widest available lane.  Slices must have equal length; the
/// caller has already peeled the `c == 0` / `c == 1` fast paths.
#[inline]
pub(super) fn apply<const ACC: bool>(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    match lane() {
        Lane::Swar64 => swar64::<ACC>(t, src, dst),
        #[cfg(target_arch = "x86_64")]
        Lane::Ssse3 => x86::ssse3::<ACC>(t, src, dst),
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2 => x86::avx2::<ACC>(t, src, dst),
    }
}

/// Per-byte evaluation of the nibble tables — the scalar tail behind every
/// wide lane (and the whole story for sub-lane slices).
#[inline]
fn tail<const ACC: bool>(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        if ACC {
            *d ^= t.product(s);
        } else {
            *d = t.product(s);
        }
    }
}

/// Portable wide lane: the nibble tables evaluated 8 bytes at a time in a
/// `u64`.  A 16-entry lookup cannot be done in parallel without a shuffle
/// unit, but each nibble table is linear in its 4 input bits, so the lookup
/// unrolls into four broadcast-mask column XORs: for input bit `i`, every
/// byte of the lane with that bit set absorbs the byte constant `c·2^i`.
fn swar64<const ACC: bool>(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
    const LSB: u64 = 0x0101_0101_0101_0101;
    // Column `i` is `c·2^i` broadcast to all 8 lane bytes; bits 0..4 come out
    // of the low-nibble table, bits 4..8 out of the high-nibble table.
    let mut col = [0u64; 8];
    for (i, c) in col.iter_mut().enumerate() {
        let product = if i < 4 {
            t.lo[1 << i]
        } else {
            t.hi[1 << (i - 4)]
        };
        *c = (product as u64) * LSB;
    }
    let n = src.len() - src.len() % 8;
    let (src_wide, src_tail) = src.split_at(n);
    let (dst_wide, dst_tail) = dst.split_at_mut(n);
    for (d, s) in dst_wide.chunks_exact_mut(8).zip(src_wide.chunks_exact(8)) {
        // lint:allow(panic) -- chunks_exact(8) yields exactly 8-byte windows
        let x = u64::from_le_bytes(s.try_into().expect("8-byte chunk"));
        let mut product = 0u64;
        for (i, &c) in col.iter().enumerate() {
            // 0x00 or 0xff per byte, selecting the column where bit i is set.
            let mask = ((x >> i) & LSB) * 0xff;
            product ^= mask & c;
        }
        if ACC {
            // lint:allow(panic) -- chunks_exact_mut(8) yields exactly 8-byte windows
            product ^= u64::from_le_bytes((&*d).try_into().expect("8-byte chunk"));
        }
        d.copy_from_slice(&product.to_le_bytes());
    }
    tail::<ACC>(t, src_tail, dst_tail);
}

/// The x86-64 shuffle lanes: `pshufb` performs sixteen 16-entry table
/// lookups per instruction, so both nibble tables live in registers and each
/// loop iteration multiplies a full SIMD register of bytes.
///
/// This module is the workspace's one sanctioned `unsafe` island: the
/// `unsafe` here covers (a) calling `#[target_feature]` functions after
/// runtime detection and (b) unaligned SIMD loads/stores inside bounds
/// established by the loop — each site carries its SAFETY argument, audited
/// by `repro lint`'s unsafe-audit family.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // deny-override: SIMD needs pointer loads/stores; see module docs
mod x86 {
    use super::{tail, NibbleTables};
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_and_si256, _mm256_broadcastsi128_si256, _mm256_loadu_si256,
        _mm256_set1_epi8, _mm256_shuffle_epi8, _mm256_srli_epi64, _mm256_storeu_si256,
        _mm256_xor_si256, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8, _mm_shuffle_epi8,
        _mm_srli_epi64, _mm_storeu_si128, _mm_xor_si128,
    };

    /// SSSE3 entry point: dispatch into the `#[target_feature]` body.
    #[inline]
    pub(in crate::gf256) fn ssse3<const ACC: bool>(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
        // SAFETY: reached only when `lane()` returned `Lane::Ssse3`, which
        // requires `is_x86_feature_detected!("ssse3")` to have succeeded.
        unsafe { ssse3_impl::<ACC>(t, src, dst) }
    }

    /// AVX2 entry point: dispatch into the `#[target_feature]` body.
    #[inline]
    pub(in crate::gf256) fn avx2<const ACC: bool>(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
        // SAFETY: reached only when `lane()` returned `Lane::Avx2`, which
        // requires `is_x86_feature_detected!("avx2")` to have succeeded.
        unsafe { avx2_impl::<ACC>(t, src, dst) }
    }

    #[target_feature(enable = "ssse3")]
    fn ssse3_impl<const ACC: bool>(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        // SAFETY: NibbleTables is repr(Rust) [u8; 16] pairs; reading 16 bytes
        // from each table pointer stays inside the struct's fields.
        let (table_lo, table_hi) = unsafe {
            (
                _mm_loadu_si128(t.lo().as_ptr().cast::<__m128i>()),
                _mm_loadu_si128(t.hi().as_ptr().cast::<__m128i>()),
            )
        };
        let mask = _mm_set1_epi8(0x0f);
        let n = src.len() - src.len() % 16;
        let mut i = 0;
        while i < n {
            // SAFETY: i + 16 <= n <= len of both slices, so every 16-byte
            // unaligned load/store below stays in bounds.
            unsafe {
                let s = _mm_loadu_si128(src.as_ptr().add(i).cast::<__m128i>());
                let lo = _mm_and_si128(s, mask);
                let hi = _mm_and_si128(_mm_srli_epi64::<4>(s), mask);
                let mut product = _mm_xor_si128(
                    _mm_shuffle_epi8(table_lo, lo),
                    _mm_shuffle_epi8(table_hi, hi),
                );
                let d = dst.as_mut_ptr().add(i).cast::<__m128i>();
                if ACC {
                    product = _mm_xor_si128(product, _mm_loadu_si128(d));
                }
                _mm_storeu_si128(d, product);
            }
            i += 16;
        }
        tail::<ACC>(t, &src[n..], &mut dst[n..]);
    }

    #[target_feature(enable = "avx2")]
    fn avx2_impl<const ACC: bool>(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        // SAFETY: NibbleTables is repr(Rust) [u8; 16] pairs; reading 16 bytes
        // from each table pointer stays inside the struct's fields.
        let (lo128, hi128) = unsafe {
            (
                _mm_loadu_si128(t.lo().as_ptr().cast::<__m128i>()),
                _mm_loadu_si128(t.hi().as_ptr().cast::<__m128i>()),
            )
        };
        let table_lo = _mm256_broadcastsi128_si256(lo128);
        let table_hi = _mm256_broadcastsi128_si256(hi128);
        let mask = _mm256_set1_epi8(0x0f);
        let n = src.len() - src.len() % 32;
        let mut i = 0;
        while i < n {
            // SAFETY: i + 32 <= n <= len of both slices, so every 32-byte
            // unaligned load/store below stays in bounds.
            unsafe {
                let s = _mm256_loadu_si256(src.as_ptr().add(i).cast::<__m256i>());
                let lo = _mm256_and_si256(s, mask);
                let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask);
                let mut product = _mm256_xor_si256(
                    _mm256_shuffle_epi8(table_lo, lo),
                    _mm256_shuffle_epi8(table_hi, hi),
                );
                let d = dst.as_mut_ptr().add(i).cast::<__m256i>();
                if ACC {
                    product = _mm256_xor_si256(product, _mm256_loadu_si256(d));
                }
                _mm256_storeu_si256(d, product);
            }
            i += 32;
        }
        tail::<ACC>(t, &src[n..], &mut dst[n..]);
    }
}

#[cfg(target_arch = "x86_64")]
impl NibbleTables {
    /// The low-nibble product table (SIMD lanes load it as one register).
    fn lo(&self) -> &[u8; 16] {
        &self.lo
    }

    /// The high-nibble product table (SIMD lanes load it as one register).
    fn hi(&self) -> &[u8; 16] {
        &self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf256::mul;

    fn reference(c: u8, src: &[u8]) -> Vec<u8> {
        src.iter().map(|&s| mul(c, s)).collect()
    }

    #[test]
    fn nibble_tables_cover_the_byte() {
        for c in [2u8, 3, 29, 0x8e, 255] {
            let t = NibbleTables::new(c);
            for x in 0..=255u8 {
                assert_eq!(t.product(x), mul(c, x), "c = {c}, x = {x}");
            }
        }
    }

    #[test]
    fn swar_lane_matches_reference_on_all_lengths() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 257] {
            let src: Vec<u8> = (0..len).map(|i| (i * 31 + 5) as u8).collect();
            for c in [2u8, 77, 142, 255] {
                let t = NibbleTables::new(c);
                let mut dst = vec![0xAAu8; len];
                swar64::<false>(&t, &src, &mut dst);
                assert_eq!(dst, reference(c, &src), "mul c = {c}, len = {len}");
                let mut accum = src.clone();
                swar64::<true>(&t, &src, &mut accum);
                let expect: Vec<u8> = src.iter().map(|&s| s ^ mul(c, s)).collect();
                assert_eq!(accum, expect, "mul_add c = {c}, len = {len}");
            }
        }
    }

    #[test]
    fn active_lane_matches_swar() {
        // Whatever lane the host CPU picked, it must agree with the portable
        // SWAR evaluation byte for byte (tails included).
        for len in [0usize, 5, 31, 32, 33, 1024, 1037] {
            let src: Vec<u8> = (0..len).map(|i| (i * 13 + 1) as u8).collect();
            for c in [2u8, 0x1d, 200] {
                let t = NibbleTables::new(c);
                let mut want = vec![0u8; len];
                swar64::<false>(&t, &src, &mut want);
                let mut got = vec![0u8; len];
                apply::<false>(&t, &src, &mut got);
                assert_eq!(got, want, "lane {} mul", active_lane_label());
                let mut want_acc = src.clone();
                swar64::<true>(&t, &src, &mut want_acc);
                let mut got_acc = src.clone();
                apply::<true>(&t, &src, &mut got_acc);
                assert_eq!(got_acc, want_acc, "lane {} mul_add", active_lane_label());
            }
        }
    }

    #[test]
    fn lane_label_is_stable() {
        let label = active_lane_label();
        assert!(["swar64", "ssse3", "avx2"].contains(&label), "{label}");
        assert_eq!(label, active_lane_label(), "detection is cached");
    }
}
