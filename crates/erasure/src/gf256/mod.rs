//! Arithmetic over the Galois field GF(2⁸), the coefficient field of the
//! Reed–Solomon codec ([`crate::rs`]).
//!
//! Elements are bytes; addition is XOR and multiplication is polynomial
//! multiplication modulo the primitive polynomial `x⁸ + x⁴ + x³ + x² + 1`
//! (0x11d), the conventional choice for storage Reed–Solomon codes.  All
//! products are resolved through logarithm/antilogarithm tables built at
//! compile time in a `const` context, so field operations are two table
//! lookups and an add.
//!
//! The encoder hot loop never multiplies byte-by-byte through the log tables.
//! Two slice kernels are available behind one dispatch point ([`Gf256Kernel`]):
//!
//! * [`Gf256Kernel::Scalar`] — the reference kernel: materialise the
//!   256-entry product row of the constant coefficient (it lives comfortably
//!   in L1) and stream the operand slices through it byte by byte.
//! * [`Gf256Kernel::Nibble64`] — the fast kernel ([`nibble`]): split-nibble
//!   (low/high 4-bit) product tables applied over wide lanes — `pshufb` table
//!   shuffles on x86-64 (16 or 32 bytes per instruction), and a chunked-`u64`
//!   SWAR evaluation of the same tables everywhere else — with a per-byte
//!   scalar tail for the last `len % lane` bytes.
//!
//! [`mul_slice`] / [`mul_add_slice`] use the best kernel for the host;
//! [`mul_slice_with`] / [`mul_add_slice_with`] pin one explicitly (the scalar
//! kernel stays live as the property-test reference — the workspace pins
//! byte-identical output across kernels for all 256 coefficients).  Encoders
//! that apply a whole coefficient matrix should build a [`PreparedCoeff`] per
//! coefficient once and reuse it across tiles, hoisting table construction
//! out of the cache-blocked inner loops.

use crate::code::xor_into;

mod nibble;

use nibble::NibbleTables;

/// The primitive polynomial x⁸ + x⁴ + x³ + x² + 1 defining the field.
const POLY: u16 = 0x11d;

/// Antilog table: `EXP[i] = g^i` for the generator `g = 2`, doubled so that
/// `EXP[log a + log b]` needs no reduction modulo 255.
const EXP: [u8; 512] = EXP_LOG.0;

/// Log table: `LOG[a]` is the discrete logarithm of `a` (unused slot 0).
const LOG: [u8; 256] = EXP_LOG.1;

const EXP_LOG: ([u8; 512], [u8; 256]) = build_tables();

const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Double the antilog table: log a + log b ≤ 508 < 510.
    let mut j = 255;
    while j < 510 {
        exp[j] = exp[j - 255]; // lint:allow(slice-index) -- j in 255..510, j-255 < 255 < EXP.len()==510
        j += 1;
    }
    (exp, log)
}

/// Field addition (and subtraction): XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize] // lint:allow(slice-index) -- log a + log b <= 508 < EXP.len()==510
    }
}

/// Multiplicative inverse.  Panics on zero, which has no inverse.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    EXP[255 - LOG[a as usize] as usize] // lint:allow(slice-index) -- LOG[a] <= 255 so 255-LOG[a] <= 255 < EXP.len()
}

/// Field division `a / b`.  Panics when `b` is zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + 255 - LOG[b as usize] as usize] // lint:allow(slice-index) -- log a + 255 - log b <= 509 < EXP.len()==510
    }
}

/// Exponentiation `a^e` (with the convention `0⁰ = 1`).
#[inline]
pub fn pow(a: u8, e: usize) -> u8 {
    if e == 0 {
        1
    } else if a == 0 {
        0
    } else {
        EXP[(LOG[a as usize] as usize * e) % 255] // lint:allow(slice-index) -- x % 255 < 255 < EXP.len()
    }
}

/// The 256-entry product row of a constant coefficient: `row[x] = c·x`.
#[inline]
fn mul_row(c: u8) -> [u8; 256] {
    debug_assert!(c > 1, "rows for 0 and 1 are handled by the fast paths");
    let lc = LOG[c as usize] as usize;
    let mut row = [0u8; 256];
    let mut x = 1usize;
    while x < 256 {
        row[x] = EXP[lc + LOG[x] as usize]; // lint:allow(slice-index) -- lc + log x <= 508 < EXP.len()==510
        x += 1;
    }
    row
}

/// Selects which slice-kernel implementation backs the GF(256) hot loops.
///
/// `Scalar` is the original per-byte product-row kernel, kept live as the
/// reference the property tests compare against; `Nibble64` is the wide-lane
/// split-nibble kernel and is what [`Gf256Kernel::best`] returns on every
/// platform (its portable SWAR lane needs nothing beyond stable Rust).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gf256Kernel {
    /// Per-byte 256-entry product-row lookups (the reference kernel).
    Scalar,
    /// Split-nibble tables over wide lanes (SIMD shuffle or chunked `u64`).
    Nibble64,
}

impl Gf256Kernel {
    /// Every kernel, in comparison order (reference first).
    pub const ALL: [Gf256Kernel; 2] = [Gf256Kernel::Scalar, Gf256Kernel::Nibble64];

    /// The fastest kernel for this host.
    #[inline]
    pub fn best() -> Self {
        Gf256Kernel::Nibble64
    }

    /// Parse a kernel name as used on CLI surfaces (`scalar` / `nibble64`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "scalar" => Some(Gf256Kernel::Scalar),
            "nibble64" => Some(Gf256Kernel::Nibble64),
            _ => None,
        }
    }

    /// The kernel's CLI/report name (`scalar` / `nibble64`).
    pub fn label(self) -> &'static str {
        match self {
            Gf256Kernel::Scalar => "scalar",
            Gf256Kernel::Nibble64 => "nibble64",
        }
    }

    /// The wide-lane implementation the `nibble64` kernel resolved to on this
    /// host (`avx2` / `ssse3` / `swar64`); `scalar` for the scalar kernel.
    pub fn lane_label(self) -> &'static str {
        match self {
            Gf256Kernel::Scalar => "scalar",
            Gf256Kernel::Nibble64 => nibble::active_lane_label(),
        }
    }
}

impl std::fmt::Display for Gf256Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A coefficient with its kernel tables prebuilt, ready to stream slices.
///
/// Building the scalar product row costs ~256 table lookups and the nibble
/// tables ~32 multiplications — negligible per chunk, but not per tile.  The
/// cache-blocked encoder in [`crate::rs`] applies every coefficient to every
/// L1-sized tile of every source block, so it prepares each coefficient once
/// per encode and reuses it across all tiles.
pub struct PreparedCoeff {
    inner: Prepared,
}

enum Prepared {
    /// `c == 0`: products are all zero.
    Zero,
    /// `c == 1`: products are the source bytes.
    One,
    /// Scalar kernel: the 256-entry product row.
    ScalarRow(Box<[u8; 256]>),
    /// Nibble64 kernel: the split-nibble table pair.
    Nibble(NibbleTables),
}

impl PreparedCoeff {
    /// Prepare coefficient `c` for the given kernel.
    pub fn new(kernel: Gf256Kernel, c: u8) -> Self {
        let inner = match (c, kernel) {
            (0, _) => Prepared::Zero,
            (1, _) => Prepared::One,
            (_, Gf256Kernel::Scalar) => Prepared::ScalarRow(Box::new(mul_row(c))),
            (_, Gf256Kernel::Nibble64) => Prepared::Nibble(NibbleTables::new(c)),
        };
        PreparedCoeff { inner }
    }

    /// `dst[i] = c · src[i]`.  Both slices must have equal length.
    #[inline]
    pub fn mul(&self, src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        match &self.inner {
            Prepared::Zero => dst.fill(0),
            Prepared::One => dst.copy_from_slice(src),
            Prepared::ScalarRow(row) => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = row[s as usize];
                }
            }
            Prepared::Nibble(t) => nibble::apply::<false>(t, src, dst),
        }
    }

    /// `dst[i] ^= c · src[i]` — the Reed–Solomon encode/decode hot loop.
    /// Both slices must have equal length.
    #[inline]
    pub fn mul_add(&self, src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        match &self.inner {
            Prepared::Zero => {}
            Prepared::One => xor_into(dst, src),
            Prepared::ScalarRow(row) => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d ^= row[s as usize];
                }
            }
            Prepared::Nibble(t) => nibble::apply::<true>(t, src, dst),
        }
    }

    /// True when applying this coefficient is a no-op for `mul_add` (c == 0).
    #[inline]
    pub fn is_zero(&self) -> bool {
        matches!(self.inner, Prepared::Zero)
    }
}

/// Slice kernel `dst[i] = c · src[i]` through the best kernel for this host.
/// Both slices must have equal length.
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    mul_slice_with(Gf256Kernel::best(), c, src, dst);
}

/// Slice kernel `dst[i] ^= c · src[i]` through the best kernel for this host
/// — the Reed–Solomon encode/decode hot loop.  Both slices must have equal
/// length.
pub fn mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    mul_add_slice_with(Gf256Kernel::best(), c, src, dst);
}

/// [`mul_slice`] with an explicit kernel choice — the single dispatch point.
pub fn mul_slice_with(kernel: Gf256Kernel, c: u8, src: &[u8], dst: &mut [u8]) {
    PreparedCoeff::new(kernel, c).mul(src, dst);
}

/// [`mul_add_slice`] with an explicit kernel choice — the single dispatch
/// point.
pub fn mul_add_slice_with(kernel: Gf256Kernel, c: u8, src: &[u8], dst: &mut [u8]) {
    PreparedCoeff::new(kernel, c).mul_add(src, dst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        // g^log(a) = a for every non-zero a, and logs are a permutation.
        let mut seen = [false; 255];
        for a in 1..=255u8 {
            assert_eq!(EXP[LOG[a as usize] as usize], a);
            assert!(!seen[LOG[a as usize] as usize]);
            seen[LOG[a as usize] as usize] = true;
        }
        // The doubled half mirrors the first.
        for i in 0..255 {
            assert_eq!(EXP[i], EXP[i + 255]);
        }
    }

    #[test]
    fn multiplication_axioms() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(a, 1), a);
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul(b, a));
                // Distributivity over a fixed third element.
                assert_eq!(mul(a, add(b, 7)), add(mul(a, b), mul(a, 7)));
            }
        }
    }

    #[test]
    fn multiplication_is_associative_on_samples() {
        for a in [1u8, 2, 3, 29, 76, 142, 255] {
            for b in [1u8, 5, 53, 200, 254] {
                for c in [2u8, 99, 187] {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn inverse_and_division() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1);
            assert_eq!(div(a, a), 1);
            assert_eq!(div(0, a), 0);
        }
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_has_no_inverse() {
        let _ = inv(0);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 97, 255] {
            let mut acc = 1u8;
            for e in 0..20 {
                assert_eq!(pow(a, e), acc, "a = {a}, e = {e}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1);
    }

    #[test]
    fn slice_kernels_match_scalar_ops() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 77, 255] {
            let mut product = vec![0xAA; src.len()];
            mul_slice(c, &src, &mut product);
            let mut accum = src.clone();
            mul_add_slice(c, &src, &mut accum);
            for (i, &s) in src.iter().enumerate() {
                assert_eq!(product[i], mul(c, s));
                assert_eq!(accum[i], add(s, mul(c, s)));
            }
        }
    }

    #[test]
    fn kernels_agree_for_every_coefficient() {
        // Exhaustive over c; lengths chosen to exercise empty slices, the
        // sub-lane case, exact lane multiples, and ragged tails.
        for len in [0usize, 1, 7, 8, 9, 16, 31, 32, 33, 100] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            for c in 0..=255u8 {
                let mut scalar = vec![0u8; len];
                mul_slice_with(Gf256Kernel::Scalar, c, &src, &mut scalar);
                let mut fast = vec![0xCCu8; len];
                mul_slice_with(Gf256Kernel::Nibble64, c, &src, &mut fast);
                assert_eq!(scalar, fast, "mul c = {c}, len = {len}");

                let mut scalar_acc = src.clone();
                mul_add_slice_with(Gf256Kernel::Scalar, c, &src, &mut scalar_acc);
                let mut fast_acc = src.clone();
                mul_add_slice_with(Gf256Kernel::Nibble64, c, &src, &mut fast_acc);
                assert_eq!(scalar_acc, fast_acc, "mul_add c = {c}, len = {len}");
            }
        }
    }

    #[test]
    fn prepared_coeff_matches_one_shot_kernels() {
        let src: Vec<u8> = (0..200).map(|i| (i * 7 + 3) as u8).collect();
        for kernel in Gf256Kernel::ALL {
            for c in [0u8, 1, 2, 142, 255] {
                let prepared = PreparedCoeff::new(kernel, c);
                assert_eq!(prepared.is_zero(), c == 0);
                let mut via_prepared = vec![0u8; src.len()];
                prepared.mul(&src, &mut via_prepared);
                let mut direct = vec![0u8; src.len()];
                mul_slice_with(kernel, c, &src, &mut direct);
                assert_eq!(via_prepared, direct);
                let mut acc_prepared = src.clone();
                prepared.mul_add(&src, &mut acc_prepared);
                let mut acc_direct = src.clone();
                mul_add_slice_with(kernel, c, &src, &mut acc_direct);
                assert_eq!(acc_prepared, acc_direct);
            }
        }
    }

    #[test]
    fn kernel_parse_and_labels_round_trip() {
        for kernel in Gf256Kernel::ALL {
            assert_eq!(Gf256Kernel::parse(kernel.label()), Some(kernel));
            assert_eq!(kernel.to_string(), kernel.label());
        }
        assert_eq!(Gf256Kernel::parse("simd"), None);
        assert_eq!(Gf256Kernel::best(), Gf256Kernel::Nibble64);
        assert_eq!(Gf256Kernel::Scalar.lane_label(), "scalar");
        assert!(["swar64", "ssse3", "avx2"].contains(&Gf256Kernel::Nibble64.lane_label()));
    }
}
