//! Measurement harness for erasure-code cost (Table 2 of the paper).
//!
//! Table 2 reports, for a 4 MB chunk encoded into 4096 blocks, the encoded size
//! and the encoding time of the NULL, XOR, and online codes, together with the
//! overhead of each relative to NULL.  [`measure_code`] performs those
//! measurements for any [`ErasureCode`]; [`CodeCost`] carries the results and the
//! derived overheads.
//!
//! Beyond the paper's columns, every run also decodes from an *exactly
//! minimal* subset — a random [`ErasureCode::min_decode_blocks`]-sized sample
//! of the encoded blocks — which separates optimal codecs (Reed–Solomon:
//! always succeeds) from sub-optimal ones (online: succeeds only with high
//! probability at its `(1 + ε)·n'` bound).

use crate::code::ErasureCode;
use peerstripe_sim::{ByteSize, DetRng, OnlineStats};
use peerstripe_telemetry::{Phase, PhaseProfiler};
use std::time::Instant;

/// Measured cost of one erasure code on a fixed-size chunk.
#[derive(Debug, Clone)]
pub struct CodeCost {
    /// Codec name ("Null", "XOR", "Online", "ReedSolomon").
    pub name: &'static str,
    /// Size of the input chunk.
    pub chunk_size: ByteSize,
    /// Total size of the encoded blocks.
    pub encoded_size: ByteSize,
    /// Mean wall-clock encoding time in milliseconds.
    pub encode_ms: f64,
    /// Mean wall-clock decoding time in milliseconds (from all blocks).
    pub decode_ms: f64,
    /// Standard deviation of encoding time across runs.
    pub encode_ms_sd: f64,
    /// Standard deviation of decoding time across runs.
    pub decode_ms_sd: f64,
    /// Mean wall-clock time in milliseconds of decoding from a random subset
    /// of exactly [`ErasureCode::min_decode_blocks`] blocks (success or not).
    pub decode_min_ms: f64,
    /// Standard deviation of the minimal-subset decoding time across runs.
    pub decode_min_ms_sd: f64,
    /// Minimal-subset decode attempts (one per run).
    pub min_subset_attempts: usize,
    /// Minimal-subset decode attempts that recovered the chunk.
    pub min_subset_successes: usize,
}

impl CodeCost {
    /// Storage overhead relative to the original chunk, as a percentage
    /// (e.g. 50.0 for the (2,3) XOR code).
    pub fn size_overhead_pct(&self) -> f64 {
        if self.chunk_size.is_zero() {
            0.0
        } else {
            100.0 * (self.encoded_size.as_u64() as f64 / self.chunk_size.as_u64() as f64 - 1.0)
        }
    }

    /// Encoding-time overhead relative to a baseline (the NULL code), as a percentage.
    pub fn time_overhead_pct(&self, baseline: &CodeCost) -> f64 {
        if baseline.encode_ms <= 0.0 {
            0.0
        } else {
            100.0 * (self.encode_ms / baseline.encode_ms - 1.0)
        }
    }

    /// Fraction of minimal-subset decode attempts that recovered the chunk, as
    /// a percentage.  100 % characterises an optimal code; the online code's
    /// `(1 + ε)·n'` bound only holds with high probability.
    pub fn min_subset_recovery_pct(&self) -> f64 {
        if self.min_subset_attempts == 0 {
            0.0
        } else {
            100.0 * self.min_subset_successes as f64 / self.min_subset_attempts as f64
        }
    }
}

/// Measure encode/decode cost of `code` on a random chunk of `chunk_size`,
/// averaged over `runs` repetitions.
pub fn measure_code(
    code: &dyn ErasureCode,
    chunk_size: ByteSize,
    runs: usize,
    seed: u64,
) -> CodeCost {
    assert!(runs > 0, "at least one run required");
    let mut rng = DetRng::new(seed);
    let chunk: Vec<u8> = (0..chunk_size.as_u64())
        .map(|_| rng.next_u32() as u8)
        .collect();

    let mut encode_stats = OnlineStats::new();
    let mut decode_stats = OnlineStats::new();
    let mut decode_min_stats = OnlineStats::new();
    let mut encoded_size = ByteSize::ZERO;
    let mut min_subset_attempts = 0usize;
    let mut min_subset_successes = 0usize;
    for _ in 0..runs {
        let start = Instant::now();
        let blocks = code.encode(&chunk);
        encode_stats.push(start.elapsed().as_secs_f64() * 1e3);
        encoded_size = ByteSize::bytes(blocks.iter().map(|b| b.len() as u64).sum());

        let start = Instant::now();
        let decoded = code
            .decode(&blocks, chunk.len())
            .expect("decoding from the full block set must succeed"); // lint:allow(panic) -- measurement harness: a codec failing its own roundtrip must abort the run
        decode_stats.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(decoded.len(), chunk.len());

        // Decode again from a random subset of exactly min_decode_blocks
        // blocks.  The subset is drawn (and cloned) outside the timed region.
        let min = code.min_decode_blocks().min(blocks.len());
        let subset: Vec<_> = rng
            .sample_indices(blocks.len(), min)
            .into_iter()
            .map(|i| blocks[i].clone())
            .collect();
        let start = Instant::now();
        let outcome = code.decode(&subset, chunk.len());
        decode_min_stats.push(start.elapsed().as_secs_f64() * 1e3);
        min_subset_attempts += 1;
        if outcome.map(|d| d == chunk).unwrap_or(false) {
            min_subset_successes += 1;
        }
    }

    CodeCost {
        name: code.name(),
        chunk_size,
        encoded_size,
        encode_ms: encode_stats.mean(),
        decode_ms: decode_stats.mean(),
        encode_ms_sd: encode_stats.sample_std_dev(),
        decode_ms_sd: decode_stats.sample_std_dev(),
        decode_min_ms: decode_min_stats.mean(),
        decode_min_ms_sd: decode_min_stats.sample_std_dev(),
        min_subset_attempts,
        min_subset_successes,
    }
}

/// [`measure_code`] with the whole measurement attributed to the
/// [`Phase::Codec`] bucket of `profiler`, so codec benchmarking shows up in
/// the same per-phase profile as the engine's dispatch/detector/scheduler/
/// placement phases.
pub fn measure_code_profiled(
    code: &dyn ErasureCode,
    chunk_size: ByteSize,
    runs: usize,
    seed: u64,
    profiler: &mut PhaseProfiler,
) -> CodeCost {
    let token = profiler.begin();
    let cost = measure_code(code, chunk_size, runs, seed);
    profiler.end(Phase::Codec, token);
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::null::NullCode;
    use crate::online::OnlineCode;
    use crate::xor::XorCode;

    #[test]
    fn null_code_has_no_size_overhead() {
        let cost = measure_code(&NullCode::new(64), ByteSize::kb(64), 2, 1);
        assert!(cost.size_overhead_pct().abs() < 1.0);
        assert!(cost.encode_ms >= 0.0);
    }

    #[test]
    fn xor_code_has_fifty_percent_overhead() {
        let cost = measure_code(&XorCode::new(2, 64), ByteSize::kb(64), 2, 2);
        assert!(
            (cost.size_overhead_pct() - 50.0).abs() < 1.0,
            "{}",
            cost.size_overhead_pct()
        );
    }

    #[test]
    fn online_code_has_small_overhead() {
        let code = OnlineCode::with_overhead(256, 0.01, 3, 1.10);
        let cost = measure_code(&code, ByteSize::kb(64), 1, 3);
        assert!(cost.size_overhead_pct() < 15.0);
        assert!(cost.size_overhead_pct() > 0.0);
    }

    #[test]
    fn time_overhead_relative_to_baseline() {
        let base = measure_code(&NullCode::new(16), ByteSize::kb(16), 1, 4);
        let xor = measure_code(&XorCode::new(2, 16), ByteSize::kb(16), 1, 4);
        // Only sanity: the helper computes a finite percentage.
        let pct = xor.time_overhead_pct(&base);
        assert!(pct.is_finite());
    }

    #[test]
    fn minimal_subset_decode_always_succeeds_for_optimal_codes() {
        use crate::rs::ReedSolomonCode;
        for cost in [
            measure_code(&NullCode::new(32), ByteSize::kb(32), 3, 5),
            measure_code(&XorCode::new(2, 32), ByteSize::kb(32), 3, 5),
            measure_code(&ReedSolomonCode::new(24, 8), ByteSize::kb(32), 3, 5),
        ] {
            assert_eq!(cost.min_subset_attempts, 3, "{}", cost.name);
            assert_eq!(
                cost.min_subset_recovery_pct(),
                100.0,
                "{} must decode from any minimal subset",
                cost.name
            );
            assert!(cost.decode_min_ms >= 0.0);
        }
    }

    #[test]
    fn profiled_measurement_lands_in_codec_phase() {
        let mut profiler = PhaseProfiler::new(true);
        let cost = measure_code_profiled(&NullCode::new(16), ByteSize::kb(16), 1, 7, &mut profiler);
        assert_eq!(cost.name, "Null");
        assert_eq!(profiler.phase_calls(Phase::Codec), 1);
        assert!(profiler.phase_nanos(Phase::Codec) > 0);
        assert_eq!(profiler.phase_calls(Phase::EventDispatch), 0);

        // A disabled profiler stays empty but the measurement still runs.
        let mut off = PhaseProfiler::new(false);
        let cost = measure_code_profiled(&NullCode::new(16), ByteSize::kb(16), 1, 7, &mut off);
        assert_eq!(cost.name, "Null");
        assert_eq!(profiler.phase_calls(Phase::Codec), 1);
        assert_eq!(off.phase_nanos(Phase::Codec), 0);
    }

    #[test]
    fn minimal_subset_rate_is_tracked_for_online() {
        let code = OnlineCode::with_overhead(128, 0.01, 3, 1.25);
        let cost = measure_code(&code, ByteSize::kb(32), 4, 6);
        assert_eq!(cost.min_subset_attempts, 4);
        assert!(cost.min_subset_successes <= 4);
        let pct = cost.min_subset_recovery_pct();
        assert!((0.0..=100.0).contains(&pct));
    }
}
