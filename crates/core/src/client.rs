//! The PeerStripe storage system (the paper's contribution).
//!
//! [`PeerStripe`] implements the store/retrieve protocol of Section 4:
//!
//! 1. a file is split into **varying-size chunks**, each sized by what the
//!    prospective target nodes report through `getCapacity` probes (Section 4.3);
//! 2. every chunk is erasure coded into blocks named `file_chunk_ecb`, which the
//!    DHT scatters over independent nodes (Section 4.2);
//! 3. the chunk allocation table is stored (and replicated) under `file.CAT`;
//! 4. placement retries are expressed as zero-sized chunks, bounded by a
//!    consecutive-zero-chunk limit after which the store fails;
//! 5. on node failure, lost blocks are regenerated from the surviving blocks of
//!    their chunk and placed on the inheriting neighbour — or elsewhere if that
//!    neighbour is short on space (the paper's "drop and recreate" policy).
//!
//! Two data paths are provided: the *placement* path used by the large-scale
//! simulations (sizes only, no payload bytes) and the *byte* path used by the
//! examples and integration tests (real chunk payloads run through the real
//! erasure codecs of `peerstripe-erasure`).

use crate::backend::StorageBackend;
use crate::cat::ChunkAllocationTable;
use crate::cluster::StorageCluster;
use crate::metrics::StoreMetrics;
use crate::naming::ObjectName;
use crate::policy::CodingPolicy;
use crate::system::{
    BlockPlacement, ChunkPlacement, FileManifest, ManifestStore, StorageSystem, StoreOutcome,
};
use peerstripe_erasure::EncodedBlock;
use peerstripe_overlay::{Id, NodeRef, Takeover};
use peerstripe_placement::{OverlayRandom, PlacementStrategy, RepairRequest, Topology};
use peerstripe_sim::{ByteSize, DetRng};
use peerstripe_trace::FileRecord;
use serde::{Deserialize, Serialize};

/// Configuration of a PeerStripe instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeerStripeConfig {
    /// Erasure-coding policy applied per chunk.
    pub coding: CodingPolicy,
    /// Maximum number of consecutive zero-sized chunks before a store fails
    /// (the paper's simulations use 5).
    pub zero_chunk_limit: u32,
    /// Total number of CAT copies kept (primary + replicas on leaf-set neighbours).
    pub cat_replicas: usize,
    /// Optional upper bound on chunk size (the Section 4.5 trade-off knob).
    pub max_chunk_size: Option<ByteSize>,
    /// Whether to record per-file manifests (needed for availability/recovery
    /// experiments and for retrieval; disabled to bound memory in huge sweeps).
    pub track_manifests: bool,
    /// Number of source blocks per chunk used by the byte-level data path codec.
    pub data_path_blocks: usize,
}

impl Default for PeerStripeConfig {
    fn default() -> Self {
        PeerStripeConfig {
            coding: CodingPolicy::None,
            zero_chunk_limit: 5,
            cat_replicas: 2,
            max_chunk_size: None,
            track_manifests: true,
            data_path_blocks: 16,
        }
    }
}

impl PeerStripeConfig {
    /// The configuration used for the Figure 7–9 simulations: no coding, zero
    /// chunk limit 5, full-capacity reports.
    pub fn paper_simulation() -> Self {
        PeerStripeConfig::default()
    }

    /// Use the given coding policy.
    pub fn with_coding(mut self, coding: CodingPolicy) -> Self {
        self.coding = coding;
        self
    }

    /// Disable manifest tracking.
    pub fn without_manifests(mut self) -> Self {
        self.track_manifests = false;
        self
    }
}

/// Outcome of regenerating the blocks lost with a failed node (Section 4.4).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Number of encoded blocks regenerated.
    pub blocks_regenerated: u64,
    /// Bytes of encoded blocks regenerated.
    pub bytes_regenerated: ByteSize,
    /// Number of chunks that could not be recovered (too many blocks lost).
    pub chunks_lost: u64,
    /// Bytes of user data in unrecoverable chunks.
    pub bytes_lost: ByteSize,
    /// Number of CAT replicas re-created.
    pub cats_replicated: u64,
}

/// The PeerStripe storage system.
///
/// Generic over its [`StorageBackend`]: the in-process [`StorageCluster`]
/// simulator by default (every existing experiment), or `peerstripe-net`'s
/// gateway to drive live `peerstripe-node` daemons over TCP — the store,
/// retrieve, and recovery paths are the same code either way.
pub struct PeerStripe<B: StorageBackend = StorageCluster> {
    backend: B,
    config: PeerStripeConfig,
    manifests: ManifestStore,
    metrics: StoreMetrics,
    placement: Box<dyn PlacementStrategy>,
    topology: Option<Topology>,
}

impl<B: StorageBackend> PeerStripe<B> {
    /// Create a PeerStripe instance over an existing backend, placing blocks
    /// through the classic overlay routing (the paper's behaviour).
    pub fn new(backend: B, config: PeerStripeConfig) -> Self {
        Self::with_placement(backend, config, Box::new(OverlayRandom::new()), None)
    }

    /// Create a PeerStripe instance with an explicit placement strategy and
    /// (optionally) the failure-domain topology it consults.  Domain-aware
    /// strategies cap each chunk at the coding policy's tolerable losses per
    /// domain, and every placed block's domain is recorded in the manifest.
    pub fn with_placement(
        backend: B,
        config: PeerStripeConfig,
        placement: Box<dyn PlacementStrategy>,
        topology: Option<Topology>,
    ) -> Self {
        PeerStripe {
            backend,
            config,
            manifests: ManifestStore::new(),
            metrics: StoreMetrics::new(),
            placement,
            topology,
        }
    }

    /// The backend this instance drives.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Consume the system and return its backend.
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// The manifest of a stored file, if manifests are being tracked.
    pub fn manifest(&self, name: &str) -> Option<&FileManifest> {
        self.manifests.get(name)
    }

    /// All manifests (for availability sweeps).
    pub fn manifests(&self) -> &ManifestStore {
        &self.manifests
    }

    /// True if a previously stored file is still retrievable from the backend.
    pub fn is_file_available(&self, name: &str) -> bool {
        self.manifest(name)
            .map(|m| m.is_available(&self.backend))
            .unwrap_or(false)
    }

    /// The instance's configuration.
    pub fn config(&self) -> &PeerStripeConfig {
        &self.config
    }

    /// The failure-domain topology placement consults, if any.
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// The name of the placement strategy in use.
    pub fn placement_name(&self) -> &'static str {
        self.placement.name()
    }

    /// The per-domain block cap placement enforces for each chunk: with a
    /// topology, a single failure domain may never hold more blocks of a
    /// chunk than the coding policy tolerates losing (so losing a whole
    /// domain can never make the chunk unrecoverable).
    pub fn domain_cap(&self) -> usize {
        if self.topology.is_some() {
            self.config.coding.tolerable_losses().max(1)
        } else {
            usize::MAX
        }
    }

    /// The domain a node belongs to under the configured topology.
    fn domain_of(&self, node: NodeRef) -> Option<peerstripe_placement::DomainId> {
        self.topology.as_ref().and_then(|t| t.domain_of(node))
    }

    /// Object name for one placed block of a chunk under the current policy.
    fn block_name(&self, file: &str, chunk: u32, ecb: u32) -> ObjectName {
        if matches!(self.config.coding, CodingPolicy::None) && ecb == 0 {
            // Without coding a chunk is stored as a single object named after the
            // chunk itself, exactly as in the Figure 7–9 simulations.
            ObjectName::chunk(file, chunk)
        } else {
            ObjectName::block(file, chunk, ecb)
        }
    }

    /// Select the target nodes of the next chunk's blocks through the
    /// placement strategy and derive the chunk size from their capacity
    /// reports.
    ///
    /// Returns the selected `(name, node)` pairs and the achievable chunk
    /// size, which is zero when any selected node reports no space — or when
    /// the strategy refuses the chunk outright (e.g. domain-aware placement
    /// cannot satisfy its spread constraint right now).
    fn plan_chunk(
        &mut self,
        file: &str,
        chunk: u32,
        remaining: ByteSize,
    ) -> (Vec<(ObjectName, NodeRef)>, ByteSize) {
        let m = self.config.coding.placed_blocks();
        let names: Vec<ObjectName> = (0..m as u32)
            .map(|ecb| self.block_name(file, chunk, ecb))
            .collect();
        let keys: Vec<Id> = names.iter().map(ObjectName::key).collect();
        let cap = self.domain_cap();
        let Some(picks) =
            self.placement
                .plan_chunk(&mut self.backend, self.topology.as_ref(), &keys, cap)
        else {
            return (Vec::new(), ByteSize::ZERO);
        };
        debug_assert_eq!(picks.len(), names.len());
        let mut min_report = ByteSize(u64::MAX);
        let mut targets = Vec::with_capacity(m);
        for (name, (node, report)) in names.into_iter().zip(picks) {
            min_report = min_report.min(report);
            targets.push((name, node));
        }
        let mut chunk_size = self.config.coding.chunk_size_for_report(min_report);
        if let Some(cap) = self.config.max_chunk_size {
            chunk_size = chunk_size.min(cap);
        }
        (targets, chunk_size.min(remaining))
    }

    /// Place the blocks of a chunk on their probed targets.  On any refusal the
    /// chunk is rolled back and treated as zero-sized (the capacity changed
    /// between the probe and the store, Section 4.3).
    fn place_chunk(
        &mut self,
        targets: &[(ObjectName, NodeRef)],
        chunk: u32,
        chunk_size: ByteSize,
        payloads: Option<&[Vec<u8>]>,
    ) -> Option<ChunkPlacement> {
        let block_size = self.config.coding.block_size(chunk_size);
        let mut placed: Vec<BlockPlacement> = Vec::with_capacity(targets.len());
        for (i, (name, node)) in targets.iter().enumerate() {
            let size = match payloads {
                Some(p) => ByteSize::bytes(p[i].len() as u64),
                None => block_size,
            };
            let payload = payloads.map(|p| p[i].clone());
            match self
                .backend
                .store_block(*node, name.key(), name.clone(), size, payload)
            {
                Ok(_) => placed.push(BlockPlacement {
                    name: name.clone(),
                    node: *node,
                    size,
                    domain: self.domain_of(*node),
                }),
                Err(_) => {
                    // Roll back the blocks already placed for this chunk.
                    for b in &placed {
                        self.backend.rollback_block(b.node, &b.name, b.size);
                    }
                    return None;
                }
            }
        }
        Some(ChunkPlacement {
            chunk,
            size: chunk_size,
            blocks: placed,
            min_blocks_needed: self.config.coding.min_blocks_needed(),
        })
    }

    /// Roll back every block of a partially stored file.
    fn rollback(&mut self, chunks: &[ChunkPlacement]) {
        for c in chunks {
            for b in &c.blocks {
                self.backend.rollback_block(b.node, &b.name, b.size);
            }
        }
    }

    /// Store the CAT object and its replicas; returns the nodes holding copies.
    fn store_cat(&mut self, file: &str, cat: &ChunkAllocationTable) -> Vec<NodeRef> {
        let name = ObjectName::cat(file);
        let size = cat.serialized_size();
        let mut nodes = Vec::new();
        // Primary copy at the key's root, replicas on the numerically closest
        // neighbours (the leaf-set replication of Section 4.4).
        let replicas = self.config.cat_replicas.max(1);
        let targets = self.backend.replica_targets(name.key(), replicas);
        for (i, (_, node)) in targets.into_iter().enumerate() {
            // Each copy is an independent object so per-node keys stay unique;
            // only the primary charge a lookup (the replicas ride the leaf set).
            if i == 0 {
                let _ = self.backend.route_lookup(name.key());
            }
            if self
                .backend
                .store_block(
                    node,
                    ObjectName::cat(format!("{file}#r{i}")).key(),
                    name.clone(),
                    size,
                    None,
                )
                .is_ok()
            {
                nodes.push(node);
            }
        }
        nodes
    }

    /// Core store loop shared by the placement path and the byte path.
    fn store_internal(&mut self, file: &FileRecord, data: Option<&[u8]>) -> StoreOutcome {
        let mut remaining = file.size;
        let mut offset: u64 = 0;
        let mut chunk_no: u32 = 0;
        let mut consecutive_zero: u32 = 0;
        let mut chunk_sizes: Vec<ByteSize> = Vec::new();
        let mut placements: Vec<ChunkPlacement> = Vec::new();
        let mut placed_bytes = ByteSize::ZERO;

        while !remaining.is_zero() {
            if consecutive_zero > self.config.zero_chunk_limit {
                self.rollback(&placements);
                self.metrics.record_failure(file.size);
                return StoreOutcome::Failed {
                    reason: format!(
                        "exceeded {} consecutive zero-sized chunks at chunk {}",
                        self.config.zero_chunk_limit, chunk_no
                    ),
                };
            }
            let (targets, chunk_size) = self.plan_chunk(&file.name, chunk_no, remaining);
            if chunk_size.is_zero() || targets.is_empty() {
                chunk_sizes.push(ByteSize::ZERO);
                placements.push(ChunkPlacement {
                    chunk: chunk_no,
                    size: ByteSize::ZERO,
                    blocks: Vec::new(),
                    min_blocks_needed: self.config.coding.min_blocks_needed(),
                });
                consecutive_zero += 1;
                chunk_no += 1;
                continue;
            }
            // Byte path: cut and encode the actual chunk payload.
            let payloads: Option<Vec<Vec<u8>>> = data.map(|bytes| {
                let start = offset as usize;
                let end = (offset + chunk_size.as_u64()) as usize;
                let chunk_data = &bytes[start..end.min(bytes.len())];
                let codec = self.config.coding.codec(self.config.data_path_blocks);
                let blocks = codec.encode(chunk_data);
                // Spread the codec's encoded blocks over the placed block objects.
                distribute_payloads(&self.config.coding, blocks, targets.len())
            });
            match self.place_chunk(&targets, chunk_no, chunk_size, payloads.as_deref()) {
                Some(placement) => {
                    placed_bytes += placement.blocks.iter().map(|b| b.size).sum();
                    chunk_sizes.push(chunk_size);
                    placements.push(placement);
                    remaining -= chunk_size;
                    offset += chunk_size.as_u64();
                    consecutive_zero = 0;
                    chunk_no += 1;
                }
                None => {
                    chunk_sizes.push(ByteSize::ZERO);
                    placements.push(ChunkPlacement {
                        chunk: chunk_no,
                        size: ByteSize::ZERO,
                        blocks: Vec::new(),
                        min_blocks_needed: self.config.coding.min_blocks_needed(),
                    });
                    consecutive_zero += 1;
                    chunk_no += 1;
                }
            }
        }

        let cat = ChunkAllocationTable::from_chunk_sizes(&chunk_sizes);
        let cat_nodes = self.store_cat(&file.name, &cat);
        placed_bytes += cat.serialized_size() * cat_nodes.len() as u64;
        self.metrics
            .record_success(file.size, &chunk_sizes, placed_bytes);
        if self.config.track_manifests {
            self.manifests.insert(FileManifest {
                name: file.name.clone(),
                size: file.size,
                chunks: placements,
                cat_nodes,
            });
        }
        StoreOutcome::Stored
    }

    /// Store real bytes under a name; the returned outcome mirrors [`StorageSystem::store_file`].
    pub fn store_data(&mut self, name: &str, data: &[u8]) -> StoreOutcome {
        let record = FileRecord::new(name, ByteSize::bytes(data.len() as u64));
        self.store_internal(&record, Some(data))
    }

    /// Retrieve the full contents of a file previously stored with
    /// [`PeerStripe::store_data`], decoding chunks from whatever blocks survive.
    pub fn retrieve_data(&self, name: &str) -> Option<Vec<u8>> {
        let size = self.manifest(name)?.size;
        self.retrieve_range_data(name, 0, size.as_u64())
    }

    /// Retrieve a byte range `[offset, offset + len)` of a stored file.
    ///
    /// Only the chunks overlapping the range are touched (Section 4.1: partial
    /// access retrieves only the chunks containing the requested portion).
    pub fn retrieve_range_data(&self, name: &str, offset: u64, len: u64) -> Option<Vec<u8>> {
        let manifest = self.manifest(name)?;
        if len == 0 {
            return Some(Vec::new());
        }
        let end = offset.checked_add(len)?.min(manifest.size.as_u64());
        if offset >= manifest.size.as_u64() {
            return Some(Vec::new());
        }
        let codec = self.config.coding.codec(self.config.data_path_blocks);
        let mut out = Vec::with_capacity((end - offset) as usize);
        let mut chunk_start: u64 = 0;
        for chunk in &manifest.chunks {
            let chunk_end = chunk_start + chunk.size.as_u64();
            if chunk.size.is_zero() {
                continue;
            }
            if chunk_end > offset && chunk_start < end {
                // Gather surviving payloads for this chunk.
                let mut encoded: Vec<EncodedBlock> = Vec::new();
                for b in &chunk.blocks {
                    if let Some(obj) = self.backend.fetch_block(b.node, &b.name) {
                        if let Some(payload) = &obj.payload {
                            for eb in unpack_payload(payload) {
                                encoded.push(eb);
                            }
                        }
                    }
                }
                let chunk_bytes = codec.decode(&encoded, chunk.size.as_u64() as usize).ok()?;
                let lo = offset.saturating_sub(chunk_start) as usize;
                let hi = (end - chunk_start).min(chunk.size.as_u64()) as usize;
                out.extend_from_slice(&chunk_bytes[lo..hi]);
            }
            chunk_start = chunk_end;
        }
        Some(out)
    }

    /// Rebuild the payload of a lost block of `chunk_no` from the chunk's
    /// surviving blocks: decode the chunk, re-encode it, and pack exactly the
    /// codec blocks that no live node currently holds.  Returns `None` on the
    /// metadata-only path (no payloads stored) or when the chunk cannot be
    /// decoded from the survivors.
    fn regenerate_payload(&self, file: &str, chunk_no: u32) -> Option<Vec<u8>> {
        let manifest = self.manifests.get(file)?;
        let chunk = manifest.chunks.iter().find(|c| c.chunk == chunk_no)?;
        let mut have: Vec<EncodedBlock> = Vec::new();
        let mut any_payload = false;
        for b in &chunk.blocks {
            if let Some(obj) = self.backend.fetch_block(b.node, &b.name) {
                if let Some(p) = &obj.payload {
                    any_payload = true;
                    have.extend(unpack_payload(p));
                }
            }
        }
        if !any_payload {
            return None;
        }
        let codec = self.config.coding.codec(self.config.data_path_blocks);
        let present: std::collections::BTreeSet<u32> = have.iter().map(|b| b.index).collect();
        let missing: Vec<u32> = (0..codec.encoded_blocks() as u32)
            .filter(|i| !present.contains(i))
            .collect();
        let rebuilt = codec
            .reencode(&have, chunk.size.as_u64() as usize, &missing)
            .ok()?;
        Some(pack_payload(&rebuilt))
    }

    /// Handle the failure of a node: regenerate the encoded blocks it held from
    /// the surviving blocks of each affected chunk (Section 4.4).
    ///
    /// Regenerated blocks get a fresh ECB number (the paper notes the recreated
    /// block "may not be exactly the same … but it is functionally equal") and
    /// are placed on the takeover inheritor, falling back to normal DHT placement
    /// when the inheritor has no space ("drop and recreate elsewhere").
    pub fn handle_node_failure(&mut self, failed: NodeRef, takeover: &Takeover) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let mut regenerations: Vec<(String, u32, ByteSize)> = Vec::new();
        let mut cat_repairs: Vec<String> = Vec::new();

        for manifest in self.manifests.iter() {
            if manifest.cat_nodes.contains(&failed) {
                cat_repairs.push(manifest.name.clone());
            }
            for chunk in &manifest.chunks {
                let lost: usize = chunk.blocks_on(failed).count();
                if lost == 0 {
                    continue;
                }
                if chunk.is_recoverable(&self.backend) {
                    for b in chunk.blocks_on(failed) {
                        regenerations.push((manifest.name.clone(), chunk.chunk, b.size));
                    }
                } else {
                    report.chunks_lost += 1;
                    report.bytes_lost += chunk.size;
                }
            }
        }

        for (file, chunk_no, size) in regenerations {
            let next_ecb = self
                .manifests
                .get(&file)
                .and_then(|m| m.chunks.iter().find(|c| c.chunk == chunk_no))
                .map(|c| {
                    c.blocks
                        .iter()
                        .map(|b| match &b.name {
                            ObjectName::Block { ecb, .. } => *ecb + 1,
                            _ => 1,
                        })
                        .max()
                        .unwrap_or(0)
                })
                .unwrap_or(0)
                .max(self.config.coding.placed_blocks() as u32);
            let name = ObjectName::block(file.clone(), chunk_no, next_ecb);
            // Byte path: rebuild the lost block's payload from the surviving
            // blocks of its chunk ("the newly created encoded block may not be
            // exactly the same as the one that has been lost, but it is
            // functionally equal").  The regenerated payload carries exactly the
            // codec blocks that are no longer present on any live node.
            let payload = self.regenerate_payload(&file, chunk_no);
            let size = payload
                .as_ref()
                .map(|p| ByteSize::bytes(p.len() as u64))
                .unwrap_or(size);
            // A rebuilt block must never collocate with a live block of its
            // own chunk — landing on an existing holder would silently shrink
            // the chunk's failure tolerance.
            let holders: Vec<NodeRef> = self
                .manifests
                .get(&file)
                .and_then(|m| m.chunks.iter().find(|c| c.chunk == chunk_no))
                .map(|c| {
                    c.blocks
                        .iter()
                        .map(|b| b.node)
                        .filter(|&n| self.backend.is_alive(n))
                        .collect()
                })
                .unwrap_or_default();
            // Prefer the inheritor of the failed key space; fall back to the
            // placement strategy (which applies the same exclusion, plus any
            // domain constraints).
            let inheritor = takeover.inheritor_of(name.key()).1;
            let target = if self.backend.can_store(inheritor, size)
                && self.backend.is_alive(inheritor)
                && !holders.contains(&inheritor)
            {
                Some(inheritor)
            } else {
                let mut rng = DetRng::new(name.key().seed());
                let request = RepairRequest {
                    want: 1,
                    size,
                    holders: &holders,
                    domain_cap: self.domain_cap(),
                };
                self.placement
                    .repair_targets(&self.backend, self.topology.as_ref(), &request, &mut rng)
                    .into_iter()
                    .next()
            };
            if let Some(node) = target {
                if self
                    .backend
                    .store_block(node, name.key(), name.clone(), size, payload)
                    .is_ok()
                {
                    report.blocks_regenerated += 1;
                    report.bytes_regenerated += size;
                    let domain = self.domain_of(node);
                    if let Some(m) = self.manifests.get_mut(&file) {
                        if let Some(c) = m.chunks.iter_mut().find(|c| c.chunk == chunk_no) {
                            c.blocks.push(BlockPlacement {
                                name,
                                node,
                                size,
                                domain,
                            });
                            c.blocks.retain(|b| b.node != failed);
                        }
                    }
                }
            }
        }

        for file in cat_repairs {
            let replicas = self.config.cat_replicas.max(1);
            let cat_key = ObjectName::cat(&file).key();
            let candidates = self.backend.replica_targets(cat_key, replicas + 1);
            if let Some(m) = self.manifests.get_mut(&file) {
                m.cat_nodes.retain(|n| *n != failed);
                for (_, node) in candidates {
                    if !m.cat_nodes.contains(&node) {
                        m.cat_nodes.push(node);
                        report.cats_replicated += 1;
                        break;
                    }
                }
            }
        }
        report
    }

    /// Reconstruct a file's CAT by probing chunk objects in order (Section 4.4:
    /// the CAT "can be re-created … by incrementally looking up chunks of a file
    /// and determining their size"), stopping after the configured number of
    /// consecutive misses.
    pub fn reconstruct_cat(&mut self, file: &str) -> ChunkAllocationTable {
        let mut sizes = Vec::new();
        let mut consecutive_missing = 0u32;
        let mut chunk_no = 0u32;
        while consecutive_missing <= self.config.zero_chunk_limit {
            let name = self.block_name(file, chunk_no, 0);
            let found = self
                .backend
                .route_lookup(name.key())
                .and_then(|node| self.backend.fetch_block(node, &name).map(|o| o.size));
            // With coding, the probed block holds only one of the chunk's placed
            // blocks; scale back up to the chunk's data size.
            match found {
                Some(block_size) => {
                    let chunk_size = if matches!(self.config.coding, CodingPolicy::None) {
                        block_size
                    } else {
                        ByteSize::bytes(
                            (block_size.as_u64() as f64 * self.config.coding.placed_blocks() as f64
                                / self.config.coding.storage_overhead())
                            .round() as u64,
                        )
                    };
                    sizes.push(chunk_size);
                    consecutive_missing = 0;
                }
                None => {
                    sizes.push(ByteSize::ZERO);
                    consecutive_missing += 1;
                }
            }
            chunk_no += 1;
        }
        // Trim the trailing run of misses that terminated the probe.
        while sizes.last().is_some_and(|s| s.is_zero()) {
            sizes.pop();
        }
        ChunkAllocationTable::from_chunk_sizes(&sizes)
    }
}

/// Pack a codec's encoded blocks into `targets` payload groups (one per placed
/// block object), preserving block indices for decoding.
///
/// The assignment preserves the placement policy's failure tolerance: for the
/// XOR policy each parity group's members land on distinct targets (so losing
/// one target loses at most one block per group); other policies distribute
/// round-robin.
fn distribute_payloads(
    policy: &CodingPolicy,
    blocks: Vec<EncodedBlock>,
    targets: usize,
) -> Vec<Vec<u8>> {
    let mut groups: Vec<Vec<EncodedBlock>> = vec![Vec::new(); targets];
    match *policy {
        CodingPolicy::Xor { group } if targets == group + 1 => {
            // The codec numbers data blocks 0..n and parity blocks n..; route data
            // block i to target i % group and every parity block to the last target.
            let n = blocks.len() * group / (group + 1);
            for b in blocks {
                let idx = b.index as usize;
                let target = if idx < n { idx % group } else { group };
                groups[target].push(b);
            }
        }
        _ => {
            for (i, b) in blocks.into_iter().enumerate() {
                groups[i % targets].push(b); // lint:allow(slice-index) -- i % targets < targets == groups.len() by construction
            }
        }
    }
    groups.into_iter().map(|g| pack_payload(&g)).collect()
}

/// Serialise a group of encoded blocks into one payload: `[count][index, len, bytes]*`.
///
/// This is the on-node payload format of every block object PeerStripe places;
/// it is public so maintenance tooling (the `peerstripe-repair` regeneration
/// executors) can rebuild block payloads outside the client.
pub fn pack_payload(blocks: &[EncodedBlock]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for b in blocks {
        out.extend_from_slice(&b.index.to_le_bytes());
        out.extend_from_slice(&(b.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&b.data);
    }
    out
}

/// Inverse of [`pack_payload`].
pub fn unpack_payload(payload: &[u8]) -> Vec<EncodedBlock> {
    let mut out = Vec::new();
    if payload.len() < 4 {
        return out;
    }
    let count = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize; // lint:allow(panic) -- 4-byte window guarded by the len()<4 check above
    let mut pos = 4;
    for _ in 0..count {
        if pos + 8 > payload.len() {
            break;
        }
        let index = u32::from_le_bytes(payload[pos..pos + 4].try_into().unwrap()); // lint:allow(panic) -- 4-byte window guarded by the pos+8<=len check above
        let len = u32::from_le_bytes(payload[pos + 4..pos + 8].try_into().unwrap()) as usize; // lint:allow(panic) -- 4-byte window guarded by the pos+8<=len check above
        pos += 8;
        if pos + len > payload.len() {
            break;
        }
        out.push(EncodedBlock::new(index, payload[pos..pos + len].to_vec()));
        pos += len;
    }
    out
}

impl PeerStripe<StorageCluster> {
    /// Consume the system and return its cluster (for re-use between phases).
    pub fn into_cluster(self) -> StorageCluster {
        self.backend
    }
}

impl StorageSystem for PeerStripe<StorageCluster> {
    fn name(&self) -> &str {
        "Our System"
    }

    fn store_file(&mut self, file: &FileRecord) -> StoreOutcome {
        self.store_internal(file, None)
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn cluster(&self) -> &StorageCluster {
        &self.backend
    }

    fn cluster_mut(&mut self) -> &mut StorageCluster {
        &mut self.backend
    }

    fn manifest(&self, name: &str) -> Option<&FileManifest> {
        self.manifests.get(name)
    }

    fn manifests(&self) -> &ManifestStore {
        &self.manifests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use peerstripe_sim::DetRng;
    use peerstripe_trace::CapacityModel;

    fn cluster(nodes: usize, capacity: ByteSize, seed: u64) -> StorageCluster {
        let mut rng = DetRng::new(seed);
        ClusterConfig {
            nodes,
            capacity: CapacityModel::Fixed(capacity),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng)
    }

    fn system(nodes: usize, capacity: ByteSize, seed: u64) -> PeerStripe {
        PeerStripe::new(cluster(nodes, capacity, seed), PeerStripeConfig::default())
    }

    #[test]
    fn stores_files_larger_than_any_single_node() {
        // 50 nodes × 1 GB each; a 10 GB file cannot fit on any one node but fits
        // in the aggregate — the headline capability of the paper.
        let mut ps = system(50, ByteSize::gb(1), 1);
        let file = FileRecord::new("huge-dataset", ByteSize::gb(10));
        assert!(ps.store_file(&file).is_stored());
        let manifest = ps.manifest("huge-dataset").unwrap();
        assert!(manifest.chunks.iter().filter(|c| !c.size.is_zero()).count() >= 10);
        let total: ByteSize = manifest.chunks.iter().map(|c| c.size).sum();
        assert_eq!(total, ByteSize::gb(10));
        assert!(ps.is_file_available("huge-dataset"));
        assert_eq!(ps.metrics().files_failed, 0);
    }

    #[test]
    fn chunk_sizes_follow_reported_capacity() {
        let mut ps = system(20, ByteSize::mb(500), 2);
        let file = FileRecord::new("data", ByteSize::gb(2));
        assert!(ps.store_file(&file).is_stored());
        let manifest = ps.manifest("data").unwrap();
        for c in &manifest.chunks {
            assert!(
                c.size <= ByteSize::mb(500),
                "chunk {} exceeds node capacity",
                c.chunk
            );
        }
    }

    #[test]
    fn store_fails_when_system_is_full() {
        // 4 nodes × 100 MB: a 1 GB file can never fit, so its store must fail —
        // and must not leak partially placed chunks.
        let mut ps = system(4, ByteSize::mb(100), 3);
        let used_before = ps.cluster().total_used();
        let outcome = ps.store_file(&FileRecord::new("b", ByteSize::gb(1)));
        assert!(!outcome.is_stored());
        assert_eq!(ps.metrics().files_failed, 1);
        assert!(ps.metrics().failed_store_pct() > 0.0);
        assert!(ps.manifest("b").is_none());
        assert_eq!(
            ps.cluster().total_used(),
            used_before,
            "rollback must free partial chunks"
        );
    }

    #[test]
    fn zero_chunk_limit_bounds_retries() {
        let mut ps = PeerStripe::new(
            cluster(4, ByteSize::mb(10), 4),
            PeerStripeConfig {
                zero_chunk_limit: 2,
                ..PeerStripeConfig::default()
            },
        );
        let outcome = ps.store_file(&FileRecord::new("big", ByteSize::gb(1)));
        match outcome {
            StoreOutcome::Failed { reason } => assert!(reason.contains("zero-sized")),
            StoreOutcome::Stored => panic!("store should have failed"),
        }
    }

    #[test]
    fn cat_is_replicated() {
        let mut ps = system(30, ByteSize::gb(1), 5);
        assert!(ps
            .store_file(&FileRecord::new("f", ByteSize::mb(100)))
            .is_stored());
        let manifest = ps.manifest("f").unwrap();
        assert_eq!(manifest.cat_nodes.len(), ps.config().cat_replicas);
        let unique: std::collections::HashSet<_> = manifest.cat_nodes.iter().collect();
        assert_eq!(
            unique.len(),
            manifest.cat_nodes.len(),
            "replicas on distinct nodes"
        );
    }

    #[test]
    fn erasure_coding_places_multiple_blocks_per_chunk() {
        let mut ps = PeerStripe::new(
            cluster(40, ByteSize::gb(1), 6),
            PeerStripeConfig::default().with_coding(CodingPolicy::xor_2_3()),
        );
        assert!(ps
            .store_file(&FileRecord::new("img", ByteSize::mb(600)))
            .is_stored());
        let manifest = ps.manifest("img").unwrap();
        for chunk in manifest.chunks.iter().filter(|c| !c.size.is_zero()) {
            assert_eq!(chunk.blocks.len(), 3);
            assert_eq!(chunk.min_blocks_needed, 2);
        }
        // Redundancy inflates placed bytes by ~50%.
        let placed = ps.metrics().bytes_placed.as_u64() as f64;
        let stored = ps.metrics().bytes_stored.as_u64() as f64;
        assert!(placed / stored > 1.4, "placed/stored = {}", placed / stored);
    }

    #[test]
    fn availability_degrades_only_past_coding_tolerance() {
        let mut ps = PeerStripe::new(
            cluster(60, ByteSize::gb(1), 7),
            PeerStripeConfig::default().with_coding(CodingPolicy::xor_2_3()),
        );
        assert!(ps
            .store_file(&FileRecord::new("f", ByteSize::mb(400)))
            .is_stored());
        // Fail one node holding a block of some chunk: file must stay available.
        let victim = ps.manifest("f").unwrap().chunks[0].blocks[0].node;
        let takeover = ps.cluster_mut().fail_node(victim).unwrap();
        assert!(ps.is_file_available("f"));
        // Regenerate, then fail another block of the same chunk: still available.
        let report = ps.handle_node_failure(victim, &takeover);
        assert!(report.blocks_regenerated > 0);
        assert_eq!(report.chunks_lost, 0);
    }

    #[test]
    fn recovery_regenerates_lost_blocks_elsewhere() {
        let mut ps = PeerStripe::new(
            cluster(30, ByteSize::gb(1), 8),
            PeerStripeConfig::default().with_coding(CodingPolicy::online_default()),
        );
        assert!(ps
            .store_file(&FileRecord::new("d", ByteSize::mb(300)))
            .is_stored());
        let victim = ps.manifest("d").unwrap().chunks[0].blocks[0].node;
        let lost_blocks: usize = ps
            .manifest("d")
            .unwrap()
            .chunks
            .iter()
            .map(|c| c.blocks_on(victim).count())
            .sum();
        let takeover = ps.cluster_mut().fail_node(victim).unwrap();
        let report = ps.handle_node_failure(victim, &takeover);
        assert_eq!(report.blocks_regenerated as usize, lost_blocks);
        // After recovery no manifest block references the failed node.
        assert!(ps
            .manifest("d")
            .unwrap()
            .all_blocks()
            .all(|b| b.node != victim));
        assert!(ps.is_file_available("d"));
    }

    #[test]
    fn byte_path_round_trips_data() {
        let mut ps = system(25, ByteSize::mb(200), 9);
        let mut rng = DetRng::new(99);
        let data: Vec<u8> = (0..600_000).map(|_| rng.next_u32() as u8).collect();
        assert!(ps.store_data("blob", &data).is_stored());
        assert_eq!(ps.retrieve_data("blob").unwrap(), data);
        // Range read.
        assert_eq!(
            ps.retrieve_range_data("blob", 1000, 5000).unwrap(),
            data[1000..6000].to_vec()
        );
        // Reads past the end clamp.
        assert_eq!(
            ps.retrieve_range_data("blob", 599_000, 10_000).unwrap(),
            data[599_000..].to_vec()
        );
        assert_eq!(
            ps.retrieve_range_data("blob", 0, 0).unwrap(),
            Vec::<u8>::new()
        );
        assert!(ps.retrieve_data("missing").is_none());
    }

    #[test]
    fn byte_path_survives_tolerable_failures_with_coding() {
        let mut ps = PeerStripe::new(
            cluster(40, ByteSize::mb(200), 10),
            PeerStripeConfig::default().with_coding(CodingPolicy::xor_2_3()),
        );
        let mut rng = DetRng::new(5);
        let data: Vec<u8> = (0..200_000).map(|_| rng.next_u32() as u8).collect();
        assert!(ps.store_data("img", &data).is_stored());
        // Fail one block-holding node per chunk's tolerance.
        let victim = ps.manifest("img").unwrap().chunks[0].blocks[2].node;
        ps.cluster_mut().fail_node(victim);
        assert_eq!(ps.retrieve_data("img").unwrap(), data);
    }

    #[test]
    fn byte_path_round_trips_and_recovers_with_reed_solomon() {
        let mut ps = PeerStripe::new(
            cluster(40, ByteSize::mb(200), 21),
            PeerStripeConfig::default().with_coding(CodingPolicy::rs_default()),
        );
        let mut rng = DetRng::new(6);
        let data: Vec<u8> = (0..300_000).map(|_| rng.next_u32() as u8).collect();
        assert!(ps.store_data("volume", &data).is_stored());
        // Every chunk is placed as 6 block objects of which any 4 suffice.
        for chunk in ps.manifest("volume").unwrap().chunks.iter() {
            assert_eq!(chunk.blocks.len(), 6);
            assert_eq!(chunk.min_blocks_needed, 4);
        }
        // Fail a block-holding node: the payload reads back bit-for-bit and
        // recovery regenerates exactly the lost blocks.
        let victim = ps.manifest("volume").unwrap().chunks[0].blocks[0].node;
        let lost: usize = ps
            .manifest("volume")
            .unwrap()
            .chunks
            .iter()
            .map(|c| c.blocks_on(victim).count())
            .sum();
        let takeover = ps.cluster_mut().fail_node(victim).unwrap();
        assert_eq!(ps.retrieve_data("volume").unwrap(), data);
        let report = ps.handle_node_failure(victim, &takeover);
        assert_eq!(report.blocks_regenerated as usize, lost);
        assert_eq!(report.chunks_lost, 0);
        assert_eq!(ps.retrieve_data("volume").unwrap(), data);
        assert!(ps.is_file_available("volume"));
    }

    #[test]
    fn cat_reconstruction_matches_original() {
        let mut ps = system(30, ByteSize::mb(300), 11);
        assert!(ps
            .store_file(&FileRecord::new("rebuild-me", ByteSize::gb(1)))
            .is_stored());
        let original: Vec<ByteSize> = ps
            .manifest("rebuild-me")
            .unwrap()
            .chunks
            .iter()
            .map(|c| c.size)
            .collect();
        let rebuilt = ps.reconstruct_cat("rebuild-me");
        let rebuilt_sizes: Vec<ByteSize> = rebuilt.extents().iter().map(|e| e.size()).collect();
        // Trailing zero chunks are trimmed by reconstruction; compare the data prefix.
        let original_trimmed: Vec<ByteSize> = {
            let mut v = original.clone();
            while v.last().is_some_and(|s| s.is_zero()) {
                v.pop();
            }
            v
        };
        assert_eq!(rebuilt_sizes, original_trimmed);
    }

    #[test]
    fn empty_file_stores_trivially() {
        let mut ps = system(10, ByteSize::mb(100), 12);
        assert!(ps
            .store_file(&FileRecord::new("empty", ByteSize::ZERO))
            .is_stored());
        assert!(ps.is_file_available("empty"));
        assert_eq!(ps.manifest("empty").unwrap().chunks.len(), 0);
    }

    #[test]
    fn domain_spread_respects_the_cap_and_records_domains() {
        use peerstripe_placement::{DomainSpread, SpreadReport, Topology};
        let topo = Topology::uniform_groups(40, 5);
        let mut ps = PeerStripe::with_placement(
            cluster(40, ByteSize::gb(1), 14),
            PeerStripeConfig::default().with_coding(CodingPolicy::rs_default()),
            Box::new(DomainSpread::new()),
            Some(topo.clone()),
        );
        assert_eq!(ps.placement_name(), "domain-spread");
        assert_eq!(ps.domain_cap(), 2, "RS(4, 6) tolerates two losses");
        for i in 0..8 {
            assert!(ps
                .store_file(&FileRecord::new(format!("f{i}"), ByteSize::mb(300)))
                .is_stored());
        }
        let mut spread = SpreadReport::new(ps.domain_cap());
        for i in 0..8 {
            let manifest = ps.manifest(&format!("f{i}")).unwrap();
            for chunk in manifest.chunks.iter().filter(|c| !c.size.is_zero()) {
                for b in &chunk.blocks {
                    assert_eq!(b.domain, topo.domain_of(b.node), "recorded domain");
                }
                spread.record_chunk(chunk.blocks.iter().map(|b| b.domain));
            }
        }
        assert_eq!(spread.cap_violations, 0, "no chunk exceeds the domain cap");
        assert!(spread.max_in_one_domain <= 2);
        assert!(spread.mean_distinct_domains() >= 3.0, "6 blocks, cap 2");
    }

    #[test]
    fn oblivious_placement_leaves_domains_unrecorded() {
        let mut ps = system(30, ByteSize::gb(1), 15);
        assert!(ps
            .store_file(&FileRecord::new("f", ByteSize::mb(200)))
            .is_stored());
        assert_eq!(ps.domain_cap(), usize::MAX);
        assert!(ps
            .manifest("f")
            .unwrap()
            .all_blocks()
            .all(|b| b.domain.is_none()));
    }

    #[test]
    fn rebuilt_blocks_never_collocate_with_live_blocks_of_their_chunk() {
        let mut ps = PeerStripe::new(
            cluster(30, ByteSize::gb(1), 16),
            PeerStripeConfig::default().with_coding(CodingPolicy::rs_default()),
        );
        assert!(ps
            .store_file(&FileRecord::new("d", ByteSize::mb(400)))
            .is_stored());
        // Chunks whose blocks start on distinct nodes must stay collocation-free
        // through repeated failure/recovery rounds.
        let distinct = |c: &ChunkPlacement, cluster: &StorageCluster| {
            let nodes: Vec<NodeRef> = c
                .blocks
                .iter()
                .map(|b| b.node)
                .filter(|&n| cluster.overlay().is_alive(n))
                .collect();
            let unique: std::collections::HashSet<_> = nodes.iter().collect();
            unique.len() == nodes.len()
        };
        let clean_before: Vec<u32> = ps
            .manifest("d")
            .unwrap()
            .chunks
            .iter()
            .filter(|c| distinct(c, ps.cluster()))
            .map(|c| c.chunk)
            .collect();
        assert!(!clean_before.is_empty());
        for round in 0..3 {
            let victim = ps.manifest("d").unwrap().chunks[0].blocks[round].node;
            let takeover = ps.cluster_mut().fail_node(victim).unwrap();
            ps.handle_node_failure(victim, &takeover);
        }
        let manifest = ps.manifest("d").unwrap();
        for chunk in &manifest.chunks {
            if clean_before.contains(&chunk.chunk) {
                assert!(
                    distinct(chunk, ps.cluster()),
                    "chunk {} gained a collocated rebuilt block: {:?}",
                    chunk.chunk,
                    chunk.blocks.iter().map(|b| b.node).collect::<Vec<_>>()
                );
            }
        }
        assert!(ps.is_file_available("d"));
    }

    #[test]
    fn metrics_track_chunk_distribution() {
        let mut ps = system(50, ByteSize::gb(1), 13);
        for i in 0..20 {
            ps.store_file(&FileRecord::new(format!("f{i}"), ByteSize::mb(250)));
        }
        let m = ps.metrics();
        assert_eq!(m.files_attempted, 20);
        assert!(m.mean_chunks_per_file() >= 1.0);
        assert!(m.mean_chunk_size() > ByteSize::ZERO);
    }
}
