//! Store metrics collected by every storage system.
//!
//! The evaluation reports, as files are inserted: the number and the total size
//! of failed stores (Figures 7 and 8), the overall capacity utilization
//! (Figure 9), and the distribution of chunk counts and chunk sizes (Table 1).
//! [`StoreMetrics`] accumulates all of these in one pass.

use peerstripe_sim::{ByteSize, OnlineStats};

/// Counters and distributions describing a sequence of file stores.
#[derive(Debug, Clone, Default)]
pub struct StoreMetrics {
    /// Files whose store was attempted.
    pub files_attempted: u64,
    /// Files whose store failed.
    pub files_failed: u64,
    /// Total bytes across attempted files.
    pub bytes_attempted: ByteSize,
    /// Total bytes across failed files.
    pub bytes_failed: ByteSize,
    /// Bytes of user data successfully stored (excluding redundancy).
    pub bytes_stored: ByteSize,
    /// Bytes physically placed on nodes (including coding redundancy and replicas).
    pub bytes_placed: ByteSize,
    /// Distribution of the number of (non-empty) chunks per successfully stored file.
    pub chunks_per_file: OnlineStats,
    /// Distribution of (non-empty) chunk sizes in bytes.
    pub chunk_sizes: OnlineStats,
    /// Number of chunk-placement retries that produced zero-sized chunks.
    pub zero_chunks: u64,
}

impl StoreMetrics {
    /// Create empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a successful file store.
    pub fn record_success(
        &mut self,
        file_size: ByteSize,
        chunk_sizes: &[ByteSize],
        placed: ByteSize,
    ) {
        self.files_attempted += 1;
        self.bytes_attempted += file_size;
        self.bytes_stored += file_size;
        self.bytes_placed += placed;
        let data_chunks: Vec<ByteSize> = chunk_sizes
            .iter()
            .copied()
            .filter(|s| !s.is_zero())
            .collect();
        self.chunks_per_file.push(data_chunks.len() as f64);
        for c in &data_chunks {
            self.chunk_sizes.push(c.as_u64() as f64);
        }
        self.zero_chunks += (chunk_sizes.len() - data_chunks.len()) as u64;
    }

    /// Record a failed file store.
    pub fn record_failure(&mut self, file_size: ByteSize) {
        self.files_attempted += 1;
        self.files_failed += 1;
        self.bytes_attempted += file_size;
        self.bytes_failed += file_size;
    }

    /// Failed stores as a percentage of attempted stores (Figure 7's y-axis).
    pub fn failed_store_pct(&self) -> f64 {
        if self.files_attempted == 0 {
            0.0
        } else {
            100.0 * self.files_failed as f64 / self.files_attempted as f64
        }
    }

    /// Failed bytes as a percentage of attempted bytes (Figure 8's y-axis).
    pub fn failed_bytes_pct(&self) -> f64 {
        if self.bytes_attempted.is_zero() {
            0.0
        } else {
            100.0 * self.bytes_failed.as_u64() as f64 / self.bytes_attempted.as_u64() as f64
        }
    }

    /// Mean number of data chunks per stored file (Table 1).
    pub fn mean_chunks_per_file(&self) -> f64 {
        self.chunks_per_file.mean()
    }

    /// Standard deviation of chunks per stored file (Table 1).
    pub fn sd_chunks_per_file(&self) -> f64 {
        self.chunks_per_file.std_dev()
    }

    /// Mean chunk size (Table 1).
    pub fn mean_chunk_size(&self) -> ByteSize {
        ByteSize::bytes(self.chunk_sizes.mean().round() as u64)
    }

    /// Standard deviation of chunk size (Table 1).
    pub fn sd_chunk_size(&self) -> ByteSize {
        ByteSize::bytes(self.chunk_sizes.std_dev().round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_and_failure_percentages() {
        let mut m = StoreMetrics::new();
        m.record_success(
            ByteSize::mb(100),
            &[ByteSize::mb(60), ByteSize::ZERO, ByteSize::mb(40)],
            ByteSize::mb(100),
        );
        m.record_failure(ByteSize::mb(300));
        assert_eq!(m.files_attempted, 2);
        assert_eq!(m.files_failed, 1);
        assert_eq!(m.failed_store_pct(), 50.0);
        assert_eq!(m.bytes_attempted, ByteSize::mb(400));
        assert_eq!(m.bytes_failed, ByteSize::mb(300));
        assert_eq!(m.failed_bytes_pct(), 75.0);
        assert_eq!(m.zero_chunks, 1);
    }

    #[test]
    fn chunk_statistics_ignore_empty_chunks() {
        let mut m = StoreMetrics::new();
        m.record_success(
            ByteSize::mb(100),
            &[ByteSize::mb(50), ByteSize::mb(50), ByteSize::ZERO],
            ByteSize::mb(100),
        );
        m.record_success(ByteSize::mb(80), &[ByteSize::mb(80)], ByteSize::mb(80));
        assert!((m.mean_chunks_per_file() - 1.5).abs() < 1e-12);
        assert_eq!(m.chunk_sizes.count(), 3);
        assert!((m.mean_chunk_size().as_mb() - 60.0).abs() < 0.1);
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let m = StoreMetrics::new();
        assert_eq!(m.failed_store_pct(), 0.0);
        assert_eq!(m.failed_bytes_pct(), 0.0);
        assert_eq!(m.mean_chunks_per_file(), 0.0);
        assert_eq!(m.mean_chunk_size(), ByteSize::ZERO);
    }

    #[test]
    fn placed_bytes_include_redundancy() {
        let mut m = StoreMetrics::new();
        m.record_success(ByteSize::mb(100), &[ByteSize::mb(100)], ByteSize::mb(150));
        assert_eq!(m.bytes_stored, ByteSize::mb(100));
        assert_eq!(m.bytes_placed, ByteSize::mb(150));
    }
}
