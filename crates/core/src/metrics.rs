//! Store metrics collected by every storage system.
//!
//! The evaluation reports, as files are inserted: the number and the total size
//! of failed stores (Figures 7 and 8), the overall capacity utilization
//! (Figure 9), and the distribution of chunk counts and chunk sizes (Table 1).
//! [`StoreMetrics`] accumulates all of these in one pass.
//!
//! [`MaintenanceMetrics`] is the continuous-time counterpart: the repair
//! subsystem samples availability/durability over virtual time and accumulates
//! repair-traffic counters, so a churn run can report "repair bytes spent per
//! useful byte protected" next to the durability it bought.

use peerstripe_sim::{ByteSize, OnlineStats, SimTime};
use peerstripe_telemetry::MetricsRegistry;

/// Counters and distributions describing a sequence of file stores.
#[derive(Debug, Clone, Default)]
pub struct StoreMetrics {
    /// Files whose store was attempted.
    pub files_attempted: u64,
    /// Files whose store failed.
    pub files_failed: u64,
    /// Total bytes across attempted files.
    pub bytes_attempted: ByteSize,
    /// Total bytes across failed files.
    pub bytes_failed: ByteSize,
    /// Bytes of user data successfully stored (excluding redundancy).
    pub bytes_stored: ByteSize,
    /// Bytes physically placed on nodes (including coding redundancy and replicas).
    pub bytes_placed: ByteSize,
    /// Distribution of the number of (non-empty) chunks per successfully stored file.
    pub chunks_per_file: OnlineStats,
    /// Distribution of (non-empty) chunk sizes in bytes.
    pub chunk_sizes: OnlineStats,
    /// Number of chunk-placement retries that produced zero-sized chunks.
    pub zero_chunks: u64,
}

impl StoreMetrics {
    /// Create empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a successful file store.
    pub fn record_success(
        &mut self,
        file_size: ByteSize,
        chunk_sizes: &[ByteSize],
        placed: ByteSize,
    ) {
        self.files_attempted += 1;
        self.bytes_attempted += file_size;
        self.bytes_stored += file_size;
        self.bytes_placed += placed;
        let data_chunks: Vec<ByteSize> = chunk_sizes
            .iter()
            .copied()
            .filter(|s| !s.is_zero())
            .collect();
        self.chunks_per_file.push(data_chunks.len() as f64);
        for c in &data_chunks {
            self.chunk_sizes.push(c.as_u64() as f64);
        }
        self.zero_chunks += (chunk_sizes.len() - data_chunks.len()) as u64;
    }

    /// Record a failed file store.
    pub fn record_failure(&mut self, file_size: ByteSize) {
        self.files_attempted += 1;
        self.files_failed += 1;
        self.bytes_attempted += file_size;
        self.bytes_failed += file_size;
    }

    /// Failed stores as a percentage of attempted stores (Figure 7's y-axis).
    pub fn failed_store_pct(&self) -> f64 {
        if self.files_attempted == 0 {
            0.0
        } else {
            100.0 * self.files_failed as f64 / self.files_attempted as f64
        }
    }

    /// Failed bytes as a percentage of attempted bytes (Figure 8's y-axis).
    pub fn failed_bytes_pct(&self) -> f64 {
        if self.bytes_attempted.is_zero() {
            0.0
        } else {
            100.0 * self.bytes_failed.as_u64() as f64 / self.bytes_attempted.as_u64() as f64
        }
    }

    /// Mean number of data chunks per stored file (Table 1).
    pub fn mean_chunks_per_file(&self) -> f64 {
        self.chunks_per_file.mean()
    }

    /// Standard deviation of chunks per stored file (Table 1).
    pub fn sd_chunks_per_file(&self) -> f64 {
        self.chunks_per_file.std_dev()
    }

    /// Mean chunk size (Table 1).
    pub fn mean_chunk_size(&self) -> ByteSize {
        ByteSize::bytes(self.chunk_sizes.mean().round() as u64)
    }

    /// Standard deviation of chunk size (Table 1).
    pub fn sd_chunk_size(&self) -> ByteSize {
        ByteSize::bytes(self.chunk_sizes.std_dev().round() as u64)
    }
}

/// One periodic health sample taken by the maintenance engine.
#[derive(Debug, Clone, Copy)]
pub struct MaintenanceSample {
    /// Virtual time of the sample.
    pub at: SimTime,
    /// Files with at least one chunk currently unretrievable (live blocks below
    /// the decode threshold); recovers when transient nodes return.
    pub files_unavailable: u64,
    /// Files permanently lost so far (a chunk fell below its threshold with no
    /// surviving copies to regenerate from); never recovers.
    pub files_lost: u64,
    /// Cumulative repair traffic so far.
    pub repair_bytes: ByteSize,
    /// Repairs in flight at the sample time.
    pub repairs_in_flight: u64,
}

/// Time-series durability/availability/repair-traffic counters accumulated by
/// the event-driven maintenance engine (`peerstripe-repair`).
#[derive(Debug, Clone)]
pub struct MaintenanceMetrics {
    /// Periodic samples in virtual-time order.
    pub samples: Vec<MaintenanceSample>,
    /// Distribution of the availability percentage across samples.
    pub availability_pct: OnlineStats,
    /// Cumulative repair traffic (blocks read for decoding + blocks written).
    pub repair_bytes: ByteSize,
    /// Individual block regenerations completed.
    pub blocks_regenerated: u64,
    /// Regenerations abandoned because their target died before completion.
    pub repairs_dropped: u64,
    /// Nodes whose departure turned out permanent (disk contents gone).
    pub permanent_failures: u64,
    /// Transient departures (the node eventually returns with its data).
    pub transient_departures: u64,
    /// Correlated whole-group outage events drawn by the grouped churn mode
    /// (a lab powering down, a switch dying).
    pub group_outages: u64,
    /// Individual node departures caused by group outages (each outage takes
    /// down every live member of its failure domain at once).
    pub group_departures: u64,
    /// Nodes declared dead by the failure detector that later returned — the
    /// cost of an aggressive permanence timeout.
    pub false_declarations: u64,
    /// Repair traffic spent regenerating blocks of nodes that later returned:
    /// the byte bill of false declarations, and the saving an outage-aware
    /// detector buys.  Always ≤ `repair_bytes`.
    pub wasted_repair_bytes: ByteSize,
    /// Down periods whose declaration the detection policy held at least once
    /// (correlated absence classified as an outage).
    pub declarations_held: u64,
    /// Held declarations cancelled by the node returning before the hold cap
    /// — write-offs (and their regeneration waves) that never happened.
    pub held_cancelled: u64,
    /// Files written off as permanently lost.
    pub files_lost: u64,
    /// User bytes in permanently lost chunks.
    pub bytes_lost: ByteSize,
}

impl Default for MaintenanceMetrics {
    fn default() -> Self {
        MaintenanceMetrics {
            samples: Vec::new(),
            // `OnlineStats::new()`, not the derived default: the accumulator's
            // min/max tracking needs its infinity sentinels.
            availability_pct: OnlineStats::new(),
            repair_bytes: ByteSize::ZERO,
            blocks_regenerated: 0,
            repairs_dropped: 0,
            permanent_failures: 0,
            transient_departures: 0,
            group_outages: 0,
            group_departures: 0,
            false_declarations: 0,
            wasted_repair_bytes: ByteSize::ZERO,
            declarations_held: 0,
            held_cancelled: 0,
            files_lost: 0,
            bytes_lost: ByteSize::ZERO,
        }
    }
}

impl MaintenanceMetrics {
    /// Create empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one periodic health sample.
    pub fn record_sample(&mut self, sample: MaintenanceSample, files_total: u64) {
        if files_total > 0 {
            let available = files_total.saturating_sub(sample.files_unavailable);
            self.availability_pct
                .push(100.0 * available as f64 / files_total as f64);
        }
        self.samples.push(sample);
    }

    /// Charge completed regeneration traffic.
    pub fn record_repair(&mut self, traffic: ByteSize, blocks: u64) {
        self.repair_bytes += traffic;
        self.blocks_regenerated += blocks;
    }

    /// Record a chunk (and optionally its file) becoming permanently lost.
    pub fn record_loss(&mut self, user_bytes: ByteSize, file_newly_lost: bool) {
        self.bytes_lost += user_bytes;
        if file_newly_lost {
            self.files_lost += 1;
        }
    }

    /// Mean availability percentage across all samples (100 when never sampled).
    pub fn mean_availability_pct(&self) -> f64 {
        if self.availability_pct.count() == 0 {
            100.0
        } else {
            self.availability_pct.mean()
        }
    }

    /// Lowest sampled availability percentage (100 when never sampled).
    pub fn min_availability_pct(&self) -> f64 {
        self.availability_pct.min().unwrap_or(100.0)
    }

    /// Repair traffic spent per useful byte protected — the maintenance
    /// efficiency metric the policy sweep compares eager and lazy repair on.
    pub fn repair_bytes_per_useful_byte(&self, useful: ByteSize) -> f64 {
        if useful.is_zero() {
            0.0
        } else {
            self.repair_bytes.as_u64() as f64 / useful.as_u64() as f64
        }
    }

    /// Export every counter into a [`MetricsRegistry`] under the given label
    /// set — the bridge from the engine's bespoke struct onto the shared
    /// telemetry registry, so sweeps can merge per-cell metrics (labelled by
    /// policy/strategy/domain) into one deterministic JSON export.
    pub fn fill_registry(&self, registry: &mut MetricsRegistry, labels: &[(&str, &str)]) {
        let counters: [(&str, u64); 13] = [
            ("maintenance_repair_bytes_total", self.repair_bytes.as_u64()),
            (
                "maintenance_blocks_regenerated_total",
                self.blocks_regenerated,
            ),
            ("maintenance_repairs_dropped_total", self.repairs_dropped),
            (
                "maintenance_permanent_failures_total",
                self.permanent_failures,
            ),
            (
                "maintenance_transient_departures_total",
                self.transient_departures,
            ),
            ("maintenance_group_outages_total", self.group_outages),
            ("maintenance_group_departures_total", self.group_departures),
            (
                "maintenance_false_declarations_total",
                self.false_declarations,
            ),
            (
                "maintenance_wasted_repair_bytes_total",
                self.wasted_repair_bytes.as_u64(),
            ),
            (
                "maintenance_declarations_held_total",
                self.declarations_held,
            ),
            ("maintenance_held_cancelled_total", self.held_cancelled),
            ("maintenance_files_lost_total", self.files_lost),
            ("maintenance_bytes_lost_total", self.bytes_lost.as_u64()),
        ];
        for (name, value) in counters {
            let handle = registry.counter(name, labels);
            registry.inc(handle, value);
        }
        let gauges: [(&str, f64); 3] = [
            (
                "maintenance_availability_mean_pct",
                self.mean_availability_pct(),
            ),
            (
                "maintenance_availability_min_pct",
                self.min_availability_pct(),
            ),
            ("maintenance_samples", self.samples.len() as f64),
        ];
        for (name, value) in gauges {
            let handle = registry.gauge(name, labels);
            registry.set(handle, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_and_failure_percentages() {
        let mut m = StoreMetrics::new();
        m.record_success(
            ByteSize::mb(100),
            &[ByteSize::mb(60), ByteSize::ZERO, ByteSize::mb(40)],
            ByteSize::mb(100),
        );
        m.record_failure(ByteSize::mb(300));
        assert_eq!(m.files_attempted, 2);
        assert_eq!(m.files_failed, 1);
        assert_eq!(m.failed_store_pct(), 50.0);
        assert_eq!(m.bytes_attempted, ByteSize::mb(400));
        assert_eq!(m.bytes_failed, ByteSize::mb(300));
        assert_eq!(m.failed_bytes_pct(), 75.0);
        assert_eq!(m.zero_chunks, 1);
    }

    #[test]
    fn chunk_statistics_ignore_empty_chunks() {
        let mut m = StoreMetrics::new();
        m.record_success(
            ByteSize::mb(100),
            &[ByteSize::mb(50), ByteSize::mb(50), ByteSize::ZERO],
            ByteSize::mb(100),
        );
        m.record_success(ByteSize::mb(80), &[ByteSize::mb(80)], ByteSize::mb(80));
        assert!((m.mean_chunks_per_file() - 1.5).abs() < 1e-12);
        assert_eq!(m.chunk_sizes.count(), 3);
        assert!((m.mean_chunk_size().as_mb() - 60.0).abs() < 0.1);
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let m = StoreMetrics::new();
        assert_eq!(m.failed_store_pct(), 0.0);
        assert_eq!(m.failed_bytes_pct(), 0.0);
        assert_eq!(m.mean_chunks_per_file(), 0.0);
        assert_eq!(m.mean_chunk_size(), ByteSize::ZERO);
    }

    #[test]
    fn maintenance_metrics_accumulate_and_bound() {
        let mut m = MaintenanceMetrics::new();
        assert_eq!(m.mean_availability_pct(), 100.0);
        assert_eq!(m.min_availability_pct(), 100.0);
        m.record_sample(
            MaintenanceSample {
                at: SimTime::from_secs(60),
                files_unavailable: 10,
                files_lost: 0,
                repair_bytes: ByteSize::mb(5),
                repairs_in_flight: 2,
            },
            100,
        );
        m.record_sample(
            MaintenanceSample {
                at: SimTime::from_secs(120),
                files_unavailable: 0,
                files_lost: 1,
                repair_bytes: ByteSize::mb(9),
                repairs_in_flight: 0,
            },
            100,
        );
        assert_eq!(m.samples.len(), 2);
        assert!((m.mean_availability_pct() - 95.0).abs() < 1e-9);
        assert_eq!(m.min_availability_pct(), 90.0);
        m.record_repair(ByteSize::mb(9), 3);
        assert_eq!(m.blocks_regenerated, 3);
        m.record_loss(ByteSize::mb(200), true);
        m.record_loss(ByteSize::mb(100), false);
        assert_eq!(m.files_lost, 1);
        assert_eq!(m.bytes_lost, ByteSize::mb(300));
        // 9 MB of repair for 300 MB of useful data = 0.03.
        assert!((m.repair_bytes_per_useful_byte(ByteSize::mb(300)) - 0.03).abs() < 1e-9);
        assert_eq!(m.repair_bytes_per_useful_byte(ByteSize::ZERO), 0.0);
    }

    #[test]
    fn placed_bytes_include_redundancy() {
        let mut m = StoreMetrics::new();
        m.record_success(ByteSize::mb(100), &[ByteSize::mb(100)], ByteSize::mb(150));
        assert_eq!(m.bytes_stored, ByteSize::mb(100));
        assert_eq!(m.bytes_placed, ByteSize::mb(150));
    }
}
