//! The chunk / encoded-block / CAT naming convention.
//!
//! PeerStripe names every stored object after the file it belongs to so that no
//! mapping tables are needed (Section 4.2 of the paper):
//!
//! * chunk `i` of file `F` is named `F_i`,
//! * encoded block `j` of chunk `i` is named `F_i_j`,
//! * the chunk-allocation table of `F` is named `F.CAT`.
//!
//! The object name is hashed into the overlay key that decides the storage node,
//! so two properties matter: names must be deterministic (the reader recomputes
//! them) and distinct blocks must get distinct names (so they land on different
//! nodes with high probability).

use peerstripe_overlay::Id;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed PeerStripe object name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectName {
    /// A whole chunk (used when no erasure coding is configured).
    Chunk {
        /// File the chunk belongs to.
        file: String,
        /// Zero-based chunk number.
        chunk: u32,
    },
    /// One erasure-coded block of a chunk.
    Block {
        /// File the block belongs to.
        file: String,
        /// Zero-based chunk number.
        chunk: u32,
        /// Erasure-coded block number within the chunk (the paper's `ECB`).
        ecb: u32,
    },
    /// The chunk-allocation table of a file.
    Cat {
        /// The file the CAT describes.
        file: String,
    },
    /// A whole file stored as a single object (PAST-style placement); the salt
    /// counts the retry attempts (PAST rehashes the name with a new salt).
    WholeFile {
        /// File name.
        file: String,
        /// Retry salt (0 for the first attempt).
        salt: u32,
    },
}

impl ObjectName {
    /// Create a chunk name.
    pub fn chunk(file: impl Into<String>, chunk: u32) -> Self {
        ObjectName::Chunk {
            file: file.into(),
            chunk,
        }
    }

    /// Create an encoded-block name.
    pub fn block(file: impl Into<String>, chunk: u32, ecb: u32) -> Self {
        ObjectName::Block {
            file: file.into(),
            chunk,
            ecb,
        }
    }

    /// Create a CAT name.
    pub fn cat(file: impl Into<String>) -> Self {
        ObjectName::Cat { file: file.into() }
    }

    /// Create a whole-file name with a retry salt.
    pub fn whole_file(file: impl Into<String>, salt: u32) -> Self {
        ObjectName::WholeFile {
            file: file.into(),
            salt,
        }
    }

    /// The file this object belongs to.
    pub fn file(&self) -> &str {
        match self {
            ObjectName::Chunk { file, .. }
            | ObjectName::Block { file, .. }
            | ObjectName::Cat { file }
            | ObjectName::WholeFile { file, .. } => file,
        }
    }

    /// The chunk number, if the object is chunk-scoped.
    pub fn chunk_no(&self) -> Option<u32> {
        match self {
            ObjectName::Chunk { chunk, .. } | ObjectName::Block { chunk, .. } => Some(*chunk),
            _ => None,
        }
    }

    /// Render the canonical textual form (`file_chunk`, `file_chunk_ecb`,
    /// `file.CAT`, `file#salt`).
    pub fn render(&self) -> String {
        match self {
            ObjectName::Chunk { file, chunk } => format!("{file}_{chunk}"),
            ObjectName::Block { file, chunk, ecb } => format!("{file}_{chunk}_{ecb}"),
            ObjectName::Cat { file } => format!("{file}.CAT"),
            ObjectName::WholeFile { file, salt } => format!("{file}#{salt}"),
        }
    }

    /// Parse a canonical textual form produced by [`ObjectName::render`].
    ///
    /// Parsing is conservative: a trailing `_<number>` suffix is interpreted as
    /// chunk/block numbering only if the digits parse; otherwise the whole string
    /// is rejected (file names used with PeerStripe must not end in `_<digits>`
    /// themselves, a documented constraint of the naming convention).
    pub fn parse(s: &str) -> Option<ObjectName> {
        if let Some(file) = s.strip_suffix(".CAT") {
            if file.is_empty() {
                return None;
            }
            return Some(ObjectName::cat(file));
        }
        if let Some((file, salt)) = s.rsplit_once('#') {
            if file.is_empty() {
                return None;
            }
            return salt
                .parse()
                .ok()
                .map(|salt| ObjectName::whole_file(file, salt));
        }
        let mut parts: Vec<&str> = s.rsplitn(3, '_').collect();
        parts.reverse();
        match parts.as_slice() {
            [file, a, b] if !file.is_empty() => {
                match (a.parse::<u32>(), b.parse::<u32>()) {
                    (Ok(chunk), Ok(ecb)) => Some(ObjectName::block(*file, chunk, ecb)),
                    _ => {
                        // `file_name_3` where `file_name` contains an underscore:
                        // re-join and try the chunk form.
                        let joined = format!("{file}_{a}");
                        b.parse::<u32>()
                            .ok()
                            .map(|chunk| ObjectName::chunk(joined, chunk))
                    }
                }
            }
            [file, a] if !file.is_empty() => a
                .parse::<u32>()
                .ok()
                .map(|chunk| ObjectName::chunk(*file, chunk)),
            _ => None,
        }
    }

    /// The overlay key this object is routed by (the SHA-1 of the paper, our
    /// deterministic 128-bit hash).
    pub fn key(&self) -> Id {
        Id::hash(&self.render())
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_paper_examples() {
        // "testImageFile_2 represents the second chunk of the file testImageFile"
        assert_eq!(
            ObjectName::chunk("testImageFile", 2).render(),
            "testImageFile_2"
        );
        // "The encoded blocks for the chunk X are named filename_X_ECB"
        assert_eq!(
            ObjectName::block("myTestFile", 0, 2).render(),
            "myTestFile_0_2"
        );
        // "stores it in the p2p storage under the name filename.CAT"
        assert_eq!(ObjectName::cat("myTestFile").render(), "myTestFile.CAT");
    }

    #[test]
    fn parse_round_trips() {
        let names = vec![
            ObjectName::chunk("weather-2020", 0),
            ObjectName::chunk("weather-2020", 17),
            ObjectName::block("mri-scan", 3, 12),
            ObjectName::cat("mri-scan"),
            ObjectName::whole_file("genome.dat", 4),
        ];
        for n in names {
            assert_eq!(ObjectName::parse(&n.render()), Some(n));
        }
    }

    #[test]
    fn parse_handles_underscores_in_file_names() {
        let n = ObjectName::chunk("my_test_file", 3);
        assert_eq!(ObjectName::parse(&n.render()), Some(n));
        let b = ObjectName::block("my_file", 3, 7);
        assert_eq!(ObjectName::parse(&b.render()), Some(b));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(ObjectName::parse(""), None);
        assert_eq!(ObjectName::parse(".CAT"), None);
        assert_eq!(ObjectName::parse("plainname"), None);
        assert_eq!(ObjectName::parse("file_abc"), None);
        assert_eq!(ObjectName::parse("#3"), None);
    }

    #[test]
    fn distinct_blocks_get_distinct_keys() {
        let mut keys = std::collections::HashSet::new();
        for chunk in 0..10 {
            for ecb in 0..10 {
                keys.insert(ObjectName::block("bigfile", chunk, ecb).key());
            }
        }
        assert_eq!(keys.len(), 100, "block keys must not collide");
    }

    #[test]
    fn accessors() {
        let b = ObjectName::block("f", 2, 5);
        assert_eq!(b.file(), "f");
        assert_eq!(b.chunk_no(), Some(2));
        assert_eq!(ObjectName::cat("f").chunk_no(), None);
        assert_eq!(format!("{}", ObjectName::chunk("f", 1)), "f_1");
    }

    #[test]
    fn whole_file_salts_change_key() {
        let k0 = ObjectName::whole_file("f", 0).key();
        let k1 = ObjectName::whole_file("f", 1).key();
        assert_ne!(k0, k1, "PAST retries must rehash to a different node");
    }
}
