//! Churn experiments: availability under failures and block regeneration.
//!
//! Two of the paper's experiments stress the system with participant churn:
//!
//! * **Figure 10** fails 1 000 random nodes one by one (no recovery) and counts
//!   how many stored files become unavailable under no coding, XOR coding, and
//!   online coding.  [`AvailabilityTracker`] answers that incrementally — a
//!   per-chunk surviving-block counter indexed by node — so the sweep is linear
//!   in the number of placed blocks rather than quadratic.
//! * **Table 3** fails 10 % / 20 % of the nodes *with* recovery: the neighbours
//!   that inherit a failed node's key space regenerate its lost blocks, with a
//!   delay proportional to the amount of data being recovered.
//!   [`RegenerationSim`] models that pipeline, accounting regenerated and lost
//!   bytes per failure.

use crate::cluster::StorageCluster;
use crate::system::ManifestStore;
use peerstripe_overlay::NodeRef;
use peerstripe_sim::{ByteSize, DetRng, OnlineStats};
use std::collections::HashMap;

/// Incremental tracker of file availability as nodes fail (no recovery).
#[derive(Debug, Clone)]
pub struct AvailabilityTracker {
    /// Per chunk: surviving block count and the minimum needed.
    chunk_alive: Vec<u32>,
    chunk_needed: Vec<u32>,
    chunk_file: Vec<u32>,
    chunk_size: Vec<ByteSize>,
    /// Per file: number of chunks currently unrecoverable.
    file_failed_chunks: Vec<u32>,
    /// node -> indices of chunks with one block on that node (repeated per block).
    node_index: HashMap<NodeRef, Vec<u32>>,
    files_total: usize,
    files_unavailable: usize,
    bytes_total: ByteSize,
    bytes_unavailable: ByteSize,
}

impl AvailabilityTracker {
    /// Build the tracker from the manifests of a fully stored system.
    pub fn build(manifests: &ManifestStore) -> Self {
        let mut tracker = AvailabilityTracker {
            chunk_alive: Vec::new(),
            chunk_needed: Vec::new(),
            chunk_file: Vec::new(),
            chunk_size: Vec::new(),
            file_failed_chunks: Vec::new(),
            node_index: HashMap::new(),
            files_total: 0,
            files_unavailable: 0,
            bytes_total: ByteSize::ZERO,
            bytes_unavailable: ByteSize::ZERO,
        };
        for manifest in manifests.iter() {
            let file_idx = tracker.file_failed_chunks.len() as u32;
            tracker.file_failed_chunks.push(0);
            tracker.files_total += 1;
            tracker.bytes_total += manifest.size;
            for chunk in &manifest.chunks {
                if chunk.size.is_zero() {
                    continue;
                }
                let chunk_idx = tracker.chunk_alive.len() as u32;
                tracker.chunk_alive.push(chunk.blocks.len() as u32);
                tracker.chunk_needed.push(chunk.min_blocks_needed as u32);
                tracker.chunk_file.push(file_idx);
                tracker.chunk_size.push(chunk.size);
                for block in &chunk.blocks {
                    tracker
                        .node_index
                        .entry(block.node)
                        .or_default()
                        .push(chunk_idx);
                }
            }
        }
        tracker
    }

    /// Total number of tracked files.
    pub fn files_total(&self) -> usize {
        self.files_total
    }

    /// Number of files currently unavailable.
    pub fn files_unavailable(&self) -> usize {
        self.files_unavailable
    }

    /// Unavailable files as a percentage of all tracked files (Figure 10's y-axis).
    pub fn unavailable_pct(&self) -> f64 {
        if self.files_total == 0 {
            0.0
        } else {
            100.0 * self.files_unavailable as f64 / self.files_total as f64
        }
    }

    /// Bytes of user data in files that are currently unavailable.
    pub fn bytes_unavailable(&self) -> ByteSize {
        self.bytes_unavailable
    }

    /// Process the failure of a node (all blocks it held are lost, no recovery).
    pub fn fail_node(&mut self, node: NodeRef, file_sizes: &[ByteSize]) {
        let Some(chunks) = self.node_index.remove(&node) else {
            return;
        };
        for chunk_idx in chunks {
            let ci = chunk_idx as usize;
            let was_ok = self.chunk_alive[ci] >= self.chunk_needed[ci];
            self.chunk_alive[ci] = self.chunk_alive[ci].saturating_sub(1);
            let now_ok = self.chunk_alive[ci] >= self.chunk_needed[ci];
            if was_ok && !now_ok {
                let fi = self.chunk_file[ci] as usize;
                self.file_failed_chunks[fi] += 1;
                if self.file_failed_chunks[fi] == 1 {
                    self.files_unavailable += 1;
                    self.bytes_unavailable += file_sizes.get(fi).copied().unwrap_or(ByteSize::ZERO);
                }
            }
        }
    }

    /// The per-file sizes in the order files were indexed at build time; callers
    /// pass this back into [`AvailabilityTracker::fail_node`] so the tracker does
    /// not need to own a copy.
    pub fn file_sizes(manifests: &ManifestStore) -> Vec<ByteSize> {
        manifests.iter().map(|m| m.size).collect()
    }
}

/// Per-failure accounting produced by [`RegenerationSim`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FailureAccount {
    /// Bytes of encoded blocks regenerated in response to this failure.
    pub regenerated: ByteSize,
    /// Bytes of user data that became unrecoverable at this failure.
    pub lost: ByteSize,
}

/// Aggregate result of a regeneration sweep (one row of Table 3).
#[derive(Debug, Clone)]
pub struct RegenerationReport {
    /// Number of nodes failed.
    pub nodes_failed: usize,
    /// Total bytes of user data lost (chunks that could not be recovered).
    pub data_lost: ByteSize,
    /// Total bytes of encoded blocks regenerated.
    pub data_regenerated: ByteSize,
    /// Distribution of regenerated bytes per failure.
    pub per_failure: OnlineStats,
}

/// Simulation of failure-driven block regeneration (Section 4.4 / Table 3).
pub struct RegenerationSim {
    /// Per chunk: live replicas as (node, block size).
    chunk_blocks: Vec<Vec<(NodeRef, ByteSize)>>,
    chunk_needed: Vec<usize>,
    chunk_size: Vec<ByteSize>,
    chunk_lost: Vec<bool>,
    node_index: HashMap<NodeRef, Vec<u32>>,
    /// Bytes per second at which a node regenerates lost blocks.
    regen_rate: f64,
    /// Seconds between consecutive node failures.
    failure_interval: f64,
    /// Virtual time at which the regeneration pipeline drains.
    backlog_done_at: f64,
    now: f64,
}

impl RegenerationSim {
    /// Build the simulation from stored manifests.
    ///
    /// `regen_rate` is the recovery bandwidth in bytes/second (the paper makes
    /// the recovery delay proportional to the recovered data); `failure_interval`
    /// is the time between consecutive failures, so a slow recovery pipeline can
    /// still be busy when the next failure arrives.
    pub fn build(
        manifests: &ManifestStore,
        regen_rate: ByteSize,
        failure_interval_secs: f64,
    ) -> Self {
        let mut sim = RegenerationSim {
            chunk_blocks: Vec::new(),
            chunk_needed: Vec::new(),
            chunk_size: Vec::new(),
            chunk_lost: Vec::new(),
            node_index: HashMap::new(),
            regen_rate: regen_rate.as_u64() as f64,
            failure_interval: failure_interval_secs,
            backlog_done_at: 0.0,
            now: 0.0,
        };
        for manifest in manifests.iter() {
            for chunk in &manifest.chunks {
                if chunk.size.is_zero() {
                    continue;
                }
                let chunk_idx = sim.chunk_blocks.len() as u32;
                let blocks: Vec<(NodeRef, ByteSize)> =
                    chunk.blocks.iter().map(|b| (b.node, b.size)).collect();
                for (node, _) in &blocks {
                    sim.node_index.entry(*node).or_default().push(chunk_idx);
                }
                sim.chunk_blocks.push(blocks);
                sim.chunk_needed.push(chunk.min_blocks_needed);
                sim.chunk_size.push(chunk.size);
                sim.chunk_lost.push(false);
            }
        }
        sim
    }

    /// Total user bytes tracked.
    pub fn tracked_bytes(&self) -> ByteSize {
        self.chunk_size.iter().copied().sum()
    }

    /// Fail one node: regenerate what can be regenerated onto live nodes chosen
    /// through the cluster, and account what is lost.
    ///
    /// While the regeneration pipeline is still busy with earlier failures
    /// (`backlog`), newly regenerated blocks do not yet count as live, so chunks
    /// hit by closely spaced failures can lose data even though each failure in
    /// isolation would have been recoverable — the effect the paper's
    /// proportional recovery delay is designed to expose.
    pub fn fail_node(
        &mut self,
        node: NodeRef,
        cluster: &mut StorageCluster,
        rng: &mut DetRng,
    ) -> FailureAccount {
        self.now += self.failure_interval;
        let mut account = FailureAccount::default();
        let Some(chunks) = self.node_index.remove(&node) else {
            return account;
        };
        let pipeline_busy = self.backlog_done_at > self.now;
        let mut regen_batch: Vec<(u32, ByteSize)> = Vec::new();
        let mut dedup = std::collections::HashSet::new();
        for chunk_idx in chunks {
            let ci = chunk_idx as usize;
            if self.chunk_lost[ci] || !dedup.insert(chunk_idx) {
                // Either already written off, or we already handled this chunk
                // for this failure (a node can hold several blocks of one chunk).
                continue;
            }
            let lost_here: Vec<ByteSize> = self.chunk_blocks[ci]
                .iter()
                .filter(|(n, _)| *n == node)
                .map(|(_, s)| *s)
                .collect();
            self.chunk_blocks[ci].retain(|(n, _)| *n != node);
            let alive = self.chunk_blocks[ci].len();
            // When the pipeline is backed up, blocks regenerated for previous
            // failures have not landed yet, which we conservatively model by
            // requiring one extra live block to consider the chunk safe.
            let effective_needed = self.chunk_needed[ci] + usize::from(pipeline_busy);
            if alive >= self.chunk_needed[ci] {
                if alive >= effective_needed || !pipeline_busy {
                    for size in lost_here {
                        regen_batch.push((chunk_idx, size));
                    }
                } else {
                    // Recoverable in principle, but the busy pipeline means the
                    // regeneration is queued behind earlier work; count it as
                    // regenerated later (it still contributes to the backlog).
                    for size in lost_here {
                        regen_batch.push((chunk_idx, size));
                    }
                }
            } else {
                self.chunk_lost[ci] = true;
                account.lost += self.chunk_size[ci];
            }
        }
        // Place the regenerated blocks on live nodes (the takeover inheritors are
        // the numerically closest survivors, which `k_closest` of a random probe
        // near the failed node approximates; any live node with space works for
        // the accounting in Table 3).
        for (chunk_idx, size) in regen_batch {
            let ci = chunk_idx as usize;
            let target = cluster
                .overlay()
                .route_quiet(peerstripe_overlay::Id::random(rng))
                .filter(|n| cluster.node(*n).can_store(size));
            if let Some(target) = target {
                self.chunk_blocks[ci].push((target, size));
                self.node_index.entry(target).or_default().push(chunk_idx);
                account.regenerated += size;
            } else {
                // Nowhere to put it right now: the redundancy is not restored,
                // but the chunk is not lost either (online codes let us retry).
            }
        }
        // Extend the pipeline backlog by the time to regenerate this batch.
        if self.regen_rate > 0.0 {
            let duration = account.regenerated.as_u64() as f64 / self.regen_rate;
            let start = self.backlog_done_at.max(self.now);
            self.backlog_done_at = start + duration;
        }
        account
    }

    /// Fail a fraction of the currently live nodes and return the aggregate report.
    pub fn fail_fraction(
        &mut self,
        cluster: &mut StorageCluster,
        fraction: f64,
        rng: &mut DetRng,
    ) -> RegenerationReport {
        let live: Vec<NodeRef> = cluster.overlay().alive_nodes().collect();
        let count = ((live.len() as f64) * fraction).round() as usize;
        let mut order = live;
        rng.shuffle(&mut order);
        order.truncate(count);
        let mut report = RegenerationReport {
            nodes_failed: count,
            data_lost: ByteSize::ZERO,
            data_regenerated: ByteSize::ZERO,
            per_failure: OnlineStats::new(),
        };
        for node in order {
            cluster.fail_node(node);
            let account = self.fail_node(node, cluster, rng);
            report.data_lost += account.lost;
            report.data_regenerated += account.regenerated;
            report.per_failure.push(account.regenerated.as_u64() as f64);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{PeerStripe, PeerStripeConfig};
    use crate::cluster::ClusterConfig;
    use crate::policy::CodingPolicy;
    use crate::system::StorageSystem;
    use peerstripe_trace::{CapacityModel, FileRecord};

    fn loaded_system(coding: CodingPolicy, seed: u64) -> PeerStripe {
        let mut rng = DetRng::new(seed);
        let cluster = ClusterConfig {
            nodes: 120,
            capacity: CapacityModel::Fixed(ByteSize::gb(2)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut ps = PeerStripe::new(cluster, PeerStripeConfig::default().with_coding(coding));
        for i in 0..40 {
            assert!(ps
                .store_file(&FileRecord::new(format!("file-{i}"), ByteSize::mb(200)))
                .is_stored());
        }
        ps
    }

    /// Like `loaded_system` but with a larger population and workload, used by
    /// the availability-ordering test where sample size matters.
    fn large_loaded_system(coding: CodingPolicy, seed: u64) -> PeerStripe {
        let mut rng = DetRng::new(seed);
        let cluster = ClusterConfig {
            nodes: 400,
            capacity: CapacityModel::Fixed(ByteSize::gb(2)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut ps = PeerStripe::new(cluster, PeerStripeConfig::default().with_coding(coding));
        for i in 0..300 {
            assert!(ps
                .store_file(&FileRecord::new(format!("file-{i}"), ByteSize::mb(200)))
                .is_stored());
        }
        ps
    }

    #[test]
    fn tracker_matches_direct_recomputation() {
        let mut ps = loaded_system(CodingPolicy::xor_2_3(), 1);
        let mut tracker = AvailabilityTracker::build(ps.manifests());
        let file_sizes = AvailabilityTracker::file_sizes(ps.manifests());
        assert_eq!(tracker.files_total(), 40);
        assert_eq!(tracker.files_unavailable(), 0);
        let mut rng = DetRng::new(2);
        for _ in 0..30 {
            let node = ps.cluster().overlay().random_alive(&mut rng).unwrap();
            ps.cluster_mut().fail_node(node);
            tracker.fail_node(node, &file_sizes);
            // Ground truth: recompute availability from the manifests.
            let direct = ps
                .manifests()
                .iter()
                .filter(|m| !m.is_available(ps.cluster()))
                .count();
            assert_eq!(tracker.files_unavailable(), direct);
        }
    }

    #[test]
    fn coding_reduces_unavailability() {
        // Fail 10% of the nodes (the regime of Figure 10) under the three
        // policies; stronger coding must never be worse.
        let mut unavailable = Vec::new();
        for coding in [
            CodingPolicy::None,
            CodingPolicy::xor_2_3(),
            CodingPolicy::online_default(),
        ] {
            let mut ps = large_loaded_system(coding, 3);
            let mut tracker = AvailabilityTracker::build(ps.manifests());
            let file_sizes = AvailabilityTracker::file_sizes(ps.manifests());
            let mut rng = DetRng::new(4);
            let victims = ps.cluster_mut().fail_random(40, &mut rng);
            for (node, _) in victims {
                tracker.fail_node(node, &file_sizes);
            }
            unavailable.push(tracker.files_unavailable());
        }
        assert!(
            unavailable[1] <= unavailable[0],
            "XOR worse than no coding: {unavailable:?}"
        );
        assert!(
            unavailable[2] <= unavailable[1],
            "online worse than XOR: {unavailable:?}"
        );
        assert!(unavailable[0] > 0, "with no coding some files must be lost");
    }

    #[test]
    fn unknown_node_failure_is_a_noop() {
        let ps = loaded_system(CodingPolicy::None, 5);
        let mut tracker = AvailabilityTracker::build(ps.manifests());
        let sizes = AvailabilityTracker::file_sizes(ps.manifests());
        tracker.fail_node(999_999, &sizes);
        assert_eq!(tracker.files_unavailable(), 0);
    }

    #[test]
    fn regeneration_limits_data_loss() {
        let mut ps = loaded_system(CodingPolicy::online_default(), 6);
        let mut rng = DetRng::new(7);
        let mut sim = RegenerationSim::build(ps.manifests(), ByteSize::gb(1), 30.0);
        let tracked = sim.tracked_bytes();
        let report = sim.fail_fraction(ps.cluster_mut(), 0.10, &mut rng);
        assert_eq!(report.nodes_failed, 12);
        assert!(report.data_regenerated > ByteSize::ZERO);
        // With 10% failures and a tolerance of two losses per chunk plus
        // regeneration, losses must be a small fraction of the data.
        assert!(
            report.data_lost.as_u64() < tracked.as_u64() / 10,
            "lost {} of {}",
            report.data_lost,
            tracked
        );
        assert_eq!(report.per_failure.count(), 12);
    }

    #[test]
    fn without_coding_regeneration_cannot_help() {
        let mut ps = loaded_system(CodingPolicy::None, 8);
        let mut rng = DetRng::new(9);
        let mut sim = RegenerationSim::build(ps.manifests(), ByteSize::gb(1), 30.0);
        let report = sim.fail_fraction(ps.cluster_mut(), 0.20, &mut rng);
        // A lost single-copy chunk cannot be regenerated, so every failed node's
        // data is simply gone.
        assert_eq!(report.data_regenerated, ByteSize::ZERO);
        assert!(report.data_lost > ByteSize::ZERO);
    }
}
