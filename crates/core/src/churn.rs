//! Churn experiments: availability under failures and block regeneration.
//!
//! Two of the paper's experiments stress the system with participant churn:
//!
//! * **Figure 10** fails 1 000 random nodes one by one (no recovery) and counts
//!   how many stored files become unavailable under no coding, XOR coding, and
//!   online coding.  [`AvailabilityTracker`] answers that incrementally — a
//!   per-chunk surviving-block counter indexed by node — so the sweep is linear
//!   in the number of placed blocks rather than quadratic.
//! * **Table 3** fails 10 % / 20 % of the nodes *with* recovery: the neighbours
//!   that inherit a failed node's key space regenerate its lost blocks, with a
//!   delay proportional to the amount of data being recovered.
//!   [`RegenerationSim`] models that pipeline, accounting regenerated and lost
//!   bytes per failure.

use crate::cluster::StorageCluster;
use crate::system::ManifestStore;
use peerstripe_overlay::NodeRef;
use peerstripe_sim::{ByteSize, DetRng, OnlineStats, RateLimiter, SimTime};
use std::collections::BTreeMap;

/// Incremental tracker of file availability as nodes fail (no recovery).
#[derive(Debug, Clone)]
pub struct AvailabilityTracker {
    /// Per chunk: surviving block count and the minimum needed.
    chunk_alive: Vec<u32>,
    chunk_needed: Vec<u32>,
    chunk_file: Vec<u32>,
    chunk_size: Vec<ByteSize>,
    /// Per file: number of chunks currently unrecoverable.
    file_failed_chunks: Vec<u32>,
    /// node -> indices of chunks with one block on that node (repeated per block).
    node_index: BTreeMap<NodeRef, Vec<u32>>,
    files_total: usize,
    files_unavailable: usize,
    bytes_total: ByteSize,
    bytes_unavailable: ByteSize,
}

impl AvailabilityTracker {
    /// Build the tracker from the manifests of a fully stored system.
    pub fn build(manifests: &ManifestStore) -> Self {
        let mut tracker = AvailabilityTracker {
            chunk_alive: Vec::new(),
            chunk_needed: Vec::new(),
            chunk_file: Vec::new(),
            chunk_size: Vec::new(),
            file_failed_chunks: Vec::new(),
            node_index: BTreeMap::new(),
            files_total: 0,
            files_unavailable: 0,
            bytes_total: ByteSize::ZERO,
            bytes_unavailable: ByteSize::ZERO,
        };
        for manifest in manifests.iter() {
            let file_idx = tracker.file_failed_chunks.len() as u32;
            tracker.file_failed_chunks.push(0);
            tracker.files_total += 1;
            tracker.bytes_total += manifest.size;
            for chunk in &manifest.chunks {
                if chunk.size.is_zero() {
                    continue;
                }
                let chunk_idx = tracker.chunk_alive.len() as u32;
                tracker.chunk_alive.push(chunk.blocks.len() as u32);
                tracker.chunk_needed.push(chunk.min_blocks_needed as u32);
                tracker.chunk_file.push(file_idx);
                tracker.chunk_size.push(chunk.size);
                for block in &chunk.blocks {
                    tracker
                        .node_index
                        .entry(block.node)
                        .or_default()
                        .push(chunk_idx);
                }
            }
        }
        tracker
    }

    /// Total number of tracked files.
    pub fn files_total(&self) -> usize {
        self.files_total
    }

    /// Number of files currently unavailable.
    pub fn files_unavailable(&self) -> usize {
        self.files_unavailable
    }

    /// Unavailable files as a percentage of all tracked files (Figure 10's y-axis).
    pub fn unavailable_pct(&self) -> f64 {
        if self.files_total == 0 {
            0.0
        } else {
            100.0 * self.files_unavailable as f64 / self.files_total as f64
        }
    }

    /// Bytes of user data in files that are currently unavailable.
    pub fn bytes_unavailable(&self) -> ByteSize {
        self.bytes_unavailable
    }

    /// Process the failure of a node (all blocks it held are lost, no recovery).
    pub fn fail_node(&mut self, node: NodeRef, file_sizes: &[ByteSize]) {
        let Some(chunks) = self.node_index.remove(&node) else {
            return;
        };
        for chunk_idx in chunks {
            let ci = chunk_idx as usize;
            let was_ok = self.chunk_alive[ci] >= self.chunk_needed[ci];
            self.chunk_alive[ci] = self.chunk_alive[ci].saturating_sub(1);
            let now_ok = self.chunk_alive[ci] >= self.chunk_needed[ci];
            if was_ok && !now_ok {
                let fi = self.chunk_file[ci] as usize;
                self.file_failed_chunks[fi] += 1;
                if self.file_failed_chunks[fi] == 1 {
                    self.files_unavailable += 1;
                    self.bytes_unavailable += file_sizes.get(fi).copied().unwrap_or(ByteSize::ZERO);
                }
            }
        }
    }

    /// The per-file sizes in the order files were indexed at build time; callers
    /// pass this back into [`AvailabilityTracker::fail_node`] so the tracker does
    /// not need to own a copy.
    pub fn file_sizes(manifests: &ManifestStore) -> Vec<ByteSize> {
        manifests.iter().map(|m| m.size).collect()
    }
}

/// The blocks a chunk lost with one failed node, as reported by
/// [`DamageLedger::remove_node`].
#[derive(Debug, Clone)]
pub struct NodeLoss {
    /// The affected chunk's index in the ledger.
    pub chunk: u32,
    /// Sizes of the blocks the chunk held on the failed node.
    pub lost: Vec<ByteSize>,
    /// Number of blocks the chunk still has registered after the removal.
    pub survivors: usize,
}

/// Per-chunk block bookkeeping shared by every maintenance layer.
///
/// The ledger tracks, for every non-empty chunk of every stored file, which
/// nodes hold its encoded blocks and how many of them the chunk needs to stay
/// recoverable.  [`RegenerationSim`] (the single-wave Table 3 sweep) and the
/// event-driven engine in `peerstripe-repair` both drive their damage
/// assessment through this structure, so "what did this failure cost" is
/// answered the same way at every time scale.
#[derive(Debug, Clone, Default)]
pub struct DamageLedger {
    chunk_blocks: Vec<Vec<(NodeRef, ByteSize)>>,
    chunk_needed: Vec<usize>,
    chunk_size: Vec<ByteSize>,
    chunk_file: Vec<u32>,
    chunk_lost: Vec<bool>,
    file_sizes: Vec<ByteSize>,
    node_index: BTreeMap<NodeRef, Vec<u32>>,
}

impl DamageLedger {
    /// Build the ledger from the manifests of a fully stored system.
    pub fn build(manifests: &ManifestStore) -> Self {
        let mut ledger = DamageLedger::default();
        for manifest in manifests.iter() {
            let file_idx = ledger.file_sizes.len() as u32;
            ledger.file_sizes.push(manifest.size);
            for chunk in &manifest.chunks {
                if chunk.size.is_zero() {
                    continue;
                }
                let chunk_idx = ledger.chunk_blocks.len() as u32;
                let blocks: Vec<(NodeRef, ByteSize)> =
                    chunk.blocks.iter().map(|b| (b.node, b.size)).collect();
                for (node, _) in &blocks {
                    ledger.node_index.entry(*node).or_default().push(chunk_idx);
                }
                ledger.chunk_blocks.push(blocks);
                ledger.chunk_needed.push(chunk.min_blocks_needed);
                ledger.chunk_size.push(chunk.size);
                ledger.chunk_file.push(file_idx);
                ledger.chunk_lost.push(false);
            }
        }
        ledger
    }

    /// Number of tracked (non-empty) chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunk_blocks.len()
    }

    /// Number of tracked files.
    pub fn file_count(&self) -> usize {
        self.file_sizes.len()
    }

    /// Total user bytes across all tracked chunks (lost chunks included).
    pub fn tracked_bytes(&self) -> ByteSize {
        self.chunk_size.iter().copied().sum()
    }

    /// The blocks currently registered for a chunk.
    pub fn blocks(&self, chunk: u32) -> &[(NodeRef, ByteSize)] {
        &self.chunk_blocks[chunk as usize]
    }

    /// Minimum number of surviving blocks the chunk needs.
    pub fn needed(&self, chunk: u32) -> usize {
        self.chunk_needed[chunk as usize]
    }

    /// User bytes covered by the chunk.
    pub fn chunk_size(&self, chunk: u32) -> ByteSize {
        self.chunk_size[chunk as usize]
    }

    /// Index of the file the chunk belongs to.
    pub fn file_of(&self, chunk: u32) -> u32 {
        self.chunk_file[chunk as usize]
    }

    /// Size of a tracked file.
    pub fn file_size(&self, file: u32) -> ByteSize {
        self.file_sizes[file as usize]
    }

    /// True if the chunk has been written off as unrecoverable.
    pub fn is_lost(&self, chunk: u32) -> bool {
        self.chunk_lost[chunk as usize]
    }

    /// Write a chunk off as unrecoverable.
    pub fn mark_lost(&mut self, chunk: u32) {
        self.chunk_lost[chunk as usize] = true;
    }

    /// The chunks with at least one block on `node` (one entry **per block**, so
    /// a node holding two blocks of a chunk lists it twice).
    pub fn chunks_on(&self, node: NodeRef) -> &[u32] {
        self.node_index.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Register a freshly placed (regenerated) block.
    pub fn place_block(&mut self, chunk: u32, node: NodeRef, size: ByteSize) {
        self.chunk_blocks[chunk as usize].push((node, size));
        self.node_index.entry(node).or_default().push(chunk);
    }

    /// Remove every block `node` held and report the damage per affected chunk,
    /// in first-placement order.  Chunks already written off are skipped (their
    /// loss has been accounted; nothing further can change it).
    pub fn remove_node(&mut self, node: NodeRef) -> Vec<NodeLoss> {
        let Some(chunks) = self.node_index.remove(&node) else {
            return Vec::new();
        };
        let mut dedup = std::collections::BTreeSet::new();
        let mut losses = Vec::new();
        for chunk_idx in chunks {
            let ci = chunk_idx as usize;
            if self.chunk_lost[ci] || !dedup.insert(chunk_idx) {
                // Either already written off, or already handled for this
                // removal (a node can hold several blocks of one chunk).
                continue;
            }
            let lost: Vec<ByteSize> = self.chunk_blocks[ci]
                .iter()
                .filter(|(n, _)| *n == node)
                .map(|(_, s)| *s)
                .collect();
            self.chunk_blocks[ci].retain(|(n, _)| *n != node);
            losses.push(NodeLoss {
                chunk: chunk_idx,
                lost,
                survivors: self.chunk_blocks[ci].len(),
            });
        }
        losses
    }
}

/// Per-failure accounting produced by [`RegenerationSim`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FailureAccount {
    /// Bytes of encoded blocks regenerated in response to this failure.
    pub regenerated: ByteSize,
    /// Bytes of user data that became unrecoverable at this failure.
    pub lost: ByteSize,
}

/// Aggregate result of a regeneration sweep (one row of Table 3).
#[derive(Debug, Clone)]
pub struct RegenerationReport {
    /// Number of nodes failed.
    pub nodes_failed: usize,
    /// Total bytes of user data lost (chunks that could not be recovered).
    pub data_lost: ByteSize,
    /// Total bytes of encoded blocks regenerated.
    pub data_regenerated: ByteSize,
    /// Distribution of regenerated bytes per failure.
    pub per_failure: OnlineStats,
}

/// Simulation of failure-driven block regeneration (Section 4.4 / Table 3).
///
/// A thin adapter over [`DamageLedger`]: each failure removes the node's blocks
/// from the ledger, writes off chunks that fall below their decode threshold,
/// and regenerates the rest onto live nodes, charging the regenerated bytes
/// against a single recovery pipeline ([`RateLimiter`]) whose drain time makes
/// the recovery delay proportional to the recovered data, as in the paper.
/// The continuous-time engine in `peerstripe-repair` supersedes this for
/// durability-over-time studies; this adapter remains the single-wave Table 3
/// accounting.
pub struct RegenerationSim {
    ledger: DamageLedger,
    /// The shared recovery pipeline lost blocks are regenerated through.
    pipeline: RateLimiter,
    /// Seconds between consecutive node failures.
    failure_interval: f64,
    now: SimTime,
}

impl RegenerationSim {
    /// Build the simulation from stored manifests.
    ///
    /// `regen_rate` is the recovery bandwidth in bytes/second (the paper makes
    /// the recovery delay proportional to the recovered data), with zero
    /// meaning *unconstrained* recovery (no backlog ever accrues);
    /// `failure_interval` is the time between consecutive failures, so a slow
    /// recovery pipeline can still be busy when the next failure arrives.
    pub fn build(
        manifests: &ManifestStore,
        regen_rate: ByteSize,
        failure_interval_secs: f64,
    ) -> Self {
        RegenerationSim {
            ledger: DamageLedger::build(manifests),
            pipeline: if regen_rate.is_zero() {
                RateLimiter::unlimited()
            } else {
                RateLimiter::new(regen_rate)
            },
            failure_interval: failure_interval_secs,
            now: SimTime::ZERO,
        }
    }

    /// Total user bytes tracked.
    pub fn tracked_bytes(&self) -> ByteSize {
        self.ledger.tracked_bytes()
    }

    /// The underlying block ledger (current placements, losses, damage).
    pub fn ledger(&self) -> &DamageLedger {
        &self.ledger
    }

    /// How long after the latest failure the regeneration pipeline stays busy.
    pub fn backlog(&self) -> SimTime {
        self.pipeline.backlog(self.now)
    }

    /// Fail one node: regenerate what can be regenerated onto live nodes chosen
    /// through the cluster, and account what is lost.
    pub fn fail_node(
        &mut self,
        node: NodeRef,
        cluster: &mut StorageCluster,
        rng: &mut DetRng,
    ) -> FailureAccount {
        self.now += SimTime::from_secs_f64(self.failure_interval);
        let mut account = FailureAccount::default();
        let mut regen_batch: Vec<(u32, ByteSize)> = Vec::new();
        for loss in self.ledger.remove_node(node) {
            if loss.survivors >= self.ledger.needed(loss.chunk) {
                for size in loss.lost {
                    regen_batch.push((loss.chunk, size));
                }
            } else {
                self.ledger.mark_lost(loss.chunk);
                account.lost += self.ledger.chunk_size(loss.chunk);
            }
        }
        // Place the regenerated blocks on live nodes (the takeover inheritors are
        // the numerically closest survivors, which `k_closest` of a random probe
        // near the failed node approximates; any live node with space works for
        // the accounting in Table 3).
        for (chunk_idx, size) in regen_batch {
            let target = cluster
                .overlay()
                .route_quiet(peerstripe_overlay::Id::random(rng))
                .filter(|n| cluster.node(*n).can_store(size));
            if let Some(target) = target {
                self.ledger.place_block(chunk_idx, target, size);
                account.regenerated += size;
            } else {
                // Nowhere to put it right now: the redundancy is not restored,
                // but the chunk is not lost either (online codes let us retry).
            }
        }
        // Queue this batch behind earlier work: the pipeline's drain time is
        // what makes closely spaced failures see a busy recovery path.
        self.pipeline.reserve(account.regenerated, self.now);
        account
    }

    /// Fail a fraction of the currently live nodes and return the aggregate report.
    pub fn fail_fraction(
        &mut self,
        cluster: &mut StorageCluster,
        fraction: f64,
        rng: &mut DetRng,
    ) -> RegenerationReport {
        let live: Vec<NodeRef> = cluster.overlay().alive_nodes().collect();
        let count = ((live.len() as f64) * fraction).round() as usize;
        let mut order = live;
        rng.shuffle(&mut order);
        order.truncate(count);
        let mut report = RegenerationReport {
            nodes_failed: count,
            data_lost: ByteSize::ZERO,
            data_regenerated: ByteSize::ZERO,
            per_failure: OnlineStats::new(),
        };
        for node in order {
            cluster.fail_node(node);
            let account = self.fail_node(node, cluster, rng);
            report.data_lost += account.lost;
            report.data_regenerated += account.regenerated;
            report.per_failure.push(account.regenerated.as_u64() as f64);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{PeerStripe, PeerStripeConfig};
    use crate::cluster::ClusterConfig;
    use crate::policy::CodingPolicy;
    use crate::system::StorageSystem;
    use peerstripe_trace::{CapacityModel, FileRecord};

    fn loaded_system(coding: CodingPolicy, seed: u64) -> PeerStripe {
        let mut rng = DetRng::new(seed);
        let cluster = ClusterConfig {
            nodes: 120,
            capacity: CapacityModel::Fixed(ByteSize::gb(2)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut ps = PeerStripe::new(cluster, PeerStripeConfig::default().with_coding(coding));
        for i in 0..40 {
            assert!(ps
                .store_file(&FileRecord::new(format!("file-{i}"), ByteSize::mb(200)))
                .is_stored());
        }
        ps
    }

    /// Like `loaded_system` but with a larger population and workload, used by
    /// the availability-ordering test where sample size matters.
    fn large_loaded_system(coding: CodingPolicy, seed: u64) -> PeerStripe {
        let mut rng = DetRng::new(seed);
        let cluster = ClusterConfig {
            nodes: 400,
            capacity: CapacityModel::Fixed(ByteSize::gb(2)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut ps = PeerStripe::new(cluster, PeerStripeConfig::default().with_coding(coding));
        for i in 0..300 {
            assert!(ps
                .store_file(&FileRecord::new(format!("file-{i}"), ByteSize::mb(200)))
                .is_stored());
        }
        ps
    }

    #[test]
    fn tracker_matches_direct_recomputation() {
        let mut ps = loaded_system(CodingPolicy::xor_2_3(), 1);
        let mut tracker = AvailabilityTracker::build(ps.manifests());
        let file_sizes = AvailabilityTracker::file_sizes(ps.manifests());
        assert_eq!(tracker.files_total(), 40);
        assert_eq!(tracker.files_unavailable(), 0);
        let mut rng = DetRng::new(2);
        for _ in 0..30 {
            let node = ps.cluster().overlay().random_alive(&mut rng).unwrap();
            ps.cluster_mut().fail_node(node);
            tracker.fail_node(node, &file_sizes);
            // Ground truth: recompute availability from the manifests.
            let direct = ps
                .manifests()
                .iter()
                .filter(|m| !m.is_available(ps.cluster()))
                .count();
            assert_eq!(tracker.files_unavailable(), direct);
        }
    }

    #[test]
    fn coding_reduces_unavailability() {
        // Fail 10% of the nodes (the regime of Figure 10) under the three
        // policies; stronger coding must never be worse.
        let mut unavailable = Vec::new();
        for coding in [
            CodingPolicy::None,
            CodingPolicy::xor_2_3(),
            CodingPolicy::online_default(),
        ] {
            let mut ps = large_loaded_system(coding, 3);
            let mut tracker = AvailabilityTracker::build(ps.manifests());
            let file_sizes = AvailabilityTracker::file_sizes(ps.manifests());
            let mut rng = DetRng::new(4);
            let victims = ps.cluster_mut().fail_random(40, &mut rng);
            for (node, _) in victims {
                tracker.fail_node(node, &file_sizes);
            }
            unavailable.push(tracker.files_unavailable());
        }
        assert!(
            unavailable[1] <= unavailable[0],
            "XOR worse than no coding: {unavailable:?}"
        );
        assert!(
            unavailable[2] <= unavailable[1],
            "online worse than XOR: {unavailable:?}"
        );
        assert!(unavailable[0] > 0, "with no coding some files must be lost");
    }

    #[test]
    fn unknown_node_failure_is_a_noop() {
        let ps = loaded_system(CodingPolicy::None, 5);
        let mut tracker = AvailabilityTracker::build(ps.manifests());
        let sizes = AvailabilityTracker::file_sizes(ps.manifests());
        tracker.fail_node(999_999, &sizes);
        assert_eq!(tracker.files_unavailable(), 0);
    }

    #[test]
    fn damage_ledger_mirrors_manifests() {
        let ps = loaded_system(CodingPolicy::xor_2_3(), 31);
        let ledger = DamageLedger::build(ps.manifests());
        assert_eq!(ledger.file_count(), 40);
        let manifest_chunks: usize = ps
            .manifests()
            .iter()
            .map(|m| m.chunks.iter().filter(|c| !c.size.is_zero()).count())
            .sum();
        assert_eq!(ledger.chunk_count(), manifest_chunks);
        let manifest_bytes: ByteSize = ps.manifests().iter().map(|m| m.size).sum();
        assert_eq!(ledger.tracked_bytes(), manifest_bytes);
        // Every (2,3) chunk needs 2 of its 3 blocks.
        for chunk in 0..ledger.chunk_count() as u32 {
            assert_eq!(ledger.needed(chunk), 2);
            assert_eq!(ledger.blocks(chunk).len(), 3);
            assert!(!ledger.is_lost(chunk));
            assert!(ledger.file_size(ledger.file_of(chunk)) > ByteSize::ZERO);
        }
    }

    #[test]
    fn damage_ledger_removal_and_placement_round_trip() {
        let ps = loaded_system(CodingPolicy::xor_2_3(), 32);
        let mut ledger = DamageLedger::build(ps.manifests());
        // Pick a node that holds at least one block.
        let node = (0..ps.cluster().node_count())
            .find(|n| !ledger.chunks_on(*n).is_empty())
            .expect("some node holds blocks");
        let held = ledger.chunks_on(node).to_vec();
        let losses = ledger.remove_node(node);
        assert!(!losses.is_empty());
        let removed_blocks: usize = losses.iter().map(|l| l.lost.len()).sum();
        assert_eq!(removed_blocks, held.len(), "one loss entry per held block");
        for loss in &losses {
            assert_eq!(loss.survivors, ledger.blocks(loss.chunk).len());
            assert!(ledger.blocks(loss.chunk).iter().all(|(n, _)| *n != node));
        }
        // Removing again is a no-op; re-placing restores the index.
        assert!(ledger.remove_node(node).is_empty());
        let chunk = losses[0].chunk;
        ledger.place_block(chunk, node, ByteSize::mb(1));
        assert_eq!(ledger.chunks_on(node), &[chunk]);
        assert!(ledger.blocks(chunk).contains(&(node, ByteSize::mb(1))));
        // Lost chunks are skipped by removal (their loss is already accounted).
        ledger.mark_lost(chunk);
        assert!(ledger.is_lost(chunk));
        assert!(ledger.remove_node(node).is_empty());
    }

    #[test]
    fn regeneration_pipeline_backlog_grows_with_work() {
        let mut ps = loaded_system(CodingPolicy::online_default(), 33);
        let mut rng = DetRng::new(34);
        // 1 MB/s recovery with failures every second: the pipeline cannot keep up.
        let mut sim = RegenerationSim::build(ps.manifests(), ByteSize::mb(1), 1.0);
        let report = sim.fail_fraction(ps.cluster_mut(), 0.05, &mut rng);
        assert!(report.data_regenerated > ByteSize::ZERO);
        let expected_secs = report.data_regenerated.as_u64() as f64
            / ByteSize::mb(1).as_u64() as f64
            - report.nodes_failed as f64;
        assert!(
            sim.backlog().as_secs_f64() >= expected_secs.max(0.0) - 1e-6,
            "backlog {} too small for {} regenerated",
            sim.backlog(),
            report.data_regenerated
        );
    }

    #[test]
    fn regeneration_limits_data_loss() {
        let mut ps = loaded_system(CodingPolicy::online_default(), 6);
        let mut rng = DetRng::new(7);
        let mut sim = RegenerationSim::build(ps.manifests(), ByteSize::gb(1), 30.0);
        let tracked = sim.tracked_bytes();
        let report = sim.fail_fraction(ps.cluster_mut(), 0.10, &mut rng);
        assert_eq!(report.nodes_failed, 12);
        assert!(report.data_regenerated > ByteSize::ZERO);
        // With 10% failures and a tolerance of two losses per chunk plus
        // regeneration, losses must be a small fraction of the data.
        assert!(
            report.data_lost.as_u64() < tracked.as_u64() / 10,
            "lost {} of {}",
            report.data_lost,
            tracked
        );
        assert_eq!(report.per_failure.count(), 12);
    }

    #[test]
    fn without_coding_regeneration_cannot_help() {
        let mut ps = loaded_system(CodingPolicy::None, 8);
        let mut rng = DetRng::new(9);
        let mut sim = RegenerationSim::build(ps.manifests(), ByteSize::gb(1), 30.0);
        let report = sim.fail_fraction(ps.cluster_mut(), 0.20, &mut rng);
        // A lost single-copy chunk cannot be regenerated, so every failed node's
        // data is simply gone.
        assert_eq!(report.data_regenerated, ByteSize::ZERO);
        assert!(report.data_lost > ByteSize::ZERO);
    }
}
