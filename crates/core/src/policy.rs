//! Placement-level coding policies.
//!
//! The simulation experiments (Figures 7–10, Table 3) reason about chunks and
//! their erasure-coded blocks at *placement granularity*: how many block objects
//! a chunk turns into, how big each is, how many of them are needed to recover
//! the chunk, and how the `getCapacity` report of the target nodes translates
//! into a chunk size (Section 4.3).  [`CodingPolicy`] captures exactly that and
//! mirrors the three configurations evaluated in the paper:
//!
//! * [`CodingPolicy::None`] — no redundancy, one object per chunk (the Figure 7–9
//!   configuration);
//! * [`CodingPolicy::Xor`] — the (n, n+1) parity code; tolerates one lost block
//!   per chunk at `1/n` extra storage;
//! * [`CodingPolicy::Online`] — rateless online-code placement; a configurable
//!   number of placed blocks with ~3 % byte overhead and a tolerance of two lost
//!   blocks per chunk (the Figure 10 configuration);
//! * [`CodingPolicy::ReedSolomon`] — *optimal* (data, parity) placement: any
//!   `data` of the `data + parity` placed blocks recover the chunk with
//!   certainty, the baseline the paper's Section 4.2 trade-off discussion
//!   compares the online code against.
//!
//! The byte-level codecs behind these policies live in `peerstripe-erasure`;
//! [`CodingPolicy::codec`] builds the matching codec for the real-data path.

use peerstripe_erasure::{ErasureCode, NullCode, OnlineCode, ReedSolomonCode, XorCode};
use peerstripe_sim::ByteSize;
use serde::{Deserialize, Serialize};

/// Placement-level description of how a chunk is erasure coded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum CodingPolicy {
    /// Store each chunk as a single object (no redundancy).
    #[default]
    None,
    /// (group, group+1) parity-check code.
    Xor {
        /// Number of data blocks per parity group (the paper's default is 2).
        group: usize,
    },
    /// Online-code placement: `placed` check-block objects per chunk, of which
    /// any `placed - tolerable` suffice to recover the chunk.
    Online {
        /// Number of block objects placed per chunk.
        placed: usize,
        /// Number of lost blocks per chunk the placement tolerates.
        tolerable: usize,
        /// Byte overhead of the online code itself (≈ 1.03 for ε = 0.01, q = 3).
        overhead: f64,
    },
    /// Optimal GF(256) Reed–Solomon placement: `data + parity` block objects
    /// per chunk, of which **any** `data` recover the chunk (no probabilistic
    /// slack and no byte-level overhead beyond the parity blocks themselves).
    ReedSolomon {
        /// Number of data blocks per chunk.
        data: usize,
        /// Number of parity blocks per chunk (the tolerable losses).
        parity: usize,
    },
}

impl CodingPolicy {
    /// The paper's (2,3) XOR configuration.
    pub fn xor_2_3() -> Self {
        CodingPolicy::Xor { group: 2 }
    }

    /// The paper's online-code configuration: tolerates two simultaneous block
    /// losses per chunk (Section 6.2) at ~3 % storage overhead.
    pub fn online_default() -> Self {
        CodingPolicy::Online {
            placed: 6,
            tolerable: 2,
            overhead: 1.03,
        }
    }

    /// The default Reed–Solomon configuration: six placed blocks of which any
    /// four recover the chunk — the same 6-placed / 2-tolerable geometry as
    /// [`CodingPolicy::online_default`], but optimal (recovery from any
    /// minimal subset is certain, not probabilistic).
    pub fn rs_default() -> Self {
        CodingPolicy::ReedSolomon { data: 4, parity: 2 }
    }

    /// Short name used in figures and tables.
    pub fn label(&self) -> &'static str {
        match self {
            CodingPolicy::None => "No error code",
            CodingPolicy::Xor { .. } => "XOR code",
            CodingPolicy::Online { .. } => "Online code",
            CodingPolicy::ReedSolomon { .. } => "Reed-Solomon code",
        }
    }

    /// Number of block objects a chunk is placed as.
    pub fn placed_blocks(&self) -> usize {
        match *self {
            CodingPolicy::None => 1,
            CodingPolicy::Xor { group } => group + 1,
            CodingPolicy::Online { placed, .. } => placed,
            CodingPolicy::ReedSolomon { data, parity } => data + parity,
        }
    }

    /// Number of data-equivalent blocks used when translating a `getCapacity`
    /// report into a chunk size (Section 4.3: "if the maximum block size returned
    /// is 10 MB, under the above (2,3) XOR code, the chunk size can be 20 MB").
    pub fn data_blocks(&self) -> usize {
        match *self {
            CodingPolicy::None => 1,
            CodingPolicy::Xor { group } => group,
            CodingPolicy::Online {
                placed, tolerable, ..
            } => placed - tolerable,
            CodingPolicy::ReedSolomon { data, .. } => data,
        }
    }

    /// Number of lost blocks per chunk that still allow recovery.
    pub fn tolerable_losses(&self) -> usize {
        match *self {
            CodingPolicy::None => 0,
            CodingPolicy::Xor { .. } => 1,
            CodingPolicy::Online { tolerable, .. } => tolerable,
            CodingPolicy::ReedSolomon { parity, .. } => parity,
        }
    }

    /// Minimum number of surviving blocks needed to recover a chunk.
    pub fn min_blocks_needed(&self) -> usize {
        self.placed_blocks() - self.tolerable_losses()
    }

    /// Size of one placed block for a chunk of the given size.
    ///
    /// Every policy guarantees that any `min_blocks_needed()` surviving blocks
    /// carry enough bytes to reconstruct the chunk; for the online policy that
    /// means each placed block holds `chunk · overhead / (placed − tolerable)`
    /// bytes of check data.
    pub fn block_size(&self, chunk: ByteSize) -> ByteSize {
        match *self {
            CodingPolicy::None => chunk,
            CodingPolicy::Xor { group } => ByteSize::bytes(chunk.as_u64().div_ceil(group as u64)),
            CodingPolicy::Online {
                placed,
                tolerable,
                overhead,
            } => ByteSize::bytes(
                ((chunk.as_u64() as f64 * overhead) / (placed - tolerable) as f64).ceil() as u64,
            ),
            CodingPolicy::ReedSolomon { data, .. } => {
                ByteSize::bytes(chunk.as_u64().div_ceil(data as u64))
            }
        }
    }

    /// Total bytes stored for a chunk of the given size (all placed blocks).
    pub fn stored_size(&self, chunk: ByteSize) -> ByteSize {
        self.block_size(chunk) * self.placed_blocks() as u64
    }

    /// Storage overhead factor (stored bytes over chunk bytes) for large chunks.
    ///
    /// For the online policy this is the *placement-level* overhead — the cost of
    /// spreading the check data over `placed` node-sized blocks of which
    /// `tolerable` may fail — which is larger than the ~3 % byte-level overhead
    /// of the online code itself (Table 2); see DESIGN.md.
    pub fn storage_overhead(&self) -> f64 {
        match *self {
            CodingPolicy::None => 1.0,
            CodingPolicy::Xor { group } => (group as f64 + 1.0) / group as f64,
            CodingPolicy::Online {
                placed,
                tolerable,
                overhead,
            } => overhead * placed as f64 / (placed - tolerable) as f64,
            CodingPolicy::ReedSolomon { data, parity } => (data + parity) as f64 / data as f64,
        }
    }

    /// Chunk size achievable when the probed target nodes report at most
    /// `report` bytes each (Section 4.3).
    pub fn chunk_size_for_report(&self, report: ByteSize) -> ByteSize {
        match *self {
            CodingPolicy::Online {
                placed,
                tolerable,
                overhead,
            } => ByteSize::bytes(
                (report.as_u64() as f64 * (placed - tolerable) as f64 / overhead).floor() as u64,
            ),
            _ => report * self.data_blocks() as u64,
        }
    }

    /// Build the matching byte-level codec for the real-data path, dividing each
    /// chunk into `source_blocks` blocks.
    pub fn codec(&self, source_blocks: usize) -> Box<dyn ErasureCode> {
        match *self {
            CodingPolicy::None => Box::new(NullCode::new(source_blocks)),
            CodingPolicy::Xor { group } => {
                // Round the block count up to a multiple of the group size.
                let n = source_blocks.div_ceil(group) * group;
                Box::new(XorCode::new(group, n))
            }
            CodingPolicy::Online {
                placed,
                tolerable,
                overhead,
            } => {
                // The byte path groups the codec's check blocks into `placed`
                // stored objects of which `tolerable` may be lost, so the codec
                // must produce enough check blocks that the surviving groups
                // alone exceed the decode threshold.
                let group_overhead = 1.05 * placed as f64 / (placed - tolerable) as f64;
                Box::new(OnlineCode::with_overhead(
                    source_blocks,
                    0.01,
                    3,
                    group_overhead.max(overhead).max(1.1),
                ))
            }
            CodingPolicy::ReedSolomon { data, parity } => {
                // Scale the (data, parity) geometry to at least `source_blocks`
                // source blocks while staying inside GF(256)'s 256-block cap.
                // Any `k·data` of the `k·(data + parity)` codec blocks decode,
                // so losing `parity` of the `data + parity` placed objects —
                // each holding every k-th codec block round-robin — loses at
                // most `k·parity` codec blocks and recovery stays certain.
                let k = source_blocks
                    .div_ceil(data)
                    .clamp(1, (256 / (data + parity)).max(1));
                Box::new(ReedSolomonCode::new(k * data, k * parity))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_is_passthrough() {
        let p = CodingPolicy::None;
        assert_eq!(p.placed_blocks(), 1);
        assert_eq!(p.tolerable_losses(), 0);
        assert_eq!(p.min_blocks_needed(), 1);
        assert_eq!(p.block_size(ByteSize::mb(80)), ByteSize::mb(80));
        assert_eq!(p.storage_overhead(), 1.0);
        assert_eq!(p.chunk_size_for_report(ByteSize::mb(10)), ByteSize::mb(10));
    }

    #[test]
    fn xor_2_3_matches_paper_example() {
        // "if the maximum block size returned is 10 MB, under the above (2,3) XOR
        //  code, the chunk size can be 20 MB"
        let p = CodingPolicy::xor_2_3();
        assert_eq!(p.chunk_size_for_report(ByteSize::mb(10)), ByteSize::mb(20));
        assert_eq!(p.placed_blocks(), 3);
        assert_eq!(p.tolerable_losses(), 1);
        assert_eq!(p.min_blocks_needed(), 2);
        assert!((p.storage_overhead() - 1.5).abs() < 1e-12);
        assert_eq!(p.block_size(ByteSize::mb(20)), ByteSize::mb(10));
        assert_eq!(p.stored_size(ByteSize::mb(20)), ByteSize::mb(30));
    }

    #[test]
    fn online_default_tolerates_two_losses() {
        let p = CodingPolicy::online_default();
        assert_eq!(p.tolerable_losses(), 2);
        assert_eq!(p.min_blocks_needed(), 4);
        // Placement-level overhead: the byte-level code costs ~3 %, but spreading
        // it over 6 blocks of which 2 may fail multiplies that by 6/4.
        let expected = 1.03 * 6.0 / 4.0;
        assert!((p.storage_overhead() - expected).abs() < 1e-9);
        let chunk = ByteSize::mb(60);
        let stored = p.stored_size(chunk);
        let ratio = stored.as_u64() as f64 / chunk.as_u64() as f64;
        assert!((ratio - expected).abs() < 0.01, "ratio {ratio}");
        // The chunk-size calculation inverts the block-size calculation.
        let report = ByteSize::mb(10);
        let chunk = p.chunk_size_for_report(report);
        assert!(p.block_size(chunk) <= report);
        assert!(p.block_size(chunk + ByteSize::mb(1)) > report);
    }

    #[test]
    fn codecs_match_policies() {
        assert_eq!(CodingPolicy::None.codec(8).name(), "Null");
        assert_eq!(CodingPolicy::xor_2_3().codec(8).name(), "XOR");
        assert_eq!(CodingPolicy::online_default().codec(64).name(), "Online");
        assert_eq!(CodingPolicy::rs_default().codec(16).name(), "ReedSolomon");
        // XOR codec rounds the block count to a multiple of the group size.
        let codec = CodingPolicy::xor_2_3().codec(7);
        assert_eq!(codec.source_blocks(), 8);
        // Reed-Solomon is optimal: the codec decodes from exactly its data
        // blocks, with certainty — min_decode_blocks == source_blocks...
        let rs = CodingPolicy::rs_default().codec(16);
        assert_eq!(rs.source_blocks(), 16);
        assert_eq!(rs.min_decode_blocks(), rs.source_blocks());
        assert_eq!(rs.encoded_blocks(), 24, "4:2 geometry scaled by k = 4");
        // ...in contrast to the online code, whose (1 + ε)·n' decode bound
        // needs strictly more than n blocks (and only probabilistically).
        let online = CodingPolicy::online_default().codec(16);
        assert!(online.min_decode_blocks() > online.source_blocks());
        // The RS geometry scales down to stay within GF(256)'s 256-block cap.
        let big = CodingPolicy::rs_default().codec(1024);
        assert!(big.encoded_blocks() <= 256);
        assert_eq!(big.min_decode_blocks(), big.source_blocks());
    }

    #[test]
    fn rs_default_matches_online_geometry_but_optimally() {
        let rs = CodingPolicy::rs_default();
        let online = CodingPolicy::online_default();
        assert_eq!(rs.placed_blocks(), online.placed_blocks());
        assert_eq!(rs.tolerable_losses(), online.tolerable_losses());
        assert_eq!(rs.min_blocks_needed(), 4);
        // Optimality shows up as strictly lower placement-level overhead:
        // 6/4 = 1.5 vs the online placement's 1.03 · 6/4 ≈ 1.545.
        assert!((rs.storage_overhead() - 1.5).abs() < 1e-12);
        assert!(rs.storage_overhead() < online.storage_overhead());
        // Section 4.3 capacity translation: 10 MB reports → 40 MB chunks.
        assert_eq!(rs.chunk_size_for_report(ByteSize::mb(10)), ByteSize::mb(40));
        assert_eq!(rs.block_size(ByteSize::mb(40)), ByteSize::mb(10));
        assert_eq!(rs.stored_size(ByteSize::mb(40)), ByteSize::mb(60));
    }

    #[test]
    fn labels_match_figure_10_legend() {
        assert_eq!(CodingPolicy::None.label(), "No error code");
        assert_eq!(CodingPolicy::xor_2_3().label(), "XOR code");
        assert_eq!(CodingPolicy::online_default().label(), "Online code");
        assert_eq!(CodingPolicy::rs_default().label(), "Reed-Solomon code");
    }

    #[test]
    fn block_sizes_cover_the_chunk() {
        for policy in [
            CodingPolicy::None,
            CodingPolicy::xor_2_3(),
            CodingPolicy::online_default(),
            CodingPolicy::rs_default(),
        ] {
            let chunk = ByteSize::bytes(81_285_373);
            let per_block = policy.block_size(chunk);
            let recoverable = per_block * policy.min_blocks_needed() as u64;
            assert!(
                recoverable >= chunk.scale(0.99),
                "{}: {recoverable} cannot cover {chunk}",
                policy.label()
            );
        }
    }
}
