//! The backend seam: the narrow storage interface the [`PeerStripe`] client
//! (and the `peerstripe-repair` regeneration executor) drive.
//!
//! Everything the store / retrieve / recover paths need from the world is
//! captured here: capacity probes (via [`ProbeView`]), block placement and
//! retrieval, rollback, and ring-neighbour selection for CAT replication.
//! [`StorageCluster`] implements it in-process (the simulator, the default
//! backend), and `peerstripe-net`'s gateway implements it against live
//! `peerstripe-node` daemons over TCP — so the placement, erasure, and repair
//! stacks run unchanged against real processes.
//!
//! [`PeerStripe`]: crate::client::PeerStripe

use crate::cluster::{ClusterStoreError, StorageCluster};
use crate::naming::ObjectName;
use peerstripe_overlay::{Id, NodeRef};
use peerstripe_placement::ProbeView;
use peerstripe_sim::ByteSize;

/// An object fetched from a backend, returned by value.
///
/// The simulator hands out `&StoredObject` internally, but a networked
/// backend receives bytes off the wire and cannot lend references into a
/// node's store — so the seam returns owned data.  Placement-path objects
/// carry no payload, so the clone the sim impl performs is metadata-sized.
#[derive(Debug, Clone)]
pub struct FetchedBlock {
    /// The object's recorded size.
    pub size: ByteSize,
    /// The object's payload bytes, when the byte path stored any.
    pub payload: Option<Vec<u8>>,
}

/// The storage operations a [`PeerStripe`] client drives against its backend.
///
/// Supertrait [`ProbeView`] (and its supertrait `ClusterView`) supplies the
/// paper's `getCapacity` probe plus routing/liveness queries; this trait adds
/// the data-plane verbs.
///
/// [`PeerStripe`]: crate::client::PeerStripe
pub trait StorageBackend: ProbeView {
    /// Route a key to the node currently responsible for it, charging one
    /// overlay lookup message (the simulator's accounting; networked backends
    /// route against their membership ring).
    fn route_lookup(&mut self, key: Id) -> Option<NodeRef>;

    /// Store an object on an explicit node under `key`.
    fn store_block(
        &mut self,
        node: NodeRef,
        key: Id,
        name: ObjectName,
        size: ByteSize,
        payload: Option<Vec<u8>>,
    ) -> Result<NodeRef, ClusterStoreError>;

    /// Fetch an object from a specific node, by value.
    fn fetch_block(&self, node: NodeRef, name: &ObjectName) -> Option<FetchedBlock>;

    /// Undo a store: remove the object if the node tracks it, otherwise
    /// release its reserved space.
    fn rollback_block(&mut self, node: NodeRef, name: &ObjectName, size: ByteSize);

    /// The `k` ring members numerically closest to `key` (leaf-set targets
    /// for CAT replication).  No lookup message is charged.
    fn replica_targets(&self, key: Id, k: usize) -> Vec<(Id, NodeRef)>;
}

impl StorageBackend for StorageCluster {
    fn route_lookup(&mut self, key: Id) -> Option<NodeRef> {
        self.overlay_mut().route(key)
    }

    fn store_block(
        &mut self,
        node: NodeRef,
        key: Id,
        name: ObjectName,
        size: ByteSize,
        payload: Option<Vec<u8>>,
    ) -> Result<NodeRef, ClusterStoreError> {
        self.store_object_at(node, key, name, size, payload)
    }

    fn fetch_block(&self, node: NodeRef, name: &ObjectName) -> Option<FetchedBlock> {
        self.fetch_from(node, name).map(|obj| FetchedBlock {
            size: obj.size,
            payload: obj.payload.clone(),
        })
    }

    fn rollback_block(&mut self, node: NodeRef, name: &ObjectName, size: ByteSize) {
        self.rollback_object(node, name, size);
    }

    fn replica_targets(&self, key: Id, k: usize) -> Vec<(Id, NodeRef)> {
        self.overlay().ring().k_closest(key, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use peerstripe_sim::DetRng;
    use peerstripe_trace::CapacityModel;

    fn cluster() -> StorageCluster {
        let mut rng = DetRng::new(3);
        ClusterConfig {
            nodes: 30,
            capacity: CapacityModel::Fixed(ByteSize::mb(100)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng)
    }

    #[test]
    fn sim_backend_round_trips_through_the_seam() {
        let mut backend = cluster();
        let name = ObjectName::block("f", 0, 1);
        let node = backend.route_lookup(name.key()).unwrap();
        backend
            .store_block(
                node,
                name.key(),
                name.clone(),
                ByteSize::mb(1),
                Some(vec![7, 8, 9]),
            )
            .unwrap();
        let fetched = backend.fetch_block(node, &name).unwrap();
        assert_eq!(fetched.size, ByteSize::mb(1));
        assert_eq!(fetched.payload.as_deref(), Some(&[7u8, 8, 9][..]));
        backend.rollback_block(node, &name, ByteSize::mb(1));
        assert!(backend.fetch_block(node, &name).is_none());
    }

    #[test]
    fn replica_targets_are_distinct_ring_members() {
        let backend = cluster();
        let targets = backend.replica_targets(Id::hash("cat"), 3);
        assert_eq!(targets.len(), 3);
        let nodes: std::collections::BTreeSet<_> = targets.iter().map(|(_, n)| *n).collect();
        assert_eq!(nodes.len(), 3);
    }
}
