//! The common interface of the storage systems under evaluation.
//!
//! PeerStripe and the two baselines (PAST, CFS) all expose the same operations
//! to the experiment drivers: insert a file, report metrics, and answer
//! availability queries after churn.  [`StorageSystem`] captures that interface;
//! [`FileManifest`] records where a file's pieces were placed so that
//! availability can be evaluated as nodes fail (Figure 10, Table 3).

use crate::cluster::StorageCluster;
use crate::metrics::StoreMetrics;
use crate::naming::ObjectName;
use peerstripe_overlay::NodeRef;
use peerstripe_placement::ClusterView;
use peerstripe_sim::ByteSize;
use peerstripe_trace::FileRecord;
use std::collections::BTreeMap;

/// Result of attempting to store one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The whole file was stored.
    Stored,
    /// The store failed (and any partially stored pieces were released).
    Failed {
        /// Human-readable reason, e.g. "exceeded consecutive zero-sized chunk limit".
        reason: String,
    },
}

impl StoreOutcome {
    /// True if the file was stored.
    pub fn is_stored(&self) -> bool {
        matches!(self, StoreOutcome::Stored)
    }
}

/// Placement record of one stored object (block, chunk, or whole file).
#[derive(Debug, Clone)]
pub struct BlockPlacement {
    /// The object's name.
    pub name: ObjectName,
    /// The node the object was placed on.
    pub node: NodeRef,
    /// The object's size.
    pub size: ByteSize,
    /// The failure domain the node belonged to at placement time (`None` for
    /// deployments without a topology).  Recorded so spread accounting and
    /// domain-aware repair can reason about a manifest without re-resolving
    /// nodes against a topology that may have changed since.
    pub domain: Option<peerstripe_placement::DomainId>,
}

/// Placement record of one chunk: every encoded block that was placed for it.
#[derive(Debug, Clone)]
pub struct ChunkPlacement {
    /// Chunk number.
    pub chunk: u32,
    /// Bytes of user data in this chunk.
    pub size: ByteSize,
    /// The placed encoded blocks.
    pub blocks: Vec<BlockPlacement>,
    /// Minimum number of surviving blocks required to recover the chunk.
    pub min_blocks_needed: usize,
}

impl ChunkPlacement {
    /// True if enough of this chunk's blocks are on live nodes to recover it.
    ///
    /// Generic over [`ClusterView`] so availability can be judged against any
    /// backend — the in-process simulator or a live ring of TCP daemons.
    pub fn is_recoverable<V: ClusterView + ?Sized>(&self, view: &V) -> bool {
        if self.size.is_zero() {
            return true;
        }
        let alive = self.blocks.iter().filter(|b| view.is_alive(b.node)).count();
        alive >= self.min_blocks_needed
    }

    /// The blocks of this chunk that live on a particular node.
    pub fn blocks_on(&self, node: NodeRef) -> impl Iterator<Item = &BlockPlacement> {
        self.blocks.iter().filter(move |b| b.node == node)
    }
}

/// Where every piece of a stored file ended up.
#[derive(Debug, Clone)]
pub struct FileManifest {
    /// File name.
    pub name: String,
    /// File size.
    pub size: ByteSize,
    /// Chunk placements, in chunk order (zero-sized chunks included with no blocks).
    pub chunks: Vec<ChunkPlacement>,
    /// Nodes holding the CAT and its replicas (empty for systems without a CAT).
    pub cat_nodes: Vec<NodeRef>,
}

impl FileManifest {
    /// True if every non-empty chunk is recoverable from live nodes.
    ///
    /// This is the availability criterion of Section 6.2: "We counted a file as
    /// available only if all the chunks of the file could be retrieved."
    pub fn is_available<V: ClusterView + ?Sized>(&self, view: &V) -> bool {
        self.chunks.iter().all(|c| c.is_recoverable(view))
    }

    /// Total bytes of user data covered by recoverable chunks.
    pub fn recoverable_bytes<V: ClusterView + ?Sized>(&self, view: &V) -> ByteSize {
        self.chunks
            .iter()
            .filter(|c| c.is_recoverable(view))
            .map(|c| c.size)
            .sum()
    }

    /// Every placed block of the file (all chunks).
    pub fn all_blocks(&self) -> impl Iterator<Item = &BlockPlacement> {
        self.chunks.iter().flat_map(|c| c.blocks.iter())
    }
}

/// A catalogue of manifests, keyed by file name.
///
/// Backed by a `BTreeMap` so iteration (and everything derived from it:
/// availability trackers, damage ledgers, regeneration order) is
/// deterministic — a `HashMap` would reshuffle per process and break
/// fixed-seed reproducibility of the churn experiments.
#[derive(Debug, Clone, Default)]
pub struct ManifestStore {
    manifests: BTreeMap<String, FileManifest>,
}

impl ManifestStore {
    /// Create an empty catalogue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a manifest.
    pub fn insert(&mut self, manifest: FileManifest) {
        self.manifests.insert(manifest.name.clone(), manifest);
    }

    /// Look up a manifest by file name.
    pub fn get(&self, name: &str) -> Option<&FileManifest> {
        self.manifests.get(name)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut FileManifest> {
        self.manifests.get_mut(name)
    }

    /// Remove a manifest.
    pub fn remove(&mut self, name: &str) -> Option<FileManifest> {
        self.manifests.remove(name)
    }

    /// Number of manifests.
    pub fn len(&self) -> usize {
        self.manifests.len()
    }

    /// True if no manifests are stored.
    pub fn is_empty(&self) -> bool {
        self.manifests.is_empty()
    }

    /// Iterate over all manifests.
    pub fn iter(&self) -> impl Iterator<Item = &FileManifest> {
        self.manifests.values()
    }

    /// Iterate mutably over all manifests.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut FileManifest> {
        self.manifests.values_mut()
    }

    /// Count how many stored files are currently available.
    pub fn available_count<V: ClusterView + ?Sized>(&self, view: &V) -> usize {
        self.manifests
            .values()
            .filter(|m| m.is_available(view))
            .count()
    }
}

/// The interface shared by PeerStripe and the baseline systems.
pub trait StorageSystem {
    /// System name as used in figure legends ("Our System", "PAST", "CFS").
    fn name(&self) -> &str;

    /// Attempt to store a file described by a trace record.
    fn store_file(&mut self, file: &FileRecord) -> StoreOutcome;

    /// Store metrics accumulated so far.
    fn metrics(&self) -> &StoreMetrics;

    /// The underlying storage cluster.
    fn cluster(&self) -> &StorageCluster;

    /// Mutable access to the underlying storage cluster (churn scripting).
    fn cluster_mut(&mut self) -> &mut StorageCluster;

    /// The manifest of a stored file, if manifests are being tracked.
    fn manifest(&self, name: &str) -> Option<&FileManifest>;

    /// All manifests (for availability sweeps).
    fn manifests(&self) -> &ManifestStore;

    /// Overall utilization of the cluster, in `[0, 1]` (Figure 9's y-axis).
    fn utilization(&self) -> f64 {
        self.cluster().utilization()
    }

    /// True if a previously stored file is still retrievable.
    fn is_file_available(&self, name: &str) -> bool {
        self.manifest(name)
            .map(|m| m.is_available(self.cluster()))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use peerstripe_sim::DetRng;
    use peerstripe_trace::CapacityModel;

    fn cluster() -> StorageCluster {
        let mut rng = DetRng::new(1);
        ClusterConfig {
            nodes: 20,
            capacity: CapacityModel::Fixed(ByteSize::gb(1)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng)
    }

    fn manifest_with_blocks(nodes: &[NodeRef], min_needed: usize) -> FileManifest {
        FileManifest {
            name: "f".to_string(),
            size: ByteSize::mb(10),
            chunks: vec![ChunkPlacement {
                chunk: 0,
                size: ByteSize::mb(10),
                blocks: nodes
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| BlockPlacement {
                        name: ObjectName::block("f", 0, i as u32),
                        node: n,
                        size: ByteSize::mb(5),
                        domain: None,
                    })
                    .collect(),
                min_blocks_needed: min_needed,
            }],
            cat_nodes: vec![],
        }
    }

    #[test]
    fn availability_respects_min_blocks() {
        let mut cluster = cluster();
        let m = manifest_with_blocks(&[0, 1, 2], 2);
        assert!(m.is_available(&cluster));
        cluster.fail_node(0);
        assert!(m.is_available(&cluster), "one loss tolerated");
        cluster.fail_node(1);
        assert!(!m.is_available(&cluster), "two losses exceed tolerance");
        assert_eq!(m.recoverable_bytes(&cluster), ByteSize::ZERO);
    }

    #[test]
    fn zero_sized_chunks_are_always_recoverable() {
        let cluster = cluster();
        let m = FileManifest {
            name: "empty".into(),
            size: ByteSize::ZERO,
            chunks: vec![ChunkPlacement {
                chunk: 0,
                size: ByteSize::ZERO,
                blocks: vec![],
                min_blocks_needed: 1,
            }],
            cat_nodes: vec![],
        };
        assert!(m.is_available(&cluster));
    }

    #[test]
    fn manifest_store_crud() {
        let cluster = cluster();
        let mut store = ManifestStore::new();
        assert!(store.is_empty());
        store.insert(manifest_with_blocks(&[0, 1], 1));
        assert_eq!(store.len(), 1);
        assert!(store.get("f").is_some());
        assert!(store.get("missing").is_none());
        assert_eq!(store.available_count(&cluster), 1);
        assert!(store.remove("f").is_some());
        assert!(store.is_empty());
    }

    #[test]
    fn blocks_on_filters_by_node() {
        let m = manifest_with_blocks(&[3, 4, 3], 2);
        let on3: Vec<_> = m.chunks[0].blocks_on(3).collect();
        assert_eq!(on3.len(), 2);
        assert_eq!(m.all_blocks().count(), 3);
    }

    #[test]
    fn store_outcome_helpers() {
        assert!(StoreOutcome::Stored.is_stored());
        assert!(!StoreOutcome::Failed {
            reason: "full".into()
        }
        .is_stored());
    }
}
