//! PeerStripe: contributory storage for desktop grids.
//!
//! This crate implements the storage system proposed in *"On Utilization of
//! Contributory Storage in Desktop Grids"* (Miller, Butler, Shah, Butt): a
//! peer-to-peer storage layer that splits large files into **varying-size
//! chunks** sized by `getCapacity` probes of the prospective target nodes,
//! erasure codes each chunk, scatters the coded blocks over a Pastry-style
//! overlay, tracks offsets in a replicated chunk-allocation table, and
//! regenerates lost blocks when participants fail.
//!
//! Crate layout:
//!
//! * [`naming`] — the `file_chunk_ecb` / `file.CAT` naming convention;
//! * [`cat`] — the chunk allocation table (Figure 3);
//! * [`policy`] — placement-level coding policies (none / XOR / online);
//! * [`storage`] + [`cluster`] — the contributory storage substrate shared with
//!   the PAST/CFS baselines;
//! * [`backend`] — the [`StorageBackend`] seam the client drives, implemented
//!   by the simulator here and by live TCP daemons in `peerstripe-net`;
//! * [`client`] — the [`PeerStripe`] system itself (store, retrieve, recover);
//! * [`system`] — the [`StorageSystem`] trait and placement manifests;
//! * [`churn`] — availability tracking and regeneration sweeps (Figure 10, Table 3);
//! * [`metrics`] — store metrics behind Figures 7–9 and Table 1.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod cat;
pub mod churn;
pub mod client;
pub mod cluster;
pub mod metrics;
pub mod naming;
pub mod policy;
pub mod storage;
pub mod system;

pub use backend::{FetchedBlock, StorageBackend};
pub use cat::{ChunkAllocationTable, ChunkExtent};
pub use churn::{DamageLedger, NodeLoss};
pub use client::{PeerStripe, PeerStripeConfig, RecoveryReport};
pub use cluster::{ClusterConfig, ClusterStoreError, StorageCluster};
pub use metrics::{MaintenanceMetrics, MaintenanceSample, StoreMetrics};
pub use naming::ObjectName;
pub use policy::CodingPolicy;
pub use storage::{NodeStoreError, StorageNode, StoredObject};
pub use system::{
    BlockPlacement, ChunkPlacement, FileManifest, ManifestStore, StorageSystem, StoreOutcome,
};
