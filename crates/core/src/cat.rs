//! The chunk allocation table (CAT).
//!
//! Because PeerStripe chunks have varying sizes there is no arithmetic mapping
//! from a file offset to the chunk holding it.  The CAT records, per chunk, the
//! byte range of the file it contains (Figure 3 of the paper shows the textual
//! format).  The CAT is itself stored in the overlay under `filename.CAT` and
//! replicated on leaf-set neighbours; if all replicas are lost it can be
//! reconstructed by probing chunk names in order (Section 4.4), which
//! [`ChunkAllocationTable::from_chunk_sizes`] plus the client's probing loop
//! reproduce.

use peerstripe_sim::ByteSize;
use serde::{Deserialize, Serialize};

/// One CAT row: the half-open byte range `[start, end)` of the file stored in a chunk.
///
/// Zero-sized chunks (failed placements that were retried under a new chunk
/// number, Section 4.3) are represented by `start == end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkExtent {
    /// Chunk number (position in the file's chunk sequence).
    pub chunk: u32,
    /// First byte of the file stored in this chunk.
    pub start: u64,
    /// One past the last byte stored in this chunk (`start` for empty chunks).
    pub end: u64,
}

impl ChunkExtent {
    /// Size of the chunk.
    pub fn size(&self) -> ByteSize {
        ByteSize::bytes(self.end - self.start)
    }

    /// True if this chunk holds no data (a placement retry placeholder).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True if the chunk contains the given file offset.
    pub fn contains(&self, offset: u64) -> bool {
        offset >= self.start && offset < self.end
    }
}

/// The chunk allocation table of one file.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkAllocationTable {
    extents: Vec<ChunkExtent>,
}

impl ChunkAllocationTable {
    /// Create an empty CAT.
    pub fn new() -> Self {
        ChunkAllocationTable {
            extents: Vec::new(),
        }
    }

    /// Build a CAT from the sequence of chunk sizes produced while storing a file
    /// (zero sizes describe empty retry chunks).
    pub fn from_chunk_sizes(sizes: &[ByteSize]) -> Self {
        let mut cat = ChunkAllocationTable::new();
        for &size in sizes {
            cat.push(size);
        }
        cat
    }

    /// Append a chunk of the given size.
    pub fn push(&mut self, size: ByteSize) {
        let start = self.extents.last().map(|e| e.end).unwrap_or(0);
        let chunk = self.extents.len() as u32;
        self.extents.push(ChunkExtent {
            chunk,
            start,
            end: start + size.as_u64(),
        });
    }

    /// Number of chunks (including empty ones).
    pub fn chunk_count(&self) -> usize {
        self.extents.len()
    }

    /// Number of chunks that actually hold data.
    pub fn data_chunk_count(&self) -> usize {
        self.extents.iter().filter(|e| !e.is_empty()).count()
    }

    /// Total file size described by the CAT.
    pub fn file_size(&self) -> ByteSize {
        ByteSize::bytes(self.extents.last().map(|e| e.end).unwrap_or(0))
    }

    /// All extents in chunk order.
    pub fn extents(&self) -> &[ChunkExtent] {
        &self.extents
    }

    /// The extent of a particular chunk number.
    pub fn extent(&self, chunk: u32) -> Option<&ChunkExtent> {
        self.extents.get(chunk as usize)
    }

    /// The chunk containing the given file offset (empty chunks never match).
    pub fn chunk_for_offset(&self, offset: u64) -> Option<&ChunkExtent> {
        // Binary search over ends (extents are ordered and non-overlapping).
        let idx = self.extents.partition_point(|e| e.end <= offset);
        self.extents.get(idx).filter(|e| e.contains(offset))
    }

    /// The chunks overlapping the byte range `[offset, offset + len)`, in order.
    ///
    /// This is the lookup performed when an application reads a portion of a file
    /// (Section 4: "only the chunk(s) containing that portion are retrieved").
    pub fn chunks_for_range(&self, offset: u64, len: u64) -> Vec<&ChunkExtent> {
        if len == 0 {
            return Vec::new();
        }
        let end = offset.saturating_add(len);
        self.extents
            .iter()
            .filter(|e| !e.is_empty() && e.start < end && e.end > offset)
            .collect()
    }

    /// Approximate the size of the serialised CAT object itself (it is stored in
    /// the overlay like any other object): one row per chunk, as in Figure 3.
    pub fn serialized_size(&self) -> ByteSize {
        // "(1) 0,5242880\n" — roughly 32 bytes per row.
        ByteSize::bytes(32 * self.extents.len() as u64)
    }

    /// Render the textual format of Figure 3: `(<chunk>) <start>,<end>` per line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.extents {
            let _ = writeln!(out, "({}) {},{}", e.chunk + 1, e.start, e.end);
        }
        out
    }

    /// Parse the textual format produced by [`ChunkAllocationTable::render`].
    pub fn parse(text: &str) -> Option<Self> {
        let mut extents = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (_label, rest) = line.split_once(") ")?;
            let (start, end) = rest.split_once(',')?;
            let start: u64 = start.trim().parse().ok()?;
            let end: u64 = end.trim().parse().ok()?;
            if end < start {
                return None;
            }
            extents.push(ChunkExtent {
                chunk: extents.len() as u32,
                start,
                end,
            });
        }
        // Validate contiguity.
        let mut expected = 0u64;
        for e in &extents {
            if e.start != expected {
                return None;
            }
            expected = e.end;
        }
        Some(ChunkAllocationTable { extents })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cat() -> ChunkAllocationTable {
        ChunkAllocationTable::from_chunk_sizes(&[
            ByteSize::mb(5),
            ByteSize::mb(20),
            ByteSize::ZERO,
            ByteSize::mb(10),
        ])
    }

    #[test]
    fn push_builds_contiguous_extents() {
        let cat = sample_cat();
        assert_eq!(cat.chunk_count(), 4);
        assert_eq!(cat.data_chunk_count(), 3);
        assert_eq!(cat.file_size(), ByteSize::mb(35));
        let e = cat.extent(1).unwrap();
        assert_eq!(e.start, ByteSize::mb(5).as_u64());
        assert_eq!(e.end, ByteSize::mb(25).as_u64());
        assert!(cat.extent(2).unwrap().is_empty());
    }

    #[test]
    fn offset_lookup_skips_empty_chunks() {
        let cat = sample_cat();
        assert_eq!(cat.chunk_for_offset(0).unwrap().chunk, 0);
        assert_eq!(
            cat.chunk_for_offset(ByteSize::mb(5).as_u64())
                .unwrap()
                .chunk,
            1
        );
        // Offset right at the start of the data held by chunk 3 (after the empty chunk 2).
        assert_eq!(
            cat.chunk_for_offset(ByteSize::mb(25).as_u64())
                .unwrap()
                .chunk,
            3
        );
        // Past the end of the file.
        assert!(cat.chunk_for_offset(ByteSize::mb(35).as_u64()).is_none());
    }

    #[test]
    fn range_lookup_returns_overlapping_chunks() {
        let cat = sample_cat();
        let chunks = cat.chunks_for_range(ByteSize::mb(4).as_u64(), ByteSize::mb(2).as_u64());
        let nums: Vec<u32> = chunks.iter().map(|e| e.chunk).collect();
        assert_eq!(nums, vec![0, 1]);
        // A range entirely inside one chunk.
        let chunks = cat.chunks_for_range(ByteSize::mb(6).as_u64(), ByteSize::mb(1).as_u64());
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].chunk, 1);
        // Empty range.
        assert!(cat.chunks_for_range(0, 0).is_empty());
        // Whole file.
        assert_eq!(cat.chunks_for_range(0, u64::MAX).len(), 3);
    }

    #[test]
    fn render_and_parse_round_trip() {
        let cat = sample_cat();
        let text = cat.render();
        assert!(text.lines().count() == 4);
        let parsed = ChunkAllocationTable::parse(&text).unwrap();
        assert_eq!(parsed, cat);
    }

    #[test]
    fn parse_rejects_non_contiguous_tables() {
        assert!(ChunkAllocationTable::parse("(1) 0,100\n(2) 200,300\n").is_none());
        assert!(ChunkAllocationTable::parse("(1) 100,50\n").is_none());
        assert!(ChunkAllocationTable::parse("garbage").is_none());
        // Empty text parses as an empty CAT.
        assert_eq!(ChunkAllocationTable::parse("").unwrap().chunk_count(), 0);
    }

    #[test]
    fn serialized_size_grows_with_chunks() {
        let cat = sample_cat();
        assert!(cat.serialized_size() > ByteSize::ZERO);
        assert!(cat.serialized_size() < ByteSize::kb(1));
    }

    #[test]
    fn figure3_example_shape() {
        // Mirror the structure of the paper's Figure 3: six chunks, ~100 MB file,
        // chunk #5 empty.
        let cat = ChunkAllocationTable::from_chunk_sizes(&[
            ByteSize::bytes(5_242_880),
            ByteSize::bytes(20_840_448),
            ByteSize::bytes(26_214_400),
            ByteSize::bytes(33_816_576),
            ByteSize::ZERO,
            ByteSize::bytes(18_742_272),
        ]);
        assert_eq!(cat.chunk_count(), 6);
        assert!(cat.extent(4).unwrap().is_empty());
        assert!((cat.file_size().as_mb() - 100.0).abs() < 1.0);
    }
}
