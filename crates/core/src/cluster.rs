//! The contributory storage pool: overlay + per-node storage.
//!
//! [`StorageCluster`] combines the [`peerstripe_overlay::OverlaySim`] (which
//! decides *where* a key lives and models churn) with a [`StorageNode`] per
//! participant (which decides *whether* the object fits).  All three storage
//! systems evaluated in the paper — PeerStripe, PAST and CFS — are built on this
//! substrate, so their comparison differs only in placement policy, exactly as in
//! the paper's simulations.

use crate::naming::ObjectName;
use crate::storage::{NodeStoreError, StorageNode, StoredObject};
use peerstripe_overlay::{Id, NodeRef, OverlaySim, Takeover};
use peerstripe_placement::{ClusterView, ProbeView};
use peerstripe_sim::{ByteSize, DetRng};
use peerstripe_trace::CapacityModel;
use serde::{Deserialize, Serialize};

/// Configuration of a storage cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of participating nodes.
    pub nodes: usize,
    /// Distribution of contributed capacity.
    pub capacity: CapacityModel,
    /// Fraction of free space reported per `getCapacity` probe.
    pub report_fraction: f64,
    /// Whether nodes keep per-object bookkeeping (needed for availability,
    /// retrieval, and recovery experiments; off for the largest insert sweeps).
    pub track_objects: bool,
}

impl ClusterConfig {
    /// The paper's 10 000-node simulation population.
    pub fn paper_desktop_grid() -> Self {
        ClusterConfig {
            nodes: 10_000,
            capacity: CapacityModel::paper_desktop_grid(),
            report_fraction: 1.0,
            track_objects: true,
        }
    }

    /// A scaled-down population with the same capacity distribution.
    pub fn scaled(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            ..Self::paper_desktop_grid()
        }
    }

    /// Disable per-object tracking (memory-bounded mode for huge sweeps).
    pub fn without_object_tracking(mut self) -> Self {
        self.track_objects = false;
        self
    }

    /// Build the cluster.
    pub fn build(&self, rng: &mut DetRng) -> StorageCluster {
        let mut overlay_rng = rng.fork("overlay");
        let overlay = OverlaySim::new(self.nodes, &mut overlay_rng);
        let capacities = self.capacity.sample(self.nodes, rng);
        let nodes = capacities
            .into_iter()
            .map(|c| StorageNode::new(c, self.report_fraction, self.track_objects))
            .collect();
        StorageCluster { overlay, nodes }
    }
}

/// Why a cluster-level store failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterStoreError {
    /// The overlay has no live nodes.
    NoLiveNodes,
    /// The target node refused the object (insufficient space, duplicate key).
    Refused(NodeStoreError),
}

/// The shared storage pool all systems in the evaluation run on.
#[derive(Debug, Clone)]
pub struct StorageCluster {
    overlay: OverlaySim,
    nodes: Vec<StorageNode>,
}

impl StorageCluster {
    /// Read-only access to the overlay.
    pub fn overlay(&self) -> &OverlaySim {
        &self.overlay
    }

    /// Mutable access to the overlay (churn scripting, lookup accounting).
    pub fn overlay_mut(&mut self) -> &mut OverlaySim {
        &mut self.overlay
    }

    /// Number of nodes (live and failed).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Storage state of a node.
    pub fn node(&self, node: NodeRef) -> &StorageNode {
        &self.nodes[node]
    }

    /// Mutable storage state of a node.
    pub fn node_mut(&mut self, node: NodeRef) -> &mut StorageNode {
        &mut self.nodes[node]
    }

    /// Total contributed capacity across all nodes (live and failed).
    pub fn total_capacity(&self) -> ByteSize {
        self.nodes.iter().map(StorageNode::capacity).sum()
    }

    /// Total bytes stored on live nodes.
    pub fn total_used(&self) -> ByteSize {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| self.overlay.is_alive(*i))
            .map(|(_, n)| n.used())
            .sum()
    }

    /// Overall utilization of the live capacity, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let capacity: ByteSize = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| self.overlay.is_alive(*i))
            .map(|(_, n)| n.capacity())
            .sum();
        self.total_used().fraction_of(capacity)
    }

    /// Send a `getCapacity` probe for a prospective object: routes the key and
    /// returns the target node together with its reported capacity (Figure 4).
    ///
    /// The report is *not* a reservation.
    pub fn get_capacity(&mut self, key: Id) -> Option<(NodeRef, ByteSize)> {
        let target = self.overlay.route(key)?;
        Some((target, self.nodes[target].report_capacity()))
    }

    /// Store an object at the node its key routes to.
    ///
    /// One routed lookup message is charged; the data transfer itself happens
    /// over IP and is not overlay traffic (Section 4.1).
    pub fn store_object(
        &mut self,
        name: ObjectName,
        size: ByteSize,
        payload: Option<Vec<u8>>,
    ) -> Result<NodeRef, ClusterStoreError> {
        let key = name.key();
        let target = self
            .overlay
            .route(key)
            .ok_or(ClusterStoreError::NoLiveNodes)?;
        self.store_object_at(target, key, name, size, payload)
    }

    /// Store an object on an explicit node (replica placement, takeover
    /// regeneration).  No lookup message is charged.
    pub fn store_object_at(
        &mut self,
        node: NodeRef,
        key: Id,
        name: ObjectName,
        size: ByteSize,
        payload: Option<Vec<u8>>,
    ) -> Result<NodeRef, ClusterStoreError> {
        if !self.overlay.is_alive(node) {
            return Err(ClusterStoreError::NoLiveNodes);
        }
        self.nodes[node]
            .store(
                key,
                StoredObject {
                    name,
                    size,
                    payload,
                },
            )
            .map_err(ClusterStoreError::Refused)?;
        Ok(node)
    }

    /// Route a lookup for an object and return the node currently responsible
    /// for its key (charging a lookup message).
    pub fn locate(&mut self, name: &ObjectName) -> Option<NodeRef> {
        self.overlay.route(name.key())
    }

    /// Fetch an object from a specific node (requires object tracking).
    pub fn fetch_from(&self, node: NodeRef, name: &ObjectName) -> Option<&StoredObject> {
        if !self.overlay.is_alive(node) {
            return None;
        }
        self.nodes[node].get(name.key())
    }

    /// True if the given node is live and currently holds the object.
    pub fn holds(&self, node: NodeRef, name: &ObjectName) -> bool {
        self.overlay.is_alive(node) && self.nodes[node].has(name.key())
    }

    /// Remove an object from a node, freeing its space.
    pub fn remove_from(&mut self, node: NodeRef, name: &ObjectName) -> Option<ByteSize> {
        self.nodes[node].remove(name.key())
    }

    /// Release an object's space when it cannot be identified by key (nodes
    /// running without per-object tracking).  Used by store rollback.
    pub fn release_at(&mut self, node: NodeRef, size: ByteSize) {
        self.nodes[node].release(size);
    }

    /// Roll back a stored object: remove it if tracked, otherwise release its size.
    pub fn rollback_object(&mut self, node: NodeRef, name: &ObjectName, size: ByteSize) {
        if self.nodes[node].remove(name.key()).is_none() {
            self.nodes[node].release(size);
        }
    }

    /// Fail a node: its identifier leaves the overlay and its disk contents are
    /// gone.  Returns the key-space takeover description for recovery.
    pub fn fail_node(&mut self, node: NodeRef) -> Option<Takeover> {
        let takeover = self.overlay.fail(node);
        if takeover.is_some() {
            // Keep the stored objects around so recovery code can inspect what
            // was lost (the node itself is unreachable); wiping is the caller's
            // decision once the loss has been accounted.
        }
        takeover
    }

    /// Uniformly sample and fail `count` live nodes; returns them with takeovers.
    pub fn fail_random(
        &mut self,
        count: usize,
        rng: &mut DetRng,
    ) -> Vec<(NodeRef, Option<Takeover>)> {
        self.overlay.fail_random(count, rng)
    }
}

// The narrow interface placement strategies consult: routing, liveness, and
// capacity reports, without exposing the rest of the cluster.
impl ClusterView for StorageCluster {
    fn route_quiet(&self, key: Id) -> Option<NodeRef> {
        self.overlay.route_quiet(key)
    }

    fn is_alive(&self, node: NodeRef) -> bool {
        self.overlay.is_alive(node)
    }

    fn can_store(&self, node: NodeRef, size: ByteSize) -> bool {
        self.nodes[node].can_store(size)
    }

    fn report_of(&self, node: NodeRef) -> ByteSize {
        self.nodes[node].report_capacity()
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn alive_nodes(&self) -> Vec<NodeRef> {
        self.overlay.alive_nodes().collect()
    }
}

impl ProbeView for StorageCluster {
    fn probe(&mut self, key: Id) -> Option<(NodeRef, ByteSize)> {
        self.get_capacity(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(seed: u64) -> StorageCluster {
        let mut rng = DetRng::new(seed);
        ClusterConfig {
            nodes: 100,
            capacity: CapacityModel::Fixed(ByteSize::gb(1)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng)
    }

    #[test]
    fn build_assigns_capacity_to_every_node() {
        let mut rng = DetRng::new(1);
        let cluster = ClusterConfig::scaled(50).build(&mut rng);
        assert_eq!(cluster.node_count(), 50);
        assert!(cluster.total_capacity() > ByteSize::tb(1));
        assert_eq!(cluster.total_used(), ByteSize::ZERO);
        assert_eq!(cluster.utilization(), 0.0);
    }

    #[test]
    fn store_and_fetch_round_trip() {
        let mut cluster = small_cluster(2);
        let name = ObjectName::block("genome", 0, 1);
        let node = cluster
            .store_object(name.clone(), ByteSize::mb(100), Some(vec![1, 2, 3]))
            .unwrap();
        assert!(cluster.holds(node, &name));
        let fetched = cluster.fetch_from(node, &name).unwrap();
        assert_eq!(fetched.size, ByteSize::mb(100));
        assert_eq!(fetched.payload.as_deref(), Some(&[1u8, 2, 3][..]));
        assert_eq!(cluster.total_used(), ByteSize::mb(100));
        // The object landed on the node its key routes to.
        assert_eq!(cluster.locate(&name), Some(node));
    }

    #[test]
    fn get_capacity_reports_free_space_without_reserving() {
        let mut cluster = small_cluster(3);
        let name = ObjectName::chunk("f", 0);
        let (node, report) = cluster.get_capacity(name.key()).unwrap();
        assert_eq!(report, ByteSize::gb(1));
        // Fill the node behind the report's back; the report was not a reservation.
        cluster
            .store_object_at(
                node,
                Id(42),
                ObjectName::chunk("other", 0),
                ByteSize::gb(1),
                None,
            )
            .unwrap();
        let (_, report2) = cluster.get_capacity(name.key()).unwrap();
        assert_eq!(report2, ByteSize::ZERO);
    }

    #[test]
    fn store_fails_when_target_is_full() {
        let mut cluster = small_cluster(4);
        let name = ObjectName::chunk("huge", 0);
        let err = cluster
            .store_object(name, ByteSize::gb(2), None)
            .unwrap_err();
        assert!(matches!(
            err,
            ClusterStoreError::Refused(NodeStoreError::InsufficientSpace)
        ));
    }

    #[test]
    fn failed_nodes_lose_objects_for_lookup_purposes() {
        let mut cluster = small_cluster(5);
        let name = ObjectName::chunk("data", 0);
        let node = cluster
            .store_object(name.clone(), ByteSize::mb(10), None)
            .unwrap();
        let takeover = cluster.fail_node(node).unwrap();
        assert!(!cluster.holds(node, &name));
        assert!(cluster.fetch_from(node, &name).is_none());
        // The key now routes to one of the takeover inheritors.
        let new_target = cluster.locate(&name).unwrap();
        assert!(new_target == takeover.predecessor.1 || new_target == takeover.successor.1);
    }

    #[test]
    fn utilization_counts_only_live_nodes() {
        let mut cluster = small_cluster(6);
        let name = ObjectName::chunk("x", 0);
        let node = cluster.store_object(name, ByteSize::mb(500), None).unwrap();
        assert!(cluster.utilization() > 0.0);
        cluster.fail_node(node);
        assert_eq!(cluster.total_used(), ByteSize::ZERO);
    }

    #[test]
    fn lookup_messages_are_counted() {
        let mut cluster = small_cluster(7);
        let before = cluster.overlay().stats().lookups;
        let _ = cluster.get_capacity(Id::hash("a"));
        let _ = cluster.store_object(ObjectName::chunk("a", 0), ByteSize::mb(1), None);
        let _ = cluster.locate(&ObjectName::chunk("a", 0));
        assert_eq!(cluster.overlay().stats().lookups, before + 3);
    }
}
