//! Per-node contributed storage.
//!
//! Every overlay participant contributes disk space.  [`StorageNode`] tracks the
//! contributed capacity, the space in use, and (optionally) the objects stored,
//! and implements the node-local policies the paper describes:
//!
//! * `getCapacity` replies report the free space a node is willing to devote to
//!   one block — optionally only a fraction of the free space, so a node can
//!   serve several simultaneous stores (Section 4.3);
//! * the space is *not reserved* by a report; a later store can still fail if
//!   the space was consumed in the meantime.

use crate::naming::ObjectName;
use peerstripe_overlay::Id;
use peerstripe_sim::ByteSize;
use std::collections::BTreeMap;

/// An object stored on a node.
#[derive(Debug, Clone)]
pub struct StoredObject {
    /// The object's name (block, chunk, CAT, or whole file).
    pub name: ObjectName,
    /// Size charged against the node's capacity.
    pub size: ByteSize,
    /// Optional real payload (only the byte-level data path fills this in).
    pub payload: Option<Vec<u8>>,
}

/// Why a node refused to store an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStoreError {
    /// The node does not have enough free space.
    InsufficientSpace,
    /// An object with the same key is already stored.
    AlreadyStored,
}

impl std::fmt::Display for NodeStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeStoreError::InsufficientSpace => {
                write!(f, "insufficient free space on the target node")
            }
            NodeStoreError::AlreadyStored => {
                write!(f, "an object with the same key is already stored")
            }
        }
    }
}

impl std::error::Error for NodeStoreError {}

/// Storage state of one contributory node.
#[derive(Debug, Clone)]
pub struct StorageNode {
    capacity: ByteSize,
    used: ByteSize,
    report_fraction: f64,
    objects: BTreeMap<Id, StoredObject>,
    track_objects: bool,
    object_count: u64,
}

impl StorageNode {
    /// Create a node contributing `capacity` bytes.
    ///
    /// `report_fraction` controls how much of the free space a `getCapacity`
    /// reply advertises (1.0 = everything, the configuration used in the paper's
    /// simulations).  `track_objects` enables per-object bookkeeping (needed for
    /// availability and recovery experiments; disabled for the very large
    /// store-throughput sweeps to bound memory).
    pub fn new(capacity: ByteSize, report_fraction: f64, track_objects: bool) -> Self {
        assert!((0.0..=1.0).contains(&report_fraction));
        StorageNode {
            capacity,
            used: ByteSize::ZERO,
            report_fraction,
            objects: BTreeMap::new(),
            track_objects,
            object_count: 0,
        }
    }

    /// Contributed capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes currently in use.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Free space remaining.
    pub fn free(&self) -> ByteSize {
        self.capacity.saturating_sub(self.used)
    }

    /// Fraction of the capacity in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.used.fraction_of(self.capacity)
    }

    /// Number of objects stored (counted even when object tracking is off).
    pub fn object_count(&self) -> u64 {
        self.object_count
    }

    /// The reply to a `getCapacity` probe: the maximum block size this node is
    /// willing to accept right now.  May be zero (full or unwilling).  The space
    /// is *not* reserved.
    pub fn report_capacity(&self) -> ByteSize {
        self.free().scale(self.report_fraction)
    }

    /// True if an object of the given size fits right now.
    pub fn can_store(&self, size: ByteSize) -> bool {
        size <= self.free()
    }

    /// Store an object under the given key.
    pub fn store(&mut self, key: Id, object: StoredObject) -> Result<(), NodeStoreError> {
        if !self.can_store(object.size) {
            return Err(NodeStoreError::InsufficientSpace);
        }
        if self.track_objects {
            if self.objects.contains_key(&key) {
                return Err(NodeStoreError::AlreadyStored);
            }
            self.used += object.size;
            self.objects.insert(key, object);
        } else {
            self.used += object.size;
        }
        self.object_count += 1;
        Ok(())
    }

    /// Remove an object, returning its size (only possible with object tracking).
    pub fn remove(&mut self, key: Id) -> Option<ByteSize> {
        let obj = self.objects.remove(&key)?;
        self.used -= obj.size;
        self.object_count = self.object_count.saturating_sub(1);
        Some(obj.size)
    }

    /// Release `size` bytes without identifying the object — the rollback path
    /// used when per-object tracking is disabled.
    pub fn release(&mut self, size: ByteSize) {
        self.used -= size;
        self.object_count = self.object_count.saturating_sub(1);
    }

    /// Charge `size` bytes without storing an identified object — the
    /// counterpart of [`StorageNode::release`], used by placement-only
    /// maintenance accounting (regenerated blocks tracked in a ledger rather
    /// than as node objects).  Fails like a store when the space is not there.
    pub fn reserve(&mut self, size: ByteSize) -> Result<(), NodeStoreError> {
        if !self.can_store(size) {
            return Err(NodeStoreError::InsufficientSpace);
        }
        self.used += size;
        self.object_count += 1;
        Ok(())
    }

    /// True if the node currently stores the object (requires object tracking).
    pub fn has(&self, key: Id) -> bool {
        self.objects.contains_key(&key)
    }

    /// Access a stored object (requires object tracking).
    pub fn get(&self, key: Id) -> Option<&StoredObject> {
        self.objects.get(&key)
    }

    /// Iterate over the stored objects (requires object tracking).
    pub fn objects(&self) -> impl Iterator<Item = (&Id, &StoredObject)> {
        self.objects.iter()
    }

    /// Drop every stored object (a failed node's disk contents are gone); the
    /// capacity itself is retained so the node could rejoin empty.
    pub fn wipe(&mut self) {
        self.objects.clear();
        self.used = ByteSize::ZERO;
        self.object_count = 0;
    }

    /// Change the fraction of free space reported by `getCapacity`.
    pub fn set_report_fraction(&mut self, fraction: f64) {
        assert!((0.0..=1.0).contains(&fraction));
        self.report_fraction = fraction;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(name: &str, size: ByteSize) -> StoredObject {
        StoredObject {
            name: ObjectName::chunk(name, 0),
            size,
            payload: None,
        }
    }

    #[test]
    fn store_and_accounting() {
        let mut node = StorageNode::new(ByteSize::gb(10), 1.0, true);
        assert_eq!(node.free(), ByteSize::gb(10));
        node.store(Id(1), obj("a", ByteSize::gb(4))).unwrap();
        assert_eq!(node.used(), ByteSize::gb(4));
        assert_eq!(node.free(), ByteSize::gb(6));
        assert!((node.utilization() - 0.4).abs() < 1e-12);
        assert_eq!(node.object_count(), 1);
        assert!(node.has(Id(1)));
        assert!(!node.has(Id(2)));
    }

    #[test]
    fn rejects_oversized_and_duplicate_stores() {
        let mut node = StorageNode::new(ByteSize::gb(1), 1.0, true);
        assert_eq!(
            node.store(Id(1), obj("big", ByteSize::gb(2))),
            Err(NodeStoreError::InsufficientSpace)
        );
        node.store(Id(1), obj("a", ByteSize::mb(100))).unwrap();
        assert_eq!(
            node.store(Id(1), obj("a", ByteSize::mb(100))),
            Err(NodeStoreError::AlreadyStored)
        );
    }

    #[test]
    fn store_errors_propagate_with_question_mark() {
        // `?`-propagation through a boxed error: the point of the Error impl.
        fn try_store(node: &mut StorageNode) -> Result<(), Box<dyn std::error::Error>> {
            node.store(Id(1), obj("big", ByteSize::gb(2)))?;
            Ok(())
        }
        let mut node = StorageNode::new(ByteSize::gb(1), 1.0, true);
        let err = try_store(&mut node).unwrap_err();
        assert!(err.to_string().contains("insufficient free space"));
        assert_eq!(
            NodeStoreError::AlreadyStored.to_string(),
            "an object with the same key is already stored"
        );
    }

    #[test]
    fn reserve_charges_space_without_an_object() {
        let mut node = StorageNode::new(ByteSize::gb(1), 1.0, true);
        node.reserve(ByteSize::mb(600)).unwrap();
        assert_eq!(node.used(), ByteSize::mb(600));
        assert_eq!(node.object_count(), 1);
        assert_eq!(
            node.reserve(ByteSize::mb(600)),
            Err(NodeStoreError::InsufficientSpace)
        );
        node.release(ByteSize::mb(600));
        assert_eq!(node.used(), ByteSize::ZERO);
    }

    #[test]
    fn remove_frees_space() {
        let mut node = StorageNode::new(ByteSize::gb(1), 1.0, true);
        node.store(Id(7), obj("x", ByteSize::mb(300))).unwrap();
        assert_eq!(node.remove(Id(7)), Some(ByteSize::mb(300)));
        assert_eq!(node.used(), ByteSize::ZERO);
        assert_eq!(node.remove(Id(7)), None);
        assert_eq!(node.object_count(), 0);
    }

    #[test]
    fn report_capacity_respects_fraction_and_is_not_a_reservation() {
        let mut node = StorageNode::new(ByteSize::gb(10), 0.5, true);
        assert_eq!(node.report_capacity(), ByteSize::gb(5));
        // A report does not reserve: a store can still consume the space.
        node.store(Id(1), obj("a", ByteSize::gb(9))).unwrap();
        assert_eq!(node.report_capacity(), ByteSize::mb(512));
        node.set_report_fraction(1.0);
        assert_eq!(node.report_capacity(), ByteSize::gb(1));
    }

    #[test]
    fn untracked_mode_only_counts_bytes() {
        let mut node = StorageNode::new(ByteSize::gb(1), 1.0, false);
        node.store(Id(1), obj("a", ByteSize::mb(100))).unwrap();
        node.store(Id(1), obj("a", ByteSize::mb(100))).unwrap();
        assert_eq!(node.used(), ByteSize::mb(200));
        assert_eq!(node.object_count(), 2);
        assert!(!node.has(Id(1)), "objects are not tracked");
        assert_eq!(node.remove(Id(1)), None);
    }

    #[test]
    fn wipe_clears_everything() {
        let mut node = StorageNode::new(ByteSize::gb(1), 1.0, true);
        node.store(Id(1), obj("a", ByteSize::mb(100))).unwrap();
        node.store(Id(2), obj("b", ByteSize::mb(200))).unwrap();
        node.wipe();
        assert_eq!(node.used(), ByteSize::ZERO);
        assert_eq!(node.object_count(), 0);
        assert!(!node.has(Id(1)));
        assert_eq!(node.capacity(), ByteSize::gb(1));
    }

    #[test]
    fn payloads_are_preserved() {
        let mut node = StorageNode::new(ByteSize::gb(1), 1.0, true);
        let stored = StoredObject {
            name: ObjectName::block("f", 0, 1),
            size: ByteSize::bytes(4),
            payload: Some(vec![1, 2, 3, 4]),
        };
        node.store(Id(9), stored).unwrap();
        assert_eq!(
            node.get(Id(9)).unwrap().payload.as_deref(),
            Some(&[1u8, 2, 3, 4][..])
        );
    }
}
