//! The overlay network simulator.
//!
//! [`OverlaySim`] plays the role of FreePastry's "simulator mode" used in the
//! paper (Section 6.1): a population of directly connected nodes, each running
//! an instance of the protocol code, with instantaneous message delivery but
//! faithful *routing semantics* (key → numerically closest live node), leaf-set
//! maintenance, proximity, and scripted churn.  The storage systems (PeerStripe,
//! PAST, CFS) are layered on top of this simulator; it records lookup-message
//! statistics so the experiments can charge per-lookup overheads.

use crate::id::Id;
use crate::node::{Coord, NodeInfo};
use crate::ring::{IdRing, LeafSet, NodeRef, Takeover};
use crate::routing::{route_hops, RoutingTable};
use peerstripe_sim::{DetRng, OnlineStats};

/// Statistics about overlay traffic accumulated by a simulation run.
#[derive(Debug, Clone, Default)]
pub struct OverlayStats {
    /// Number of `lookUp` / `getCapacity`-style routed messages issued.
    pub lookups: u64,
    /// Number of node joins processed.
    pub joins: u64,
    /// Number of node failures processed.
    pub failures: u64,
    /// Distribution of hop counts for lookups routed with hop accounting.
    pub hops: OnlineStats,
}

/// A simulated structured overlay of contributory nodes.
#[derive(Debug, Clone)]
pub struct OverlaySim {
    nodes: Vec<NodeInfo>,
    ring: IdRing,
    stats: OverlayStats,
}

impl OverlaySim {
    /// Create an overlay with `n` nodes with uniformly random ids and coordinates.
    pub fn new(n: usize, rng: &mut DetRng) -> Self {
        let mut sim = OverlaySim {
            nodes: Vec::with_capacity(n),
            ring: IdRing::new(),
            stats: OverlayStats::default(),
        };
        for _ in 0..n {
            sim.join(rng);
        }
        sim
    }

    /// Create an empty overlay.
    pub fn empty() -> Self {
        OverlaySim {
            nodes: Vec::new(),
            ring: IdRing::new(),
            stats: OverlayStats::default(),
        }
    }

    /// Total number of nodes ever joined (live and failed).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of currently live nodes.
    pub fn alive_count(&self) -> usize {
        self.ring.len()
    }

    /// Access a node's info.
    pub fn node(&self, node: NodeRef) -> &NodeInfo {
        &self.nodes[node]
    }

    /// All node infos (live and failed), indexed by [`NodeRef`].
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Iterator over the [`NodeRef`]s of live nodes.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeRef> + '_ {
        self.ring.iter().map(|(_, n)| n)
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &OverlayStats {
        &self.stats
    }

    /// Reset traffic statistics (e.g. between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = OverlayStats::default();
    }

    /// Direct access to the id ring (read-only).
    pub fn ring(&self) -> &IdRing {
        &self.ring
    }

    /// A new node joins the overlay (Figure 1 of the paper): it is assigned a
    /// random id and coordinate and becomes immediately reachable.
    pub fn join(&mut self, rng: &mut DetRng) -> NodeRef {
        loop {
            let id = Id::random(rng);
            if !self.ring.contains(id) {
                let node_ref = self.nodes.len();
                self.nodes.push(NodeInfo::new(id, Coord::random(rng)));
                self.ring.insert(id, node_ref);
                self.stats.joins += 1;
                return node_ref;
            }
        }
    }

    /// A previously failed node rejoins with its old identifier.
    pub fn rejoin(&mut self, node: NodeRef) {
        if !self.nodes[node].alive {
            self.nodes[node].alive = true;
            self.ring.insert(self.nodes[node].id, node);
            self.stats.joins += 1;
        }
    }

    /// Fail a node, removing it from the ring.  Returns the takeover description
    /// (who inherits its key space), or `None` if the node was already dead or is
    /// the last live node.
    pub fn fail(&mut self, node: NodeRef) -> Option<Takeover> {
        if !self.nodes[node].alive {
            return None;
        }
        let id = self.nodes[node].id;
        let takeover = self.ring.takeover_on_failure(id);
        self.nodes[node].alive = false;
        self.ring.remove(id);
        self.stats.failures += 1;
        takeover
    }

    /// Fail `count` distinct, uniformly chosen live nodes; returns the failed refs
    /// in failure order (paired with their takeovers).
    pub fn fail_random(
        &mut self,
        count: usize,
        rng: &mut DetRng,
    ) -> Vec<(NodeRef, Option<Takeover>)> {
        let mut live: Vec<NodeRef> = self.alive_nodes().collect();
        rng.shuffle(&mut live);
        live.truncate(count);
        live.into_iter()
            .map(|n| {
                let t = self.fail(n);
                (n, t)
            })
            .collect()
    }

    /// True if a node is live.
    pub fn is_alive(&self, node: NodeRef) -> bool {
        self.nodes[node].alive
    }

    /// Route a key to the live node numerically closest to it.
    ///
    /// Increments the lookup-message counter: every chunk/block store or retrieve
    /// in the storage systems costs one routed `lookUp` message (Section 4.1).
    pub fn route(&mut self, key: Id) -> Option<NodeRef> {
        self.stats.lookups += 1;
        self.ring.route(key).map(|(_, n)| n)
    }

    /// Route a key without counting it as protocol traffic (internal queries).
    pub fn route_quiet(&self, key: Id) -> Option<NodeRef> {
        self.ring.route(key).map(|(_, n)| n)
    }

    /// Route a key and also record the number of overlay hops the lookup takes
    /// from `from`.  Used where lookup latency matters (Condor case study).
    pub fn route_with_hops(&mut self, from: NodeRef, key: Id) -> Option<(NodeRef, usize)> {
        self.stats.lookups += 1;
        let from_id = self.nodes[from].id;
        let target = self.ring.route(key).map(|(_, n)| n)?;
        let hops = route_hops(&self.ring, from_id, key);
        self.stats.hops.push(hops as f64);
        Some((target, hops))
    }

    /// The `k` live nodes numerically closest to a key (replica targets).
    pub fn k_closest(&self, key: Id, k: usize) -> Vec<NodeRef> {
        self.ring
            .k_closest(key, k)
            .into_iter()
            .map(|(_, n)| n)
            .collect()
    }

    /// The `k` live successors of a key (CFS replica placement).
    pub fn successors(&self, key: Id, k: usize) -> Vec<NodeRef> {
        self.ring
            .successors(key, k)
            .into_iter()
            .map(|(_, n)| n)
            .collect()
    }

    /// The leaf set of a live node.
    pub fn leaf_set(&self, node: NodeRef, l: usize) -> LeafSet {
        self.ring.leaf_set(self.nodes[node].id, l)
    }

    /// Proximity (synthetic latency metric) between two nodes.
    pub fn proximity(&self, a: NodeRef, b: NodeRef) -> f64 {
        self.nodes[a].coord.distance(&self.nodes[b].coord)
    }

    /// One-way latency in milliseconds between two nodes.
    pub fn latency_ms(&self, a: NodeRef, b: NodeRef) -> f64 {
        self.nodes[a].coord.latency_ms(&self.nodes[b].coord)
    }

    /// From `candidates`, the `k` nodes closest (by proximity) to `from`.
    pub fn closest_by_proximity(
        &self,
        from: NodeRef,
        candidates: &[NodeRef],
        k: usize,
    ) -> Vec<NodeRef> {
        let origin = self.nodes[from].coord;
        let mut with_dist: Vec<(f64, NodeRef)> = candidates
            .iter()
            .filter(|&&c| c != from)
            .map(|&c| (origin.distance(&self.nodes[c].coord), c))
            .collect();
        with_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap()); // lint:allow(panic) -- coordinate distances are finite, never NaN
        with_dist.into_iter().take(k).map(|(_, c)| c).collect()
    }

    /// Build the proximity-aware routing table of a live node.
    pub fn routing_table(&self, node: NodeRef, max_rows: u32) -> RoutingTable {
        RoutingTable::build(self.nodes[node].id, &self.ring, &self.nodes, max_rows)
    }

    /// A uniformly random live node, if any.
    pub fn random_alive(&self, rng: &mut DetRng) -> Option<NodeRef> {
        let live: Vec<NodeRef> = self.alive_nodes().collect();
        rng.choose(&live).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_requested_population() {
        let mut rng = DetRng::new(1);
        let sim = OverlaySim::new(1000, &mut rng);
        assert_eq!(sim.node_count(), 1000);
        assert_eq!(sim.alive_count(), 1000);
        assert_eq!(sim.stats().joins, 1000);
    }

    #[test]
    fn route_counts_lookups() {
        let mut rng = DetRng::new(2);
        let mut sim = OverlaySim::new(100, &mut rng);
        for i in 0..50 {
            assert!(sim.route(Id::hash(&format!("file_{i}"))).is_some());
        }
        assert_eq!(sim.stats().lookups, 50);
        sim.reset_stats();
        assert_eq!(sim.stats().lookups, 0);
    }

    #[test]
    fn failed_nodes_not_routed_to() {
        let mut rng = DetRng::new(3);
        let mut sim = OverlaySim::new(200, &mut rng);
        let failed = sim.fail_random(50, &mut rng);
        assert_eq!(failed.len(), 50);
        assert_eq!(sim.alive_count(), 150);
        for i in 0..200 {
            let target = sim.route(Id::hash(&format!("k{i}"))).unwrap();
            assert!(sim.is_alive(target), "lookups must land on live nodes");
        }
    }

    #[test]
    fn fail_and_rejoin_round_trip() {
        let mut rng = DetRng::new(4);
        let mut sim = OverlaySim::new(10, &mut rng);
        let victim = 3;
        let takeover = sim.fail(victim);
        assert!(takeover.is_some());
        assert!(!sim.is_alive(victim));
        assert_eq!(sim.alive_count(), 9);
        assert!(sim.fail(victim).is_none(), "double-fail is a no-op");
        sim.rejoin(victim);
        assert!(sim.is_alive(victim));
        assert_eq!(sim.alive_count(), 10);
    }

    #[test]
    fn keys_remap_to_takeover_inheritors() {
        let mut rng = DetRng::new(5);
        let mut sim = OverlaySim::new(500, &mut rng);
        // Pick a key, find its root, fail the root, and check the new root is one
        // of the takeover inheritors.
        let key = Id::hash("big-file_0_1");
        let root = sim.route_quiet(key).unwrap();
        let takeover = sim.fail(root).unwrap();
        let new_root = sim.route_quiet(key).unwrap();
        let inheritor = takeover.inheritor_of(key).1;
        assert_eq!(new_root, inheritor);
    }

    #[test]
    fn route_with_hops_accumulates_stats() {
        let mut rng = DetRng::new(6);
        let mut sim = OverlaySim::new(1000, &mut rng);
        let from = sim.random_alive(&mut rng).unwrap();
        for i in 0..20 {
            sim.route_with_hops(from, Id::hash(&format!("f{i}")))
                .unwrap();
        }
        assert_eq!(sim.stats().hops.count(), 20);
        assert!(sim.stats().hops.mean() < 10.0);
    }

    #[test]
    fn proximity_selection_is_sorted() {
        let mut rng = DetRng::new(7);
        let sim = OverlaySim::new(100, &mut rng);
        let from = 0;
        let candidates: Vec<NodeRef> = (1..100).collect();
        let nearest = sim.closest_by_proximity(from, &candidates, 10);
        assert_eq!(nearest.len(), 10);
        for w in nearest.windows(2) {
            assert!(sim.proximity(from, w[0]) <= sim.proximity(from, w[1]));
        }
        // Every non-selected candidate is at least as far as the furthest selected.
        let max_sel = sim.proximity(from, *nearest.last().unwrap());
        for c in candidates.iter().filter(|c| !nearest.contains(c)) {
            assert!(sim.proximity(from, *c) >= max_sel - 1e-12);
        }
    }

    #[test]
    fn successors_and_k_closest_are_live() {
        let mut rng = DetRng::new(8);
        let mut sim = OverlaySim::new(300, &mut rng);
        sim.fail_random(100, &mut rng);
        let key = Id::hash("x");
        for n in sim.k_closest(key, 5) {
            assert!(sim.is_alive(n));
        }
        for n in sim.successors(key, 5) {
            assert!(sim.is_alive(n));
        }
    }

    #[test]
    fn leaf_set_from_sim() {
        let mut rng = DetRng::new(9);
        let sim = OverlaySim::new(64, &mut rng);
        let ls = sim.leaf_set(5, 8);
        assert_eq!(ls.len(), 8);
        assert!(!ls.contains(sim.node(5).id));
    }
}
