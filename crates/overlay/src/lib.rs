//! A Pastry-semantics structured p2p overlay simulator.
//!
//! The paper's storage system (and its PAST/CFS baselines) sit on top of the
//! Pastry distributed hash table: every participant gets a uniformly random
//! identifier, every stored object a key in the same circular space, and a key
//! is mapped to the live node with the numerically closest identifier.  This
//! crate reproduces the pieces of Pastry the evaluation depends on:
//!
//! * [`id::Id`] — the circular identifier space, digit arithmetic and hashing;
//! * [`ring::IdRing`] — live-membership ring with routing, replica-set, leaf-set
//!   and failure-takeover queries;
//! * [`routing`] — greedy prefix routing (hop counting) and proximity-aware
//!   routing tables;
//! * [`node`] — participants with synthetic network coordinates (the proximity
//!   metric behind Pastry's locality properties);
//! * [`network::OverlaySim`] — the node-population simulator with join/failure
//!   churn and traffic statistics, standing in for FreePastry's simulator mode.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod id;
pub mod network;
pub mod node;
pub mod ring;
pub mod routing;

pub use id::Id;
pub use network::{OverlaySim, OverlayStats};
pub use node::{Coord, NodeInfo};
pub use ring::{IdRing, LeafSet, NodeRef, Takeover};
pub use routing::RoutingTable;
