//! The circular identifier ring and its proximity queries.
//!
//! [`IdRing`] maintains the set of *live* node identifiers and answers the
//! queries the storage systems need:
//!
//! * `route(key)` — the live node numerically closest to a key (Pastry/PAST
//!   placement semantics, Section 4.1 of the paper);
//! * `k_closest(key, k)` — the `k` numerically closest live nodes (PAST replica
//!   placement and our leaf-set replica placement);
//! * `successors(key, k)` — the `k` nodes following the key clockwise (CFS
//!   places a block's replicas on the `k` successors of its key);
//! * `neighbors(id, l)` — the leaf set (l/2 counter-clockwise, l/2 clockwise);
//! * takeover queries describing which neighbour inherits which part of a failed
//!   node's key range (Section 4.4).

use crate::id::Id;
use std::collections::BTreeMap;

/// A reference to a node registered in the ring (index into the owner's node table).
pub type NodeRef = usize;

/// The set of live node identifiers, ordered on the circular id space.
#[derive(Debug, Clone, Default)]
pub struct IdRing {
    members: BTreeMap<Id, NodeRef>,
}

impl IdRing {
    /// Create an empty ring.
    pub fn new() -> Self {
        IdRing {
            members: BTreeMap::new(),
        }
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Insert a node. Returns `false` (and leaves the ring unchanged) if the id
    /// is already present — node ids must be unique.
    pub fn insert(&mut self, id: Id, node: NodeRef) -> bool {
        if self.members.contains_key(&id) {
            return false;
        }
        self.members.insert(id, node);
        true
    }

    /// Remove a node by id. Returns the node reference if it was present.
    pub fn remove(&mut self, id: Id) -> Option<NodeRef> {
        self.members.remove(&id)
    }

    /// True if the id is a live member.
    pub fn contains(&self, id: Id) -> bool {
        self.members.contains_key(&id)
    }

    /// Look up the node reference for an exact member id.
    pub fn get(&self, id: Id) -> Option<NodeRef> {
        self.members.get(&id).copied()
    }

    /// Iterate over `(id, node)` pairs in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, NodeRef)> + '_ {
        self.members.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate over members whose ids lie in the inclusive range `[lo, hi]`.
    ///
    /// Ranges are constructed from digit prefixes (see `Id::with_digit_floor` /
    /// `with_digit_ceil`) and therefore never wrap around the ring.
    pub fn iter_range(&self, lo: Id, hi: Id) -> impl Iterator<Item = (Id, NodeRef)> + '_ {
        self.members.range(lo..=hi).map(|(k, v)| (*k, *v))
    }

    /// The first member at or after `key` (wrapping to the smallest id).
    pub fn successor(&self, key: Id) -> Option<(Id, NodeRef)> {
        self.members
            .range(key..)
            .next()
            .or_else(|| self.members.iter().next())
            .map(|(k, v)| (*k, *v))
    }

    /// The last member strictly before `key` (wrapping to the largest id).
    pub fn predecessor(&self, key: Id) -> Option<(Id, NodeRef)> {
        self.members
            .range(..key)
            .next_back()
            .or_else(|| self.members.iter().next_back())
            .map(|(k, v)| (*k, *v))
    }

    /// The live node numerically closest to `key` on the circular space.
    ///
    /// Ties (exactly equidistant neighbours) resolve to the clockwise successor,
    /// which keeps the mapping deterministic.
    pub fn route(&self, key: Id) -> Option<(Id, NodeRef)> {
        if self.members.is_empty() {
            return None;
        }
        if let Some(node) = self.members.get(&key) {
            return Some((key, *node));
        }
        let succ = self.successor(key)?;
        let pred = self.predecessor(key)?;
        if succ.0 == pred.0 {
            return Some(succ);
        }
        let ds = key.distance(succ.0);
        let dp = key.distance(pred.0);
        Some(if ds <= dp { succ } else { pred })
    }

    /// The `k` live nodes numerically closest to `key`, ordered by circular distance.
    pub fn k_closest(&self, key: Id, k: usize) -> Vec<(Id, NodeRef)> {
        let n = self.members.len();
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        // Walk outward from the key in both directions simultaneously.
        let mut result = Vec::with_capacity(k);
        let mut up = self.successor(key);
        let mut down = self.predecessor(key);
        let mut taken = std::collections::BTreeSet::new();
        while result.len() < k {
            let du = up.map(|(id, _)| key.distance(id)).unwrap_or(u128::MAX);
            let dd = down.map(|(id, _)| key.distance(id)).unwrap_or(u128::MAX);
            let pick_up = du <= dd;
            let (id, node) = if pick_up { up.unwrap() } else { down.unwrap() }; // lint:allow(panic) -- picked side is non-None: du/dd are MAX only when that side is exhausted
            if taken.insert(id) {
                result.push((id, node));
            } else if taken.len() >= n {
                break;
            }
            if pick_up {
                up = self.next_clockwise(id);
                if let Some((uid, _)) = up {
                    if taken.contains(&uid) {
                        up = None;
                    }
                }
            } else {
                down = self.next_counter_clockwise(id);
                if let Some((did, _)) = down {
                    if taken.contains(&did) {
                        down = None;
                    }
                }
            }
            if up.is_none() && down.is_none() {
                break;
            }
        }
        result
    }

    /// The `k` members at or after `key`, clockwise with wrap-around, no duplicates.
    pub fn successors(&self, key: Id, k: usize) -> Vec<(Id, NodeRef)> {
        let k = k.min(self.members.len());
        let mut out = Vec::with_capacity(k);
        out.extend(self.members.range(key..).take(k).map(|(i, n)| (*i, *n)));
        if out.len() < k {
            let remaining = k - out.len();
            out.extend(self.members.iter().take(remaining).map(|(i, n)| (*i, *n)));
        }
        out
    }

    /// The member immediately clockwise of `id` (excluding `id` itself), wrapping.
    pub fn next_clockwise(&self, id: Id) -> Option<(Id, NodeRef)> {
        if self.members.len() <= 1 {
            return None;
        }
        self.members
            .range(Id(id.0.wrapping_add(1))..)
            .next()
            .or_else(|| self.members.iter().next())
            .map(|(k, v)| (*k, *v))
            .filter(|(k, _)| *k != id)
    }

    /// The member immediately counter-clockwise of `id` (excluding `id`), wrapping.
    pub fn next_counter_clockwise(&self, id: Id) -> Option<(Id, NodeRef)> {
        if self.members.len() <= 1 {
            return None;
        }
        self.members
            .range(..id)
            .next_back()
            .or_else(|| self.members.iter().next_back())
            .map(|(k, v)| (*k, *v))
            .filter(|(k, _)| *k != id)
    }

    /// The leaf set of a member: up to `l/2` counter-clockwise and `l/2` clockwise
    /// neighbours, nearest first within each side, excluding the member itself.
    pub fn leaf_set(&self, id: Id, l: usize) -> LeafSet {
        let half = l / 2;
        let mut cw = Vec::with_capacity(half);
        let mut cursor = id;
        for _ in 0..half {
            match self.next_clockwise(cursor) {
                Some((next, node)) if next != id && !cw.iter().any(|(i, _)| *i == next) => {
                    cw.push((next, node));
                    cursor = next;
                }
                _ => break,
            }
        }
        let mut ccw = Vec::with_capacity(half);
        cursor = id;
        for _ in 0..half {
            match self.next_counter_clockwise(cursor) {
                Some((next, node))
                    if next != id
                        && !ccw.iter().any(|(i, _)| *i == next)
                        && !cw.iter().any(|(i, _)| *i == next) =>
                {
                    ccw.push((next, node));
                    cursor = next;
                }
                _ => break,
            }
        }
        LeafSet {
            owner: id,
            clockwise: cw,
            counter_clockwise: ccw,
        }
    }

    /// Which keys move where when the node `failed` leaves the ring.
    ///
    /// In Pastry the identifier space mapped to a failed node is split between its
    /// two immediate neighbours: keys counter-clockwise of the failed id (up to the
    /// old midpoint with the predecessor) now map to the predecessor, keys clockwise
    /// map to the successor.  The returned [`Takeover`] describes both inheritors;
    /// they are the nodes that must regenerate the failed node's lost blocks.
    ///
    /// Must be called *before* removing the node from the ring.
    pub fn takeover_on_failure(&self, failed: Id) -> Option<Takeover> {
        if !self.contains(failed) || self.members.len() < 2 {
            return None;
        }
        let (pred, pred_node) = self.next_counter_clockwise(failed)?;
        let (succ, succ_node) = self.next_clockwise(failed)?;
        Some(Takeover {
            failed,
            predecessor: (pred, pred_node),
            successor: (succ, succ_node),
        })
    }
}

/// A member's leaf set: its nearest neighbours on each side of the ring.
#[derive(Debug, Clone)]
pub struct LeafSet {
    /// The node the leaf set belongs to.
    pub owner: Id,
    /// Clockwise neighbours, nearest first.
    pub clockwise: Vec<(Id, NodeRef)>,
    /// Counter-clockwise neighbours, nearest first.
    pub counter_clockwise: Vec<(Id, NodeRef)>,
}

impl LeafSet {
    /// All leaf-set members (both sides), nearest-first interleaved clockwise-first.
    pub fn all(&self) -> Vec<(Id, NodeRef)> {
        let mut out = Vec::with_capacity(self.clockwise.len() + self.counter_clockwise.len());
        let mut cw = self.clockwise.iter();
        let mut ccw = self.counter_clockwise.iter();
        loop {
            match (cw.next(), ccw.next()) {
                (None, None) => break,
                (a, b) => {
                    if let Some(x) = a {
                        out.push(*x);
                    }
                    if let Some(x) = b {
                        out.push(*x);
                    }
                }
            }
        }
        out
    }

    /// Number of members across both sides.
    pub fn len(&self) -> usize {
        self.clockwise.len() + self.counter_clockwise.len()
    }

    /// True if the leaf set is empty (singleton ring).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `id` is in the leaf set.
    pub fn contains(&self, id: Id) -> bool {
        self.clockwise.iter().any(|(i, _)| *i == id)
            || self.counter_clockwise.iter().any(|(i, _)| *i == id)
    }
}

/// Result of a node failure: which neighbours inherit the failed node's key range.
#[derive(Debug, Clone, Copy)]
pub struct Takeover {
    /// The id of the failed node.
    pub failed: Id,
    /// The immediate counter-clockwise neighbour (inherits the counter-clockwise half).
    pub predecessor: (Id, NodeRef),
    /// The immediate clockwise neighbour (inherits the clockwise half).
    pub successor: (Id, NodeRef),
}

impl Takeover {
    /// Which of the two inheritors a particular key (previously mapped to the
    /// failed node) now belongs to, by numerically-closest routing among the two.
    pub fn inheritor_of(&self, key: Id) -> (Id, NodeRef) {
        let dp = key.distance(self.predecessor.0);
        let ds = key.distance(self.successor.0);
        if ds <= dp {
            self.successor
        } else {
            self.predecessor
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerstripe_sim::DetRng;

    fn ring_with(ids: &[u128]) -> IdRing {
        let mut ring = IdRing::new();
        for (i, &v) in ids.iter().enumerate() {
            assert!(ring.insert(Id(v), i));
        }
        ring
    }

    #[test]
    fn insert_remove_contains() {
        let mut ring = ring_with(&[10, 20, 30]);
        assert_eq!(ring.len(), 3);
        assert!(ring.contains(Id(20)));
        assert!(!ring.insert(Id(20), 9), "duplicate ids rejected");
        assert_eq!(ring.remove(Id(20)), Some(1));
        assert!(!ring.contains(Id(20)));
        assert_eq!(ring.remove(Id(20)), None);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn route_picks_numerically_closest() {
        let ring = ring_with(&[100, 200, 300]);
        assert_eq!(ring.route(Id(100)).unwrap().0, Id(100));
        assert_eq!(ring.route(Id(140)).unwrap().0, Id(100));
        assert_eq!(ring.route(Id(160)).unwrap().0, Id(200));
        assert_eq!(
            ring.route(Id(150)).unwrap().0,
            Id(200),
            "tie resolves clockwise"
        );
        // Wrap-around: a key near the top of the space is closest to Id(100).
        assert_eq!(ring.route(Id(u128::MAX - 5)).unwrap().0, Id(100));
    }

    #[test]
    fn route_matches_brute_force() {
        let mut rng = DetRng::new(42);
        let ids: Vec<Id> = (0..200).map(|_| Id::random(&mut rng)).collect();
        let mut ring = IdRing::new();
        for (i, id) in ids.iter().enumerate() {
            ring.insert(*id, i);
        }
        for _ in 0..500 {
            let key = Id::random(&mut rng);
            let (got, _) = ring.route(key).unwrap();
            let best = ids
                .iter()
                .copied()
                .min_by_key(|id| (key.distance(*id), id.raw()))
                .unwrap();
            assert_eq!(
                key.distance(got),
                key.distance(best),
                "route distance must equal brute-force minimum"
            );
        }
    }

    #[test]
    fn successor_predecessor_wrap() {
        let ring = ring_with(&[100, 200, 300]);
        assert_eq!(ring.successor(Id(250)).unwrap().0, Id(300));
        assert_eq!(ring.successor(Id(301)).unwrap().0, Id(100), "wraps");
        assert_eq!(ring.predecessor(Id(250)).unwrap().0, Id(200));
        assert_eq!(ring.predecessor(Id(50)).unwrap().0, Id(300), "wraps");
    }

    #[test]
    fn k_closest_ordering_and_size() {
        let ring = ring_with(&[100, 200, 300, 400, 500]);
        let close = ring.k_closest(Id(310), 3);
        let ids: Vec<u128> = close.iter().map(|(i, _)| i.raw()).collect();
        assert_eq!(ids, vec![300, 400, 200]);
        assert_eq!(ring.k_closest(Id(310), 10).len(), 5, "capped at ring size");
        assert!(ring.k_closest(Id(310), 0).is_empty());
    }

    #[test]
    fn successors_wrap_and_dedup() {
        let ring = ring_with(&[100, 200, 300]);
        let succ = ring.successors(Id(250), 3);
        let ids: Vec<u128> = succ.iter().map(|(i, _)| i.raw()).collect();
        assert_eq!(ids, vec![300, 100, 200]);
        assert_eq!(ring.successors(Id(0), 5).len(), 3);
    }

    #[test]
    fn clockwise_and_counter_clockwise_neighbours() {
        let ring = ring_with(&[100, 200, 300]);
        assert_eq!(ring.next_clockwise(Id(100)).unwrap().0, Id(200));
        assert_eq!(ring.next_clockwise(Id(300)).unwrap().0, Id(100));
        assert_eq!(ring.next_counter_clockwise(Id(100)).unwrap().0, Id(300));
        assert_eq!(ring.next_counter_clockwise(Id(300)).unwrap().0, Id(200));
        let singleton = ring_with(&[42]);
        assert!(singleton.next_clockwise(Id(42)).is_none());
    }

    #[test]
    fn leaf_set_sizes_and_membership() {
        let ring = ring_with(&[10, 20, 30, 40, 50, 60, 70, 80]);
        let ls = ring.leaf_set(Id(40), 4);
        assert_eq!(ls.len(), 4);
        assert!(ls.contains(Id(50)) && ls.contains(Id(60)));
        assert!(ls.contains(Id(30)) && ls.contains(Id(20)));
        assert!(!ls.contains(Id(40)));
        assert!(!ls.contains(Id(80)));
        assert_eq!(ls.all().len(), 4);
        // Small ring: leaf set never duplicates or includes the owner.
        let small = ring_with(&[1, 2, 3]);
        let ls = small.leaf_set(Id(2), 8);
        assert_eq!(ls.len(), 2);
        assert!(ls.contains(Id(1)) && ls.contains(Id(3)));
    }

    #[test]
    fn takeover_assigns_keys_to_nearest_survivor() {
        let ring = ring_with(&[100, 200, 300]);
        let t = ring.takeover_on_failure(Id(200)).unwrap();
        assert_eq!(t.predecessor.0, Id(100));
        assert_eq!(t.successor.0, Id(300));
        // A key that used to map to 200 but is nearer 100 goes to the predecessor.
        assert_eq!(t.inheritor_of(Id(180)).0, Id(100));
        assert_eq!(t.inheritor_of(Id(260)).0, Id(300));
        assert!(ring.takeover_on_failure(Id(999)).is_none());
    }

    #[test]
    fn empty_ring_queries() {
        let ring = IdRing::new();
        assert!(ring.is_empty());
        assert!(ring.route(Id(1)).is_none());
        assert!(ring.successor(Id(1)).is_none());
        assert!(ring.k_closest(Id(1), 3).is_empty());
    }
}
