//! Pastry prefix routing: hop-by-hop path simulation and routing tables.
//!
//! The storage experiments mostly need only the *endpoint* of a lookup (the node
//! a key maps to, provided by [`crate::ring::IdRing::route`]).  Two things need
//! more:
//!
//! * the lookup-overhead accounting of the Condor case study (Table 4) charges a
//!   per-lookup cost that grows with the number of overlay hops, so
//!   [`route_path`] simulates the greedy prefix routing Pastry performs and
//!   returns the full hop sequence;
//! * the multicast tree of Section 4.4.1 is built from the *proximity-aware
//!   routing table*, so [`RoutingTable`] materialises a node's table with
//!   proximity-based entry selection.

use crate::id::{Id, DIGIT_BITS, NUM_DIGITS};
use crate::node::NodeInfo;
use crate::ring::{IdRing, NodeRef};

/// Number of entries per routing-table row (`2^b - 1` foreign digits).
pub const ROW_ENTRIES: usize = (1 << DIGIT_BITS) - 1;

/// Simulate Pastry's greedy prefix routing from `from` towards `key`.
///
/// At each hop the current node forwards to a live node whose id shares at least
/// one more leading digit with the key than the current node does (found through
/// a range query on the id ring, which is exactly the set of nodes a correctly
/// populated routing table would contain an entry for).  If no such node exists,
/// routing falls through to the numerically-closest rule on the leaf set, as in
/// Pastry.  Returns the sequence of node ids visited, starting with `from` and
/// ending at the key's root (the node returned by `ring.route(key)`).
pub fn route_path(ring: &IdRing, from: Id, key: Id) -> Vec<Id> {
    let mut path = vec![from];
    let Some((root, _)) = ring.route(key) else {
        return path;
    };
    let mut current = from;
    // NUM_DIGITS is a hard upper bound on prefix-improving hops; the +2 allows the
    // final numerical-closeness correction hops.
    for _ in 0..(NUM_DIGITS + 2) {
        if current == root {
            break;
        }
        let shared = current.shared_prefix_digits(key);
        let next = next_hop(ring, current, key, shared);
        match next {
            Some(n) if n != current => {
                path.push(n);
                current = n;
            }
            _ => {
                // No better prefix match exists; deliver to the root directly
                // (leaf-set hop).
                if current != root {
                    path.push(root);
                }
                break;
            }
        }
    }
    path
}

/// Number of overlay hops (edges) for a lookup of `key` starting at `from`.
pub fn route_hops(ring: &IdRing, from: Id, key: Id) -> usize {
    route_path(ring, from, key).len() - 1
}

/// Find a live node sharing at least `shared + 1` leading digits with `key`,
/// numerically closest to `key` among them.
fn next_hop(ring: &IdRing, current: Id, key: Id, shared: u32) -> Option<Id> {
    if shared >= NUM_DIGITS {
        return None;
    }
    // The candidates for the routing-table entry at row `shared` are exactly the
    // live ids in the contiguous range sharing the first `shared + 1` digits of key.
    let digit = key.digit(shared);
    let lo = key.with_digit_floor(shared, digit);
    let hi = key.with_digit_ceil(shared, digit);
    let mut best: Option<Id> = None;
    let mut best_dist = u128::MAX;
    for (id, _) in ring.iter_range(lo, hi) {
        if id == current {
            continue;
        }
        let d = key.distance(id);
        if d < best_dist {
            best_dist = d;
            best = Some(id);
        }
    }
    best
}

/// One node's Pastry routing table.
///
/// Row `r` holds, for each digit value `d` different from the node's own digit at
/// position `r`, a node whose id shares the first `r` digits with the owner and
/// has digit `d` at position `r` — selected to be the *proximity-closest* such
/// node, matching Pastry's locality property that the paper's multicast tree
/// construction leans on.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    /// Owner node id.
    pub owner: Id,
    /// `rows[r][d]` is the entry for digit `d` at row `r` (None when no such node
    /// exists or `d` is the owner's own digit).
    pub rows: Vec<Vec<Option<(Id, NodeRef)>>>,
}

impl RoutingTable {
    /// Build the routing table of `owner` over the current live membership.
    ///
    /// `nodes` provides coordinates for the proximity-aware entry choice.
    /// `max_rows` bounds the number of rows materialised (the top rows are the
    /// only ones with many candidates; deeper rows are almost always empty in a
    /// 10 000-node network, so callers typically pass 8–16).
    pub fn build(owner: Id, ring: &IdRing, nodes: &[NodeInfo], max_rows: u32) -> Self {
        let owner_coord = nodes
            .iter()
            .find(|n| n.id == owner)
            .map(|n| n.coord)
            .unwrap_or_default();
        let rows_count = max_rows.min(NUM_DIGITS);
        let mut rows = Vec::with_capacity(rows_count as usize);
        for r in 0..rows_count {
            let own_digit = owner.digit(r);
            let mut row: Vec<Option<(Id, NodeRef)>> = vec![None; 1 << DIGIT_BITS];
            for d in 0..(1u8 << DIGIT_BITS) {
                if d == own_digit {
                    continue;
                }
                let lo = owner.with_digit_floor(r, d);
                let hi = owner.with_digit_ceil(r, d);
                let mut best: Option<(Id, NodeRef)> = None;
                let mut best_prox = f64::INFINITY;
                for (id, node_ref) in ring.iter_range(lo, hi) {
                    let prox = nodes
                        .get(node_ref)
                        .map(|n| owner_coord.distance(&n.coord))
                        .unwrap_or(f64::INFINITY);
                    if prox < best_prox {
                        best_prox = prox;
                        best = Some((id, node_ref));
                    }
                }
                row[d as usize] = best;
            }
            rows.push(row);
        }
        RoutingTable { owner, rows }
    }

    /// All populated entries of the table, flattened.
    pub fn entries(&self) -> Vec<(Id, NodeRef)> {
        self.rows
            .iter()
            .flat_map(|row| row.iter().flatten().copied())
            .collect()
    }

    /// The entry used to route towards `key` (the row for the shared-prefix
    /// length, column for the key's next digit), if populated.
    pub fn entry_towards(&self, key: Id) -> Option<(Id, NodeRef)> {
        let shared = self.owner.shared_prefix_digits(key);
        let row = self.rows.get(shared as usize)?;
        row.get(key.digit(shared) as usize).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Coord;
    use peerstripe_sim::DetRng;

    fn build_network(n: usize, seed: u64) -> (IdRing, Vec<NodeInfo>) {
        let mut rng = DetRng::new(seed);
        let mut ring = IdRing::new();
        let mut nodes = Vec::with_capacity(n);
        while nodes.len() < n {
            let id = Id::random(&mut rng);
            if ring.insert(id, nodes.len()) {
                nodes.push(NodeInfo::new(id, Coord::random(&mut rng)));
            }
        }
        (ring, nodes)
    }

    #[test]
    fn route_path_terminates_at_root() {
        let (ring, nodes) = build_network(500, 1);
        let mut rng = DetRng::new(2);
        for _ in 0..100 {
            let from = nodes[rng.index(nodes.len())].id;
            let key = Id::random(&mut rng);
            let path = route_path(&ring, from, key);
            let (root, _) = ring.route(key).unwrap();
            assert_eq!(*path.last().unwrap(), root);
            assert_eq!(path[0], from);
        }
    }

    #[test]
    fn route_hops_scale_logarithmically() {
        // Pastry expects ~log_16(N) hops; for N = 2000 that is ~2.7.  Allow slack
        // but ensure it is far below linear.
        let (ring, nodes) = build_network(2000, 3);
        let mut rng = DetRng::new(4);
        let mut total = 0usize;
        let samples = 200;
        for _ in 0..samples {
            let from = nodes[rng.index(nodes.len())].id;
            let key = Id::random(&mut rng);
            total += route_hops(&ring, from, key);
        }
        let avg = total as f64 / samples as f64;
        assert!(avg > 0.5, "average hops {avg} too low");
        assert!(
            avg < 8.0,
            "average hops {avg} should be logarithmic, not linear"
        );
    }

    #[test]
    fn route_to_self_key_is_zero_hops() {
        let (ring, nodes) = build_network(100, 5);
        let from = nodes[0].id;
        assert_eq!(route_hops(&ring, from, from), 0);
    }

    #[test]
    fn path_hops_share_growing_prefix_until_delivery() {
        let (ring, nodes) = build_network(1000, 6);
        let mut rng = DetRng::new(7);
        for _ in 0..50 {
            let from = nodes[rng.index(nodes.len())].id;
            let key = Id::random(&mut rng);
            let path = route_path(&ring, from, key);
            // Prefix length must be non-decreasing except possibly the final
            // leaf-set/numerical hop.
            let prefixes: Vec<u32> = path.iter().map(|id| id.shared_prefix_digits(key)).collect();
            for w in prefixes.windows(2).take(prefixes.len().saturating_sub(2)) {
                assert!(
                    w[1] >= w[0],
                    "prefix should not shrink mid-route: {prefixes:?}"
                );
            }
        }
    }

    #[test]
    fn routing_table_entries_share_required_prefix() {
        let (ring, nodes) = build_network(800, 8);
        let owner = nodes[13].id;
        let table = RoutingTable::build(owner, &ring, &nodes, 8);
        for (r, row) in table.rows.iter().enumerate() {
            for (d, entry) in row.iter().enumerate() {
                if let Some((id, _)) = entry {
                    assert!(id.shared_prefix_digits(owner) >= r as u32);
                    assert_eq!(id.digit(r as u32) as usize, d);
                    assert_ne!(*id, owner);
                }
            }
        }
        assert!(!table.entries().is_empty());
    }

    #[test]
    fn routing_table_prefers_proximate_entries() {
        let (ring, nodes) = build_network(800, 9);
        let owner = nodes[7].id;
        let owner_coord = nodes[7].coord;
        let table = RoutingTable::build(owner, &ring, &nodes, 2);
        // For row 0 every live node is a candidate for its top-digit slot, so the
        // chosen entry must be the proximity-minimal node with that digit.
        let row0 = &table.rows[0];
        for d in 0..16u8 {
            if d == owner.digit(0) {
                continue;
            }
            if let Some((chosen, chosen_ref)) = row0[d as usize] {
                let best = nodes
                    .iter()
                    .filter(|n| n.id.digit(0) == d && n.id != owner)
                    .map(|n| owner_coord.distance(&n.coord))
                    .fold(f64::INFINITY, f64::min);
                let got = owner_coord.distance(&nodes[chosen_ref].coord);
                assert!(
                    (got - best).abs() < 1e-12,
                    "slot {d}: chosen {chosen} at {got}, best {best}"
                );
            }
        }
    }

    #[test]
    fn entry_towards_routes_by_prefix() {
        let (ring, nodes) = build_network(500, 10);
        let owner = nodes[0].id;
        let table = RoutingTable::build(owner, &ring, &nodes, 8);
        let mut rng = DetRng::new(11);
        for _ in 0..50 {
            let key = Id::random(&mut rng);
            if let Some((next, _)) = table.entry_towards(key) {
                assert!(next.shared_prefix_digits(key) > owner.shared_prefix_digits(key));
            }
        }
    }
}
