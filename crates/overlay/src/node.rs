//! Overlay participants and the synthetic proximity metric.
//!
//! Pastry's routing table is *proximity aware*: among the candidate entries for a
//! routing-table slot it prefers the one closest by a network proximity metric
//! (e.g. round-trip time).  The paper exploits this to build locality-aware
//! multicast trees for replica creation (Section 4.4.1).  The simulator models
//! proximity by placing every node at a random coordinate on a unit torus and
//! using wrap-around Euclidean distance, a standard stand-in for Internet
//! latency in overlay simulations.

use crate::id::Id;
use serde::{Deserialize, Serialize};

/// A synthetic network coordinate on the unit torus.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Coord {
    /// Horizontal position in `[0, 1)`.
    pub x: f64,
    /// Vertical position in `[0, 1)`.
    pub y: f64,
}

impl Coord {
    /// Create a coordinate, wrapping values into `[0, 1)`.
    pub fn new(x: f64, y: f64) -> Self {
        Coord {
            x: x.rem_euclid(1.0),
            y: y.rem_euclid(1.0),
        }
    }

    /// Draw a uniformly random coordinate.
    pub fn random(rng: &mut peerstripe_sim::DetRng) -> Self {
        Coord {
            x: rng.next_f64(),
            y: rng.next_f64(),
        }
    }

    /// Torus (wrap-around) Euclidean distance — the proximity metric.
    pub fn distance(&self, other: &Coord) -> f64 {
        let dx = (self.x - other.x).abs();
        let dy = (self.y - other.y).abs();
        let dx = dx.min(1.0 - dx);
        let dy = dy.min(1.0 - dy);
        (dx * dx + dy * dy).sqrt()
    }

    /// Map the proximity distance onto a one-way network latency in milliseconds.
    ///
    /// The unit-torus diameter (≈ 0.707) maps to ~100 ms, a wide-area spread;
    /// a small constant floor models the local stack/switch latency.
    pub fn latency_ms(&self, other: &Coord) -> f64 {
        0.5 + self.distance(other) * 140.0
    }
}

/// State of one overlay participant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeInfo {
    /// The node's overlay identifier.
    pub id: Id,
    /// Synthetic network coordinate used for proximity-aware decisions.
    pub coord: Coord,
    /// Whether the node is currently live (participating).
    pub alive: bool,
}

impl NodeInfo {
    /// Create a live node.
    pub fn new(id: Id, coord: Coord) -> Self {
        NodeInfo {
            id,
            coord,
            alive: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerstripe_sim::DetRng;

    #[test]
    fn coord_wraps_into_unit_square() {
        let c = Coord::new(1.25, -0.25);
        assert!((c.x - 0.25).abs() < 1e-12);
        assert!((c.y - 0.75).abs() < 1e-12);
    }

    #[test]
    fn torus_distance_wraps() {
        let a = Coord::new(0.05, 0.5);
        let b = Coord::new(0.95, 0.5);
        assert!((a.distance(&b) - 0.1).abs() < 1e-12, "wraps the short way");
        assert_eq!(a.distance(&a), 0.0);
        // Symmetry.
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-15);
    }

    #[test]
    fn distance_bounded_by_torus_diameter() {
        let mut rng = DetRng::new(1);
        for _ in 0..1000 {
            let a = Coord::random(&mut rng);
            let b = Coord::random(&mut rng);
            let d = a.distance(&b);
            assert!((0.0..=0.7072).contains(&d));
        }
    }

    #[test]
    fn latency_has_floor_and_grows_with_distance() {
        let a = Coord::new(0.0, 0.0);
        let near = Coord::new(0.01, 0.0);
        let far = Coord::new(0.5, 0.5);
        assert!(a.latency_ms(&a) >= 0.5);
        assert!(a.latency_ms(&near) < a.latency_ms(&far));
    }

    #[test]
    fn node_info_starts_alive() {
        let n = NodeInfo::new(Id(7), Coord::new(0.1, 0.2));
        assert!(n.alive);
        assert_eq!(n.id, Id(7));
    }
}
