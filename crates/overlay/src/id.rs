//! Node and object identifiers in the structured overlay.
//!
//! Pastry (and PAST/CFS on top of it) assigns every node a uniformly distributed
//! identifier and every stored object a key in the same circular space; a key is
//! mapped to the live node whose identifier is *numerically closest* to it.
//! The paper derives keys with SHA-1 (160 bits).  For the simulator we use a
//! 128-bit space with a non-cryptographic but well-mixed hash: the experiments
//! only rely on uniform distribution and collision-freeness of the mapping, not
//! on cryptographic strength, and 128 bits keeps circular arithmetic on native
//! integers.  This substitution is recorded in DESIGN.md.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of bits in an identifier.
pub const ID_BITS: u32 = 128;

/// Pastry digit width `b`; digits are base `2^b` (16, i.e. hex digits).
pub const DIGIT_BITS: u32 = 4;

/// Number of digits in an identifier (`ID_BITS / DIGIT_BITS`).
pub const NUM_DIGITS: u32 = ID_BITS / DIGIT_BITS;

/// A 128-bit identifier in the circular overlay id space.
///
/// Used both for node identifiers (`nodeId`) and object keys (chunk names,
/// encoded-block names, CAT names).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Id(pub u128);

impl Id {
    /// The zero identifier.
    pub const ZERO: Id = Id(0);
    /// The maximum identifier.
    pub const MAX: Id = Id(u128::MAX);

    /// Construct from a raw value.
    #[inline]
    pub const fn from_raw(v: u128) -> Self {
        Id(v)
    }

    /// Raw 128-bit value.
    #[inline]
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// Hash an arbitrary name into the id space.
    ///
    /// This stands in for the SHA-1 of the paper: a double-width
    /// multiply-xorshift construction (two independent 64-bit lanes seeded with
    /// distinct offsets) giving uniform, deterministic 128-bit keys.
    pub fn hash(name: &str) -> Id {
        Id::hash_bytes(name.as_bytes())
    }

    /// Hash arbitrary bytes into the id space.
    pub fn hash_bytes(data: &[u8]) -> Id {
        #[inline]
        fn mix(mut h: u64) -> u64 {
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
            h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
            h ^= h >> 33;
            h
        }
        let mut h1: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut h2: u64 = 0xC2B2_AE3D_27D4_EB4F;
        for chunk in data.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            let v = u64::from_le_bytes(buf);
            h1 = mix(h1 ^ v).rotate_left(27).wrapping_mul(0x1000_0000_01B3);
            h2 = mix(h2.wrapping_add(v)).rotate_left(31) ^ h1;
        }
        h1 = mix(h1 ^ data.len() as u64);
        h2 = mix(h2 ^ (data.len() as u64).rotate_left(32));
        Id(((h1 as u128) << 64) | h2 as u128)
    }

    /// Draw a uniformly random identifier (used for node id assignment).
    pub fn random(rng: &mut peerstripe_sim::DetRng) -> Id {
        Id(((rng.next_u64() as u128) << 64) | rng.next_u64() as u128)
    }

    /// Fold the identifier into a 64-bit RNG seed, for deterministic
    /// per-object draws keyed on an object's id (both repair re-placement
    /// paths derive their target-selection stream this way).
    #[inline]
    pub fn seed(self) -> u64 {
        (self.0 as u64) ^ ((self.0 >> 64) as u64)
    }

    /// Circular distance between two identifiers (the shorter way around the ring).
    #[inline]
    pub fn distance(self, other: Id) -> u128 {
        let d = self.0.wrapping_sub(other.0);
        let e = other.0.wrapping_sub(self.0);
        d.min(e)
    }

    /// Clockwise (increasing-id, wrapping) distance from `self` to `other`.
    #[inline]
    pub fn clockwise_distance(self, other: Id) -> u128 {
        other.0.wrapping_sub(self.0)
    }

    /// The `i`-th digit (base `2^DIGIT_BITS`), counting from the most significant
    /// digit (`i = 0`) — the order in which Pastry prefix routing consumes digits.
    #[inline]
    pub fn digit(self, i: u32) -> u8 {
        debug_assert!(i < NUM_DIGITS);
        let shift = ID_BITS - DIGIT_BITS * (i + 1);
        ((self.0 >> shift) & ((1 << DIGIT_BITS) - 1) as u128) as u8
    }

    /// Length (in digits) of the shared most-significant-digit prefix of two ids.
    pub fn shared_prefix_digits(self, other: Id) -> u32 {
        let x = self.0 ^ other.0;
        if x == 0 {
            return NUM_DIGITS;
        }
        let lz = x.leading_zeros();
        lz / DIGIT_BITS
    }

    /// Replace the digit at position `i` with `d`, zeroing all less significant
    /// digits.  Used to compute the lower bound of the id range whose members
    /// share the first `i` digits with `self` and have digit `d` at position `i`.
    pub fn with_digit_floor(self, i: u32, d: u8) -> Id {
        debug_assert!(i < NUM_DIGITS);
        debug_assert!(u32::from(d) < (1 << DIGIT_BITS));
        let shift = ID_BITS - DIGIT_BITS * (i + 1);
        let keep_mask: u128 = if i == 0 {
            0
        } else {
            !0u128 << (ID_BITS - DIGIT_BITS * i)
        };
        Id((self.0 & keep_mask) | ((d as u128) << shift))
    }

    /// The inclusive upper bound of the id range described by
    /// [`Id::with_digit_floor`]: same prefix and digit, all remaining digits maxed.
    pub fn with_digit_ceil(self, i: u32, d: u8) -> Id {
        let floor = self.with_digit_floor(i, d).0;
        let shift = ID_BITS - DIGIT_BITS * (i + 1);
        let fill: u128 = if shift == 0 { 0 } else { (1u128 << shift) - 1 };
        Id(floor | fill)
    }

    /// Midpoint of the clockwise arc from `self` to `other`; used when a failed
    /// node's key range is split between its two immediate neighbours.
    pub fn midpoint_clockwise(self, other: Id) -> Id {
        let span = self.clockwise_distance(other);
        Id(self.0.wrapping_add(span / 2))
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({:032x})", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerstripe_sim::DetRng;

    #[test]
    fn hash_is_deterministic_and_spread() {
        assert_eq!(Id::hash("file_1_0"), Id::hash("file_1_0"));
        assert_ne!(Id::hash("file_1_0"), Id::hash("file_1_1"));
        assert_ne!(Id::hash("a"), Id::hash("b"));
        // Uniformity smoke test: top digit should take many values across keys.
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            seen.insert(Id::hash(&format!("chunk_{i}")).digit(0));
        }
        assert!(
            seen.len() >= 14,
            "top digits should be well spread, got {}",
            seen.len()
        );
    }

    #[test]
    fn hash_collision_free_over_many_names() {
        let mut set = std::collections::HashSet::new();
        for i in 0..100_000u32 {
            set.insert(Id::hash(&format!("testImageFile_{i}_3")));
        }
        assert_eq!(set.len(), 100_000);
    }

    #[test]
    fn circular_distance_symmetry_and_wrap() {
        let a = Id(10);
        let b = Id(u128::MAX - 5);
        assert_eq!(a.distance(b), 16);
        assert_eq!(b.distance(a), 16);
        assert_eq!(a.distance(a), 0);
        assert_eq!(Id(0).distance(Id(u128::MAX / 2)), u128::MAX / 2);
    }

    #[test]
    fn clockwise_distance_wraps() {
        let a = Id(u128::MAX - 1);
        let b = Id(3);
        assert_eq!(a.clockwise_distance(b), 5);
        assert_eq!(b.clockwise_distance(a), u128::MAX - 4);
    }

    #[test]
    fn digits_round_trip() {
        let id = Id(0xABCD_EF01_2345_6789_ABCD_EF01_2345_6789);
        assert_eq!(id.digit(0), 0xA);
        assert_eq!(id.digit(1), 0xB);
        assert_eq!(id.digit(7), 0x1);
        assert_eq!(id.digit(NUM_DIGITS - 1), 0x9);
    }

    #[test]
    fn shared_prefix_digits_cases() {
        let a = Id(0xAB00_0000_0000_0000_0000_0000_0000_0000);
        let b = Id(0xAB10_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.shared_prefix_digits(b), 2);
        assert_eq!(a.shared_prefix_digits(a), NUM_DIGITS);
        let c = Id(0x0B00_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.shared_prefix_digits(c), 0);
    }

    #[test]
    fn digit_floor_and_ceil_bound_the_range() {
        let key = Id(0xABCD_0000_0000_0000_0000_0000_0000_1234);
        let floor = key.with_digit_floor(2, 0x7);
        let ceil = key.with_digit_ceil(2, 0x7);
        assert_eq!(floor.digit(0), 0xA);
        assert_eq!(floor.digit(1), 0xB);
        assert_eq!(floor.digit(2), 0x7);
        assert!(floor <= ceil);
        // Every id in [floor, ceil] shares the 3-digit prefix A,B,7.
        assert_eq!(ceil.digit(2), 0x7);
        assert_eq!(ceil.0 - floor.0, (1u128 << (ID_BITS - 12)) - 1);
        // Digit position 0 keeps nothing of the original id.
        let f0 = key.with_digit_floor(0, 0x3);
        assert_eq!(f0.digit(0), 0x3);
        assert_eq!(f0.0 & ((1u128 << 124) - 1), 0);
    }

    #[test]
    fn midpoint_splits_arc() {
        let a = Id(100);
        let b = Id(200);
        assert_eq!(a.midpoint_clockwise(b), Id(150));
        // Wrapping arc.
        let c = Id(u128::MAX - 9);
        let d = Id(10);
        let mid = c.midpoint_clockwise(d);
        // The clockwise arc from MAX-9 to 10 spans 20 ids; its midpoint wraps to 0.
        assert_eq!(mid, Id((u128::MAX - 9).wrapping_add(10)));
    }

    #[test]
    fn random_ids_unique() {
        let mut rng = DetRng::new(5);
        let mut set = std::collections::HashSet::new();
        for _ in 0..10_000 {
            set.insert(Id::random(&mut rng));
        }
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn display_and_debug() {
        let id = Id(0xAB);
        assert_eq!(format!("{id}"), format!("{:032x}", 0xABu32));
        assert!(format!("{id:?}").starts_with("Id("));
    }
}
