//! PAST-style whole-file placement (Rowstron & Druschel, SOSP'01), as compared
//! against in the paper.
//!
//! PAST stores each file *in its entirety* on the node whose identifier is
//! numerically closest to the file's key, with `k` replicas on the key's
//! neighbours.  When the chosen node lacks space, PAST retries by rehashing the
//! file name with a new salt, which maps the file to a different node
//! (Section 3 of the paper).  The consequence the paper highlights: no file
//! larger than the free space of some single node can ever be stored, and as
//! utilization grows the retry budget is exhausted more and more often.

use peerstripe_core::{
    BlockPlacement, ChunkPlacement, FileManifest, ManifestStore, ObjectName, StorageCluster,
    StorageSystem, StoreMetrics, StoreOutcome,
};
use peerstripe_sim::ByteSize;
use peerstripe_trace::FileRecord;
use serde::{Deserialize, Serialize};

/// Configuration of the PAST baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PastConfig {
    /// Number of salted retries after the first placement attempt fails.
    pub retries: u32,
    /// Total number of copies stored (primary + leaf-set replicas).  The paper's
    /// simulations use a replication factor of 1.
    pub replicas: usize,
    /// Whether per-file manifests are recorded.
    pub track_manifests: bool,
}

impl Default for PastConfig {
    fn default() -> Self {
        PastConfig {
            retries: 5,
            replicas: 1,
            track_manifests: true,
        }
    }
}

/// The PAST baseline storage system.
pub struct Past {
    cluster: StorageCluster,
    config: PastConfig,
    manifests: ManifestStore,
    metrics: StoreMetrics,
}

impl Past {
    /// Create a PAST instance over an existing cluster.
    pub fn new(cluster: StorageCluster, config: PastConfig) -> Self {
        Past {
            cluster,
            config,
            manifests: ManifestStore::new(),
            metrics: StoreMetrics::new(),
        }
    }

    /// The instance's configuration.
    pub fn config(&self) -> &PastConfig {
        &self.config
    }

    /// Consume the system and return its cluster.
    pub fn into_cluster(self) -> StorageCluster {
        self.cluster
    }
}

impl StorageSystem for Past {
    fn name(&self) -> &str {
        "PAST"
    }

    fn store_file(&mut self, file: &FileRecord) -> StoreOutcome {
        for salt in 0..=self.config.retries {
            let name = ObjectName::whole_file(&file.name, salt);
            let Some((primary, report)) = self.cluster.get_capacity(name.key()) else {
                break;
            };
            if report < file.size {
                continue;
            }
            // Primary copy plus replicas on the numerically closest neighbours.
            let targets = self
                .cluster
                .overlay()
                .ring()
                .k_closest(name.key(), self.config.replicas.max(1));
            let mut placed: Vec<BlockPlacement> = Vec::new();
            for (i, (_, node)) in targets.into_iter().enumerate() {
                let key = ObjectName::whole_file(format!("{}#rep{i}", file.name), salt).key();
                let ok = self
                    .cluster
                    .store_object_at(node, key, name.clone(), file.size, None)
                    .is_ok();
                if ok {
                    placed.push(BlockPlacement {
                        name: name.clone(),
                        node,
                        size: file.size,
                        domain: None,
                    });
                } else if i == 0 {
                    // The primary itself refused (space consumed since the
                    // probe): treat the attempt like a failed probe and re-salt.
                    placed.clear();
                    break;
                }
                // A refused replica is tolerated: PAST degrades the replication
                // factor rather than failing the insert.
            }
            if placed.is_empty() {
                continue;
            }
            debug_assert_eq!(placed[0].node, primary);
            let placed_bytes: ByteSize = placed.iter().map(|p| p.size).sum();
            self.metrics
                .record_success(file.size, &[file.size], placed_bytes);
            if self.config.track_manifests {
                self.manifests.insert(FileManifest {
                    name: file.name.clone(),
                    size: file.size,
                    chunks: vec![ChunkPlacement {
                        chunk: 0,
                        size: file.size,
                        blocks: placed,
                        min_blocks_needed: 1,
                    }],
                    cat_nodes: Vec::new(),
                });
            }
            return StoreOutcome::Stored;
        }
        self.metrics.record_failure(file.size);
        StoreOutcome::Failed {
            reason: format!(
                "no node with {} free space after {} salted retries",
                file.size, self.config.retries
            ),
        }
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn cluster(&self) -> &StorageCluster {
        &self.cluster
    }

    fn cluster_mut(&mut self) -> &mut StorageCluster {
        &mut self.cluster
    }

    fn manifest(&self, name: &str) -> Option<&FileManifest> {
        self.manifests.get(name)
    }

    fn manifests(&self) -> &ManifestStore {
        &self.manifests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerstripe_core::ClusterConfig;
    use peerstripe_sim::DetRng;
    use peerstripe_trace::CapacityModel;

    fn cluster(nodes: usize, capacity: ByteSize, seed: u64) -> StorageCluster {
        let mut rng = DetRng::new(seed);
        ClusterConfig {
            nodes,
            capacity: CapacityModel::Fixed(capacity),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng)
    }

    #[test]
    fn stores_whole_files_on_single_nodes() {
        let mut past = Past::new(cluster(50, ByteSize::gb(1), 1), PastConfig::default());
        assert!(past
            .store_file(&FileRecord::new("a", ByteSize::mb(400)))
            .is_stored());
        let manifest = past.manifest("a").unwrap();
        assert_eq!(manifest.chunks.len(), 1);
        assert_eq!(manifest.chunks[0].blocks.len(), 1);
        assert_eq!(manifest.chunks[0].blocks[0].size, ByteSize::mb(400));
        assert!(past.is_file_available("a"));
    }

    #[test]
    fn cannot_store_files_larger_than_a_node() {
        // The defining limitation the paper calls out: a file bigger than every
        // individual node's capacity can never be stored, even though the
        // aggregate capacity is ample.
        let mut past = Past::new(cluster(50, ByteSize::gb(1), 2), PastConfig::default());
        let outcome = past.store_file(&FileRecord::new("huge", ByteSize::gb(4)));
        assert!(!outcome.is_stored());
        assert_eq!(past.metrics().files_failed, 1);
    }

    #[test]
    fn retries_rehash_to_other_nodes() {
        // One nearly full node plus roomy others: the salted retry must find a
        // node with space even if the first attempt lands on the full one.
        let mut past = Past::new(cluster(10, ByteSize::gb(1), 3), PastConfig::default());
        // Fill up a few nodes.
        for i in 0..6 {
            let _ = past.store_file(&FileRecord::new(format!("filler-{i}"), ByteSize::mb(900)));
        }
        let stored_before = past.metrics().files_attempted - past.metrics().files_failed;
        assert!(stored_before > 0);
        // This store may need retries; with 6 attempts over 10 nodes it should
        // find one of the remaining roomy nodes.
        let outcome = past.store_file(&FileRecord::new("late", ByteSize::mb(500)));
        assert!(outcome.is_stored());
    }

    #[test]
    fn replication_places_extra_copies() {
        let mut past = Past::new(
            cluster(30, ByteSize::gb(1), 4),
            PastConfig {
                replicas: 3,
                ..PastConfig::default()
            },
        );
        assert!(past
            .store_file(&FileRecord::new("r", ByteSize::mb(100)))
            .is_stored());
        let manifest = past.manifest("r").unwrap();
        assert_eq!(manifest.chunks[0].blocks.len(), 3);
        let nodes: std::collections::HashSet<_> =
            manifest.chunks[0].blocks.iter().map(|b| b.node).collect();
        assert_eq!(nodes.len(), 3, "replicas on distinct nodes");
        // Any single replica suffices.
        assert_eq!(manifest.chunks[0].min_blocks_needed, 1);
        // bytes placed = 3x the file size.
        assert_eq!(past.metrics().bytes_placed, ByteSize::mb(300));
    }

    #[test]
    fn failure_percentage_grows_as_system_fills() {
        let mut past = Past::new(cluster(20, ByteSize::gb(1), 5), PastConfig::default());
        let mut failures_early = 0;
        for i in 0..20 {
            if !past
                .store_file(&FileRecord::new(format!("e{i}"), ByteSize::mb(700)))
                .is_stored()
            {
                failures_early += 1;
            }
        }
        let mut failures_late = 0;
        for i in 0..20 {
            if !past
                .store_file(&FileRecord::new(format!("l{i}"), ByteSize::mb(700)))
                .is_stored()
            {
                failures_late += 1;
            }
        }
        assert!(
            failures_late > failures_early,
            "late failures {failures_late} should exceed early failures {failures_early}"
        );
    }
}
