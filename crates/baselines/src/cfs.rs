//! CFS-style fixed-size-block placement (Dabek et al., SOSP'01), as compared
//! against in the paper.
//!
//! CFS chops every file into fixed-size blocks, names each block by a hash, and
//! stores it on the successor of its key, replicating on the following `k`
//! successors.  Large files therefore always find *somewhere* to put each small
//! block — but the number of blocks (and hence DHT lookups) grows linearly with
//! the file size, and a single unplaceable block fails the whole file
//! (Section 3 of the paper quantifies how quickly that compounds).
//!
//! The paper's simulations use a 4 MB block size "to reduce unnecessary DHT
//! look-ups" (the classic CFS value is 8 KB); both are provided as constructors.

use peerstripe_core::{
    BlockPlacement, ChunkPlacement, FileManifest, ManifestStore, ObjectName, StorageCluster,
    StorageSystem, StoreMetrics, StoreOutcome,
};
use peerstripe_sim::ByteSize;
use peerstripe_trace::FileRecord;
use serde::{Deserialize, Serialize};

/// Configuration of the CFS baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CfsConfig {
    /// Fixed block size files are chopped into.
    pub block_size: ByteSize,
    /// Number of placement retries per block (rehash with a new salt).
    pub retries_per_block: u32,
    /// Number of copies of each block (stored on consecutive successors).  The
    /// paper's simulations use 1.
    pub replicas: usize,
    /// Whether per-file manifests are recorded (adds one placement record per
    /// block, so large sweeps turn this off).
    pub track_manifests: bool,
}

impl CfsConfig {
    /// The configuration used in the paper's simulations: 4 MB blocks.
    pub fn paper_simulation() -> Self {
        CfsConfig {
            block_size: ByteSize::mb(4),
            retries_per_block: 5,
            replicas: 1,
            track_manifests: true,
        }
    }

    /// The classic CFS configuration: 8 KB blocks.
    pub fn classic() -> Self {
        CfsConfig {
            block_size: ByteSize::kb(8),
            ..Self::paper_simulation()
        }
    }
}

impl Default for CfsConfig {
    fn default() -> Self {
        Self::paper_simulation()
    }
}

/// The CFS baseline storage system.
pub struct Cfs {
    cluster: StorageCluster,
    config: CfsConfig,
    manifests: ManifestStore,
    metrics: StoreMetrics,
}

impl Cfs {
    /// Create a CFS instance over an existing cluster.
    pub fn new(cluster: StorageCluster, config: CfsConfig) -> Self {
        assert!(!config.block_size.is_zero(), "block size must be positive");
        Cfs {
            cluster,
            config,
            manifests: ManifestStore::new(),
            metrics: StoreMetrics::new(),
        }
    }

    /// The instance's configuration.
    pub fn config(&self) -> &CfsConfig {
        &self.config
    }

    /// Consume the system and return its cluster.
    pub fn into_cluster(self) -> StorageCluster {
        self.cluster
    }

    /// Number of fixed-size blocks a file of the given size is chopped into.
    pub fn blocks_for(&self, size: ByteSize) -> u64 {
        size.div_ceil(self.config.block_size)
            .max(if size.is_zero() { 0 } else { 1 })
    }
}

impl StorageSystem for Cfs {
    fn name(&self) -> &str {
        "CFS"
    }

    fn store_file(&mut self, file: &FileRecord) -> StoreOutcome {
        let block_count = self.blocks_for(file.size);
        let mut placements: Vec<ChunkPlacement> = Vec::with_capacity(block_count as usize);
        let mut chunk_sizes: Vec<ByteSize> = Vec::with_capacity(block_count as usize);
        let mut placed_bytes = ByteSize::ZERO;
        let mut remaining = file.size;

        'blocks: for block_no in 0..block_count {
            let this_block = remaining.min(self.config.block_size);
            for salt in 0..=self.config.retries_per_block {
                // CFS identifies blocks by content hash; retries are modelled by
                // salting the name, which maps the block to a different successor.
                let name = ObjectName::block(&file.name, block_no as u32, salt);
                // CFS places a block on the successor of its key and replicates it
                // on the following successors (Chord semantics).
                let successors = self
                    .cluster
                    .overlay()
                    .ring()
                    .successors(name.key(), self.config.replicas.max(1));
                let Some(&(_, primary)) = successors.first() else {
                    break 'blocks;
                };
                // One routed lookup per placement attempt (accounting only).
                let _ = self.cluster.overlay_mut().route(name.key());
                if !self.cluster.node(primary).can_store(this_block) {
                    continue;
                }
                let mut placed: Vec<BlockPlacement> = Vec::new();
                for (i, (_, node)) in successors.into_iter().enumerate() {
                    let key =
                        ObjectName::block(format!("{}#rep{i}", file.name), block_no as u32, salt)
                            .key();
                    if self
                        .cluster
                        .store_object_at(node, key, name.clone(), this_block, None)
                        .is_ok()
                    {
                        placed.push(BlockPlacement {
                            name: name.clone(),
                            node,
                            size: this_block,
                            domain: None,
                        });
                    } else if i == 0 {
                        placed.clear();
                        break;
                    }
                }
                if placed.is_empty() {
                    continue;
                }
                placed_bytes += placed.iter().map(|p| p.size).sum();
                chunk_sizes.push(this_block);
                placements.push(ChunkPlacement {
                    chunk: block_no as u32,
                    size: this_block,
                    blocks: placed,
                    min_blocks_needed: 1,
                });
                remaining -= this_block;
                continue 'blocks;
            }
            // A single unplaceable block fails the whole file; roll back.
            for placement in &placements {
                for b in &placement.blocks {
                    // Replica copies were stored under salted keys; releasing by
                    // size keeps the accounting exact regardless of tracking mode.
                    self.cluster.release_at(b.node, b.size);
                }
            }
            self.metrics.record_failure(file.size);
            return StoreOutcome::Failed {
                reason: format!(
                    "block {block_no} of {} unplaceable after {} retries",
                    block_count, self.config.retries_per_block
                ),
            };
        }

        self.metrics
            .record_success(file.size, &chunk_sizes, placed_bytes);
        if self.config.track_manifests {
            self.manifests.insert(FileManifest {
                name: file.name.clone(),
                size: file.size,
                chunks: placements,
                cat_nodes: Vec::new(),
            });
        }
        StoreOutcome::Stored
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn cluster(&self) -> &StorageCluster {
        &self.cluster
    }

    fn cluster_mut(&mut self) -> &mut StorageCluster {
        &mut self.cluster
    }

    fn manifest(&self, name: &str) -> Option<&FileManifest> {
        self.manifests.get(name)
    }

    fn manifests(&self) -> &ManifestStore {
        &self.manifests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerstripe_core::ClusterConfig;
    use peerstripe_sim::DetRng;
    use peerstripe_trace::CapacityModel;

    fn cluster(nodes: usize, capacity: ByteSize, seed: u64) -> StorageCluster {
        let mut rng = DetRng::new(seed);
        ClusterConfig {
            nodes,
            capacity: CapacityModel::Fixed(capacity),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng)
    }

    #[test]
    fn chops_files_into_fixed_blocks() {
        let mut cfs = Cfs::new(
            cluster(50, ByteSize::gb(1), 1),
            CfsConfig::paper_simulation(),
        );
        assert!(cfs
            .store_file(&FileRecord::new("f", ByteSize::mb(243)))
            .is_stored());
        let manifest = cfs.manifest("f").unwrap();
        // 243 MB / 4 MB = 60.75 → 61 blocks, matching Table 1's ~61 chunks per file.
        assert_eq!(manifest.chunks.len(), 61);
        assert!(manifest.chunks[..60]
            .iter()
            .all(|c| c.size == ByteSize::mb(4)));
        assert_eq!(manifest.chunks[60].size, ByteSize::mb(3));
        assert!((cfs.metrics().mean_chunks_per_file() - 61.0).abs() < 1e-9);
        assert!(cfs.metrics().mean_chunk_size() <= ByteSize::mb(4));
    }

    #[test]
    fn stores_files_larger_than_any_single_node() {
        // Unlike PAST, CFS can spread a big file over many nodes.
        let mut cfs = Cfs::new(
            cluster(60, ByteSize::mb(100), 2),
            CfsConfig::paper_simulation(),
        );
        assert!(cfs
            .store_file(&FileRecord::new("big", ByteSize::gb(2)))
            .is_stored());
        let manifest = cfs.manifest("big").unwrap();
        let nodes: std::collections::HashSet<_> = manifest.all_blocks().map(|b| b.node).collect();
        assert!(nodes.len() > 10, "blocks must be spread over many nodes");
    }

    #[test]
    fn blocks_for_counts_partial_blocks() {
        let cfs = Cfs::new(
            cluster(5, ByteSize::gb(1), 3),
            CfsConfig::paper_simulation(),
        );
        assert_eq!(cfs.blocks_for(ByteSize::mb(8)), 2);
        assert_eq!(cfs.blocks_for(ByteSize::mb(9)), 3);
        assert_eq!(cfs.blocks_for(ByteSize::ZERO), 0);
        assert_eq!(cfs.blocks_for(ByteSize::bytes(1)), 1);
    }

    #[test]
    fn store_fails_and_rolls_back_when_a_block_cannot_be_placed() {
        // Tiny system: 3 nodes x 16 MB.  A 64 MB file (16 blocks) cannot fit.
        let mut cfs = Cfs::new(
            cluster(3, ByteSize::mb(16), 4),
            CfsConfig::paper_simulation(),
        );
        let used_before = cfs.cluster().total_used();
        let outcome = cfs.store_file(&FileRecord::new("toobig", ByteSize::mb(64)));
        assert!(!outcome.is_stored());
        assert_eq!(cfs.metrics().files_failed, 1);
        assert_eq!(
            cfs.cluster().total_used(),
            used_before,
            "rollback must free blocks"
        );
        assert!(cfs.manifest("toobig").is_none());
    }

    #[test]
    fn replication_uses_successors() {
        let mut cfs = Cfs::new(
            cluster(30, ByteSize::gb(1), 5),
            CfsConfig {
                replicas: 3,
                ..CfsConfig::paper_simulation()
            },
        );
        assert!(cfs
            .store_file(&FileRecord::new("r", ByteSize::mb(4)))
            .is_stored());
        let manifest = cfs.manifest("r").unwrap();
        assert_eq!(manifest.chunks[0].blocks.len(), 3);
        assert_eq!(cfs.metrics().bytes_placed, ByteSize::mb(12));
    }

    #[test]
    fn lookup_count_grows_with_file_size() {
        let mut cfs = Cfs::new(
            cluster(100, ByteSize::gb(10), 6),
            CfsConfig::paper_simulation(),
        );
        cfs.store_file(&FileRecord::new("small", ByteSize::mb(40)));
        let lookups_small = cfs.cluster().overlay().stats().lookups;
        cfs.store_file(&FileRecord::new("large", ByteSize::mb(400)));
        let lookups_large = cfs.cluster().overlay().stats().lookups - lookups_small;
        assert!(
            lookups_large >= 9 * lookups_small,
            "a 10x bigger file needs ~10x the lookups ({lookups_small} vs {lookups_large})"
        );
    }

    #[test]
    fn classic_config_uses_8kb_blocks() {
        assert_eq!(CfsConfig::classic().block_size, ByteSize::kb(8));
        assert_eq!(CfsConfig::paper_simulation().block_size, ByteSize::mb(4));
    }
}
