//! The baseline storage systems the paper compares PeerStripe against.
//!
//! * [`past::Past`] — PAST-style whole-file placement: a file lives in its
//!   entirety on the node numerically closest to its (salted) key, so no file
//!   larger than one node's free space can ever be stored, and retries are the
//!   only answer to a full target.
//! * [`cfs::Cfs`] — CFS-style fixed-size blocks: every file is chopped into
//!   fixed blocks placed on the successors of their keys, so lookups (and the
//!   chance that *some* block fails) grow linearly with file size.
//!
//! Both implement [`peerstripe_core::StorageSystem`], so the Figure 7–9 /
//! Table 1 / Table 4 experiment drivers treat them interchangeably with
//! PeerStripe, running all three on identically seeded clusters.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cfs;
pub mod past;

pub use cfs::{Cfs, CfsConfig};
pub use past::{Past, PastConfig};
