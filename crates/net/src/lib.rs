//! # peerstripe-net — the networked deployment path
//!
//! Everything else in this workspace runs against the in-process simulator;
//! this crate turns the reproduction into a system.  It has three layers:
//!
//! * [`protocol`] — a small length-prefixed framed wire format for the
//!   paper's §3 primitives (`getCapacity` probes, block store/fetch, repair
//!   reads) with a versioned header, a max-frame limit, and serde-backed
//!   message bodies;
//! * [`node`] + [`server`] — the `peerstripe-node` daemon: one node's
//!   contributed store served over TCP by a thread-per-connection server
//!   with per-connection timeouts and graceful shutdown;
//! * [`gateway`] — a [`RingGateway`] implementing the same cluster-facing
//!   traits as the simulator (`ClusterView` / `ProbeView` /
//!   `StorageBackend`), so the `PeerStripe` client, the placement
//!   strategies, and the repair stack drive live daemons unchanged.
//!
//! [`ring`] spawns localhost rings of real daemon processes for experiments
//! and tests; `repro ring` stores and recovers a file across such a ring
//! through a real node kill.
//!
//! Observability runs end-to-end across the wire: every instrumented gateway
//! RPC carries a request id that the node echoes and records in its own
//! bounded op log, each [`NodeService`] keeps per-op metrics a `GetStats`
//! frame exposes, and [`monitor`] scrapes a whole ring into one node-labelled
//! registry (`repro monitor` drives it against a `LocalRing`).
//!
//! The crate is deliberately *not* in the deterministic-simulation set: it
//! touches wall clocks and sockets, and says so via audited lint waivers
//! instead of a blanket exemption.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gateway;
pub mod monitor;
pub mod node;
pub mod protocol;
pub mod ring;
pub mod server;

pub use gateway::{GatewayConfig, NodeEndpoint, RingGateway, LATENCY_BUCKETS_MS};
pub use monitor::{ClusterMonitor, MonitorConfig, NodeHealth};
pub use node::{NodeConfig, NodeService};
pub use protocol::{
    NodeStats, OpLogEntry, RemoteError, RepairBlock, Request, Response, WireError, MAX_FRAME,
    VERSION,
};
pub use ring::{node_binary, LocalRing};
pub use server::{NodeServer, RunningNode, ServerConfig};
