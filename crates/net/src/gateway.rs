//! The gateway: the networked [`StorageBackend`].
//!
//! A [`RingGateway`] holds the membership ring of a set of live
//! `peerstripe-node` daemons and implements the exact cluster-facing traits
//! the simulator does — [`ClusterView`], [`ProbeView`], and
//! [`StorageBackend`] — by translating each call into a framed RPC.  The
//! `PeerStripe` client, the placement strategies, and the repair executor
//! drive it unchanged: the store path probes capacities over real sockets,
//! the retrieve path pulls block bytes off the wire, and recovery reads
//! surviving blocks from live daemons.
//!
//! Connections are pooled per node and transparently re-dialed once after a
//! transport error.  Every RPC is counted and its wall-clock latency recorded
//! in a [`MetricsRegistry`] (`gateway_rpc_total`, `gateway_rpc_errors`,
//! `gateway_rpc_latency_ms`, labelled by operation), which the ring harness
//! exports into its JSON report.

use crate::protocol::{
    NodeStats, OpLogEntry, RemoteError, RepairBlock, Request, Response, WireError,
};
use crate::server::call_traced;
use peerstripe_core::{
    ClusterStoreError, FetchedBlock, NodeStoreError, ObjectName, StorageBackend,
};
use peerstripe_overlay::{Id, IdRing, NodeRef, Takeover};
use peerstripe_placement::{ClusterView, ProbeView};
use peerstripe_sim::ByteSize;
use peerstripe_telemetry::{CounterHandle, HistogramHandle, MetricsRegistry, RegistryExport};
use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One daemon the gateway can reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeEndpoint {
    /// The node's reference (its index in the gateway's node table).
    pub node: NodeRef,
    /// The node's overlay identifier.
    pub id: Id,
    /// Where the daemon listens.
    pub addr: SocketAddr,
}

/// Gateway tunables.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Dial timeout and per-RPC socket read/write timeout.
    pub timeout: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            timeout: Duration::from_secs(5),
        }
    }
}

/// Latency histogram bucket bounds, in milliseconds: localhost RPCs sit in
/// the sub-millisecond buckets, WAN deployments in the tail.
pub const LATENCY_BUCKETS_MS: &[f64] = &[
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
];

/// The RPC operations the gateway issues, as metric label values.
const OPS: &[&str] = &[
    "ping",
    "get_capacity",
    "store_block",
    "fetch_block",
    "repair_read",
    "remove_block",
    "shutdown",
];

#[derive(Clone, Copy)]
struct OpHandles {
    total: CounterHandle,
    latency: HistogramHandle,
}

/// How many finished RPCs the gateway's op log retains.
const GATEWAY_OP_LOG_CAPACITY: usize = 4096;

/// The networked backend: a membership ring over live node daemons.
pub struct RingGateway {
    endpoints: BTreeMap<NodeRef, SocketAddr>,
    ids: BTreeMap<NodeRef, Id>,
    ring: IdRing,
    timeout: Duration,
    conns: Mutex<BTreeMap<NodeRef, TcpStream>>,
    /// Last capacity report seen per node — the `&self` view methods
    /// ([`ClusterView::report_of`]) answer from this cache; live probes
    /// refresh it.
    reports: Mutex<BTreeMap<NodeRef, ByteSize>>,
    metrics: Mutex<MetricsRegistry>,
    handles: BTreeMap<&'static str, OpHandles>,
    /// Monotonic request-id source; every instrumented RPC carries one, so
    /// gateway and node op logs join on it.
    next_rid: AtomicU64,
    /// Recent RPCs, oldest first, bounded at [`GATEWAY_OP_LOG_CAPACITY`].
    op_log: Mutex<VecDeque<OpLogEntry>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    // Poisoning only marks a panicked peer thread; the maps stay usable.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl RingGateway {
    /// Build a gateway over the given endpoints. No connection is made until
    /// the first RPC.
    pub fn connect(endpoints: &[NodeEndpoint], config: GatewayConfig) -> RingGateway {
        let mut ring = IdRing::new();
        let mut addr_map = BTreeMap::new();
        let mut ids = BTreeMap::new();
        for ep in endpoints {
            ring.insert(ep.id, ep.node);
            addr_map.insert(ep.node, ep.addr);
            ids.insert(ep.node, ep.id);
        }
        let mut metrics = MetricsRegistry::new();
        let mut handles = BTreeMap::new();
        for op in OPS {
            handles.insert(
                *op,
                OpHandles {
                    total: metrics.counter("gateway_rpc_total", &[("op", op)]),
                    latency: metrics.histogram(
                        "gateway_rpc_latency_ms",
                        &[("op", op)],
                        LATENCY_BUCKETS_MS,
                    ),
                },
            );
        }
        RingGateway {
            endpoints: addr_map,
            ids,
            ring,
            timeout: config.timeout,
            conns: Mutex::new(BTreeMap::new()),
            reports: Mutex::new(BTreeMap::new()),
            metrics: Mutex::new(metrics),
            handles,
            next_rid: AtomicU64::new(1),
            op_log: Mutex::new(VecDeque::new()),
        }
    }

    /// The overlay id of a node reference.
    pub fn id_of(&self, node: NodeRef) -> Option<Id> {
        self.ids.get(&node).copied()
    }

    /// Dial a node fresh.
    fn dial(&self, node: NodeRef) -> Result<TcpStream, WireError> {
        let addr = self
            .endpoints
            .get(&node)
            .ok_or_else(|| WireError::Body(format!("unknown node {node}")))?;
        let stream = TcpStream::connect_timeout(addr, self.timeout).map_err(WireError::Io)?;
        let _ = stream.set_read_timeout(Some(self.timeout));
        let _ = stream.set_write_timeout(Some(self.timeout));
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    /// The failure kind of an RPC outcome: a [`WireError`] variant label for
    /// transport/protocol errors, a `node_*` label for typed node refusals,
    /// `None` for success — the `kind` label on `gateway_rpc_errors`.
    fn outcome_kind(result: &Result<Response, WireError>) -> Option<&'static str> {
        match result {
            Ok(Response::Error(RemoteError::InsufficientSpace)) => Some("node_insufficient_space"),
            Ok(Response::Error(RemoteError::AlreadyStored)) => Some("node_already_stored"),
            Ok(Response::Error(RemoteError::BadRequest { .. })) => Some("node_bad_request"),
            Ok(_) => None,
            Err(e) => Some(e.kind_label()),
        }
    }

    /// One RPC against `node`: pooled connection, one transparent re-dial
    /// after a transport error, latency and outcome recorded under `op`, and
    /// a fresh request id assigned so the node's op log can attribute the
    /// call back to this gateway entry.
    fn rpc(&self, node: NodeRef, op: &'static str, req: &Request) -> Result<Response, WireError> {
        let rid = self.next_rid.fetch_add(1, Ordering::Relaxed);
        let start = std::time::Instant::now(); // lint:allow(wall-clock) -- measuring real RPC latency on the network path is the point of the gateway histograms
        let result = self.rpc_uninstrumented(node, req, Some(rid));
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        let kind = Self::outcome_kind(&result);
        if let Some(h) = self.handles.get(op) {
            let mut metrics = lock(&self.metrics);
            metrics.inc(h.total, 1);
            metrics.observe(h.latency, elapsed_ms);
            if let Some(kind) = kind {
                // Registered on first use: the kind space is open-ended, so
                // eager registration would pin down kinds that never occur.
                let errors = metrics.counter("gateway_rpc_errors", &[("op", op), ("kind", kind)]);
                metrics.inc(errors, 1);
            }
        }
        // Shutdown is intercepted by the server layer before dispatch, so the
        // node never logs it; keeping it out of the gateway log preserves the
        // invariant that every logged RPC can join a node-side entry.
        if op != "shutdown" {
            let mut log = lock(&self.op_log);
            if log.len() == GATEWAY_OP_LOG_CAPACITY {
                log.pop_front();
            }
            log.push_back(OpLogEntry {
                request_id: Some(rid),
                op: op.to_string(),
                duration_ms: elapsed_ms,
                outcome: kind.unwrap_or("ok").to_string(),
                slow: false,
            });
        }
        result
    }

    fn rpc_uninstrumented(
        &self,
        node: NodeRef,
        req: &Request,
        rid: Option<u64>,
    ) -> Result<Response, WireError> {
        let mut conns = lock(&self.conns);
        let mut fresh = false;
        let mut stream = match conns.remove(&node) {
            Some(s) => s,
            None => {
                fresh = true;
                self.dial(node)?
            }
        };
        match call_traced(&mut stream, req, rid) {
            Ok((resp, _)) => {
                conns.insert(node, stream);
                Ok(resp)
            }
            Err(e) if e.is_transport() && !fresh => {
                // The pooled connection went stale (daemon restarted, idle
                // timeout); re-dial once.
                let mut stream = self.dial(node)?;
                let (resp, _) = call_traced(&mut stream, req, rid)?;
                conns.insert(node, stream);
                Ok(resp)
            }
            Err(e) => Err(e),
        }
    }

    /// Scrape one daemon's stats.  Deliberately uninstrumented and untraced:
    /// observation must not change the op counts, latencies, or logs it
    /// reads, so repeated scrapes of an idle ring are byte-identical.
    pub fn get_stats(&self, node: NodeRef) -> Result<NodeStats, WireError> {
        match self.rpc_uninstrumented(node, &Request::GetStats, None)? {
            Response::Stats { stats } => Ok(*stats),
            Response::Error(e) => Err(WireError::Body(e.to_string())),
            other => Err(WireError::Body(format!(
                "unexpected reply to GetStats: {other:?}"
            ))),
        }
    }

    /// Snapshot of the gateway's recent-RPC log, oldest first.
    pub fn op_log(&self) -> Vec<OpLogEntry> {
        lock(&self.op_log).iter().cloned().collect()
    }

    /// Probe one node's capacity over the wire, refreshing the report cache.
    fn capacity_rpc(&self, node: NodeRef) -> Option<ByteSize> {
        match self.rpc(node, "get_capacity", &Request::GetCapacity) {
            Ok(Response::Capacity { free }) => {
                lock(&self.reports).insert(node, free);
                Some(free)
            }
            _ => None,
        }
    }

    /// Liveness-check one node.
    pub fn ping(&self, node: NodeRef) -> bool {
        matches!(
            self.rpc(node, "ping", &Request::Ping),
            Ok(Response::Pong { .. })
        )
    }

    /// Read every surviving block of `(file, chunk)` held by `node` — the
    /// bulk regeneration read.
    pub fn repair_read(
        &self,
        node: NodeRef,
        file: &str,
        chunk: u32,
    ) -> Result<Vec<RepairBlock>, WireError> {
        match self.rpc(
            node,
            "repair_read",
            &Request::RepairRead {
                file: file.to_string(),
                chunk,
            },
        )? {
            Response::RepairBlocks { blocks } => Ok(blocks),
            Response::Error(e) => Err(WireError::Body(e.to_string())),
            other => Err(WireError::Body(format!(
                "unexpected reply to RepairRead: {other:?}"
            ))),
        }
    }

    /// Ask one daemon to shut down gracefully.
    pub fn shutdown_node(&self, node: NodeRef) -> bool {
        matches!(
            self.rpc(node, "shutdown", &Request::Shutdown),
            Ok(Response::ShuttingDown)
        )
    }

    /// Declare a node failed: remove it from the membership ring and return
    /// the key-space takeover describing which neighbours inherit its range —
    /// the same contract as the simulator's `fail_node`.  The caller feeds
    /// the takeover to `PeerStripe::handle_node_failure` to drive recovery.
    pub fn mark_failed(&mut self, node: NodeRef) -> Option<Takeover> {
        let id = self.ids.get(&node).copied()?;
        let takeover = self.ring.takeover_on_failure(id);
        self.ring.remove(id)?;
        lock(&self.conns).remove(&node);
        lock(&self.reports).remove(&node);
        takeover
    }

    /// Snapshot of the per-RPC telemetry.
    pub fn export_metrics(&self) -> RegistryExport {
        lock(&self.metrics).export()
    }

    /// Merge the gateway's telemetry into another registry.
    pub fn merge_metrics_into(&self, target: &mut MetricsRegistry) {
        target.merge(&lock(&self.metrics));
    }

    /// Total RPCs issued, across operations (for quick report lines).
    pub fn rpc_count(&self) -> u64 {
        let metrics = lock(&self.metrics);
        self.handles
            .values()
            .map(|h| metrics.counter_value(h.total))
            .sum()
    }
}

impl ClusterView for RingGateway {
    fn route_quiet(&self, key: Id) -> Option<NodeRef> {
        self.ring.route(key).map(|(_, node)| node)
    }

    fn is_alive(&self, node: NodeRef) -> bool {
        self.ids
            .get(&node)
            .is_some_and(|id| self.ring.contains(*id))
    }

    fn can_store(&self, node: NodeRef, size: ByteSize) -> bool {
        if !self.is_alive(node) {
            return false;
        }
        match self.capacity_rpc(node) {
            Some(free) => size <= free,
            None => false,
        }
    }

    fn report_of(&self, node: NodeRef) -> ByteSize {
        if !self.is_alive(node) {
            return ByteSize::ZERO;
        }
        if let Some(cached) = lock(&self.reports).get(&node).copied() {
            return cached;
        }
        self.capacity_rpc(node).unwrap_or(ByteSize::ZERO)
    }

    fn node_count(&self) -> usize {
        self.endpoints.len()
    }

    fn alive_nodes(&self) -> Vec<NodeRef> {
        self.ring.iter().map(|(_, node)| node).collect()
    }
}

impl ProbeView for RingGateway {
    fn probe(&mut self, key: Id) -> Option<(NodeRef, ByteSize)> {
        let (_, node) = self.ring.route(key)?;
        let free = self.capacity_rpc(node)?;
        Some((node, free))
    }
}

impl StorageBackend for RingGateway {
    fn route_lookup(&mut self, key: Id) -> Option<NodeRef> {
        self.ring.route(key).map(|(_, node)| node)
    }

    fn store_block(
        &mut self,
        node: NodeRef,
        key: Id,
        name: ObjectName,
        size: ByteSize,
        payload: Option<Vec<u8>>,
    ) -> Result<NodeRef, ClusterStoreError> {
        if !self.is_alive(node) {
            return Err(ClusterStoreError::NoLiveNodes);
        }
        match self.rpc(
            node,
            "store_block",
            &Request::StoreBlock {
                key,
                name,
                size,
                payload,
            },
        ) {
            Ok(Response::Stored) => Ok(node),
            Ok(Response::Error(RemoteError::InsufficientSpace)) => Err(ClusterStoreError::Refused(
                NodeStoreError::InsufficientSpace,
            )),
            Ok(Response::Error(RemoteError::AlreadyStored)) => {
                Err(ClusterStoreError::Refused(NodeStoreError::AlreadyStored))
            }
            // A transport failure or protocol surprise reads as the node
            // being unreachable.
            Ok(_) | Err(_) => Err(ClusterStoreError::NoLiveNodes),
        }
    }

    fn fetch_block(&self, node: NodeRef, name: &ObjectName) -> Option<FetchedBlock> {
        if !self.is_alive(node) {
            return None;
        }
        match self.rpc(
            node,
            "fetch_block",
            &Request::FetchBlock { name: name.clone() },
        ) {
            Ok(Response::Block {
                block: Some((size, payload)),
            }) => Some(FetchedBlock { size, payload }),
            _ => None,
        }
    }

    fn rollback_block(&mut self, node: NodeRef, name: &ObjectName, size: ByteSize) {
        if !self.is_alive(node) {
            return;
        }
        let _ = self.rpc(
            node,
            "remove_block",
            &Request::RemoveBlock {
                name: name.clone(),
                size,
            },
        );
    }

    fn replica_targets(&self, key: Id, k: usize) -> Vec<(Id, NodeRef)> {
        self.ring.k_closest(key, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeConfig, NodeService};
    use crate::server::{NodeServer, RunningNode, ServerConfig};

    fn ring_of(n: usize) -> (Vec<RunningNode>, RingGateway) {
        let mut nodes = Vec::new();
        let mut endpoints = Vec::new();
        for i in 0..n {
            let name = format!("node-{i}");
            let service = NodeService::new(&NodeConfig::named(&name, ByteSize::mb(64)));
            let running = NodeServer::bind("127.0.0.1:0", service, ServerConfig::default())
                .unwrap()
                .spawn();
            endpoints.push(NodeEndpoint {
                node: i,
                id: Id::hash(&name),
                addr: running.local_addr(),
            });
            nodes.push(running);
        }
        let gateway = RingGateway::connect(&endpoints, GatewayConfig::default());
        (nodes, gateway)
    }

    #[test]
    fn gateway_round_trips_blocks_through_live_daemons() {
        let (nodes, mut gw) = ring_of(4);
        let name = ObjectName::block("f", 0, 0);
        let node = gw.route_lookup(name.key()).unwrap();
        gw.store_block(
            node,
            name.key(),
            name.clone(),
            ByteSize::mb(1),
            Some(vec![1, 2, 3]),
        )
        .unwrap();
        let fetched = gw.fetch_block(node, &name).unwrap();
        assert_eq!(fetched.size, ByteSize::mb(1));
        assert_eq!(fetched.payload.as_deref(), Some(&[1u8, 2, 3][..]));
        gw.rollback_block(node, &name, ByteSize::mb(1));
        assert!(gw.fetch_block(node, &name).is_none());
        for n in nodes {
            n.stop().unwrap();
        }
    }

    #[test]
    fn probe_reaches_the_daemon_and_caches_the_report() {
        let (nodes, mut gw) = ring_of(3);
        let key = Id::hash("some-key");
        let (node, free) = gw.probe(key).unwrap();
        assert_eq!(free, ByteSize::mb(64));
        assert_eq!(gw.report_of(node), ByteSize::mb(64));
        assert!(gw.can_store(node, ByteSize::mb(1)));
        assert!(!gw.can_store(node, ByteSize::gb(1)));
        for n in nodes {
            n.stop().unwrap();
        }
    }

    #[test]
    fn mark_failed_removes_the_node_and_yields_a_takeover() {
        let (nodes, mut gw) = ring_of(4);
        assert_eq!(gw.alive_nodes().len(), 4);
        let takeover = gw.mark_failed(2).unwrap();
        assert_eq!(takeover.failed, Id::hash("node-2"));
        assert!(!gw.is_alive(2));
        assert_eq!(gw.alive_nodes().len(), 3);
        assert_eq!(gw.node_count(), 4);
        // Routing never lands on the failed node now.
        for i in 0..32 {
            let n = gw.route_quiet(Id::hash(&format!("k{i}"))).unwrap();
            assert_ne!(n, 2);
        }
        for n in nodes {
            n.stop().unwrap();
        }
    }

    #[test]
    fn dead_nodes_fail_rpcs_gracefully() {
        let (mut nodes, mut gw) = ring_of(3);
        // Kill node 1's server for real, without telling the gateway.
        nodes.remove(1).stop().unwrap();
        assert!(!gw.ping(1));
        assert!(!gw.can_store(1, ByteSize::kb(1)));
        let name = ObjectName::block("f", 0, 0);
        assert!(gw
            .store_block(1, name.key(), name.clone(), ByteSize::kb(1), None)
            .is_err());
        assert!(gw.fetch_block(1, &name).is_none());
        // Errors were counted.
        let export = gw.export_metrics();
        let errs: u64 = export
            .counters
            .iter()
            .filter(|c| c.name == "gateway_rpc_errors")
            .map(|c| c.value)
            .sum();
        assert!(errs >= 2, "expected error counters, got {errs}");
        for n in nodes {
            n.stop().unwrap();
        }
    }

    #[test]
    fn request_ids_join_gateway_and_node_op_logs() {
        let (nodes, gw) = ring_of(2);
        assert!(gw.ping(0));
        assert!(gw.ping(1));
        assert!(gw.ping(0));
        let gw_log = gw.op_log();
        assert_eq!(gw_log.len(), 3);
        let mut node_rids = std::collections::BTreeSet::new();
        for n in 0..2 {
            let stats = gw.get_stats(n).unwrap();
            assert!(stats.op_log.iter().all(|e| e.op != "get_stats"));
            for e in &stats.op_log {
                if let Some(rid) = e.request_id {
                    node_rids.insert(rid);
                }
            }
        }
        // Every gateway entry is attributable to exactly the node-side log.
        for entry in &gw_log {
            assert!(entry.is_ok());
            let rid = entry.request_id.expect("instrumented RPCs carry an id");
            assert!(node_rids.contains(&rid), "rid {rid} missing node-side");
        }
        for n in nodes {
            n.stop().unwrap();
        }
    }

    #[test]
    fn error_counters_carry_the_failure_kind() {
        let (mut nodes, gw) = ring_of(2);
        nodes.remove(1).stop().unwrap();
        assert!(!gw.ping(1));
        let export = gw.export_metrics();
        let io_errs: u64 = export
            .counters
            .iter()
            .filter(|c| {
                c.name == "gateway_rpc_errors"
                    && c.labels.contains(&("kind".to_string(), "io".to_string()))
            })
            .map(|c| c.value)
            .sum();
        assert!(io_errs >= 1, "expected an io-kind error counter");
        // The failed RPC stays attributed in the gateway log via its outcome.
        let last = gw.op_log().pop().unwrap();
        assert_eq!(last.op, "ping");
        assert_eq!(last.outcome, "io");
        for n in nodes {
            n.stop().unwrap();
        }
    }

    #[test]
    fn rpc_metrics_accumulate_counts_and_latency() {
        let (nodes, gw) = ring_of(2);
        assert!(gw.ping(0));
        assert!(gw.ping(0));
        assert!(gw.ping(1));
        let export = gw.export_metrics();
        let ping_total = export
            .counters
            .iter()
            .find(|c| c.name == "gateway_rpc_total" && c.labels.iter().any(|l| l.1 == "ping"))
            .map(|c| c.value);
        assert_eq!(ping_total, Some(3));
        let hist = export
            .histograms
            .iter()
            .find(|h| h.name == "gateway_rpc_latency_ms" && h.labels.iter().any(|l| l.1 == "ping"))
            .expect("ping latency histogram");
        assert_eq!(hist.count, 3);
        assert_eq!(gw.rpc_count(), 3);
        for n in nodes {
            n.stop().unwrap();
        }
    }
}
