//! The per-node storage daemon.
//!
//! Owns one node's contributed store and serves the framed wire protocol
//! over TCP until told to shut down:
//!
//! ```text
//! peerstripe-node --listen 127.0.0.1:0 --id node-3 --capacity-mb 256
//! ```
//!
//! The daemon announces `listening on ADDR` on stdout once bound (the ring
//! harness parses this to learn ephemeral ports), then serves forever.  A
//! `Shutdown` request drains in-flight connections and exits the process.

use peerstripe_net::{NodeConfig, NodeServer, NodeService, ServerConfig};
use peerstripe_overlay::Id;
use peerstripe_sim::ByteSize;
use std::io::Write;
use std::time::Duration;

struct Args {
    listen: String,
    id: Id,
    capacity: ByteSize,
    report_fraction: f64,
    read_timeout: Duration,
    op_log_capacity: usize,
    slow_ms: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: peerstripe-node [--listen ADDR] [--id NAME] [--capacity-mb N] \
         [--report-fraction F] [--read-timeout-ms N] [--op-log N] [--slow-ms F]\n\
         \n\
         Serves one node's contributed storage over framed TCP.\n\
         --listen          bind address (default 127.0.0.1:0 = ephemeral port)\n\
         --id              node name, hashed into the overlay id space (default node-0)\n\
         --capacity-mb     contributed capacity in MiB (default 256)\n\
         --report-fraction fraction of free space getCapacity advertises (default 1.0)\n\
         --read-timeout-ms idle-connection read timeout (default 30000)\n\
         --op-log          recent requests kept for GetStats scrapes (default 1024)\n\
         --slow-ms         threshold flagging a request slow (default 100)"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let defaults = NodeConfig::named("node-0", ByteSize::mb(256));
    let mut args = Args {
        listen: "127.0.0.1:0".to_string(),
        id: defaults.id,
        capacity: defaults.capacity,
        report_fraction: defaults.report_fraction,
        read_timeout: Duration::from_secs(30),
        op_log_capacity: defaults.op_log_capacity,
        slow_ms: defaults.slow_ms,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| match it.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {flag} needs a value");
                usage()
            }
        };
        match flag.as_str() {
            "--listen" => args.listen = value("--listen"),
            "--id" => args.id = Id::hash(&value("--id")),
            "--capacity-mb" => match value("--capacity-mb").parse::<u64>() {
                Ok(mb) => args.capacity = ByteSize::mb(mb),
                Err(_) => usage(),
            },
            "--report-fraction" => match value("--report-fraction").parse::<f64>() {
                Ok(f) if (0.0..=1.0).contains(&f) => args.report_fraction = f,
                _ => usage(),
            },
            "--read-timeout-ms" => match value("--read-timeout-ms").parse::<u64>() {
                Ok(ms) => args.read_timeout = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--op-log" => match value("--op-log").parse::<usize>() {
                Ok(n) if n > 0 => args.op_log_capacity = n,
                _ => usage(),
            },
            "--slow-ms" => match value("--slow-ms").parse::<f64>() {
                Ok(f) if f >= 0.0 => args.slow_ms = f,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let service = NodeService::new(&NodeConfig {
        id: args.id,
        capacity: args.capacity,
        report_fraction: args.report_fraction,
        op_log_capacity: args.op_log_capacity,
        slow_ms: args.slow_ms,
    });
    let config = ServerConfig {
        read_timeout: args.read_timeout,
        ..ServerConfig::default()
    };
    let server = match NodeServer::bind(args.listen.as_str(), service, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.listen);
            std::process::exit(1)
        }
    };
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run() {
        eprintln!("error: server failed: {e}");
        std::process::exit(1)
    }
}
