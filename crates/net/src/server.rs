//! The daemon's TCP front: a small thread-per-connection server with
//! per-connection read/write timeouts and graceful shutdown.
//!
//! Each accepted connection gets its own thread that reads framed requests,
//! dispatches them to the shared [`NodeService`], and writes framed replies.
//! A `Shutdown` request (or [`RunningNode::stop`]) raises the shutdown flag;
//! the accept loop observes it on its next wakeup — a self-connection is made
//! to unblock `accept` immediately — finishes in-flight connections, and
//! exits.

use crate::node::NodeService;
use crate::protocol::{
    read_request_traced, write_response, write_response_traced, RemoteError, Request, Response,
    WireError,
};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tunables of one node server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// How long a connection may sit idle before its read fails and the
    /// connection is dropped (the gateway reconnects transparently).
    pub read_timeout: Duration,
    /// Upper bound on one framed write.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// A bound, not-yet-running node server.
pub struct NodeServer {
    listener: TcpListener,
    addr: SocketAddr,
    service: Arc<Mutex<NodeService>>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

/// Handle to a server running on a background thread (in-process rings and
/// tests; the daemon binary calls [`NodeServer::run`] on its main thread).
pub struct RunningNode {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    service: Arc<Mutex<NodeService>>,
    handle: std::thread::JoinHandle<io::Result<()>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    // A poisoned service mutex only means another connection thread panicked
    // mid-request; the store itself is still consistent enough to serve.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl NodeServer {
    /// Bind to `addr` (use port 0 to let the OS pick) and prepare to serve.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: NodeService,
        config: ServerConfig,
    ) -> io::Result<NodeServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(NodeServer {
            listener,
            addr,
            service: Arc::new(Mutex::new(service)),
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve until shut down. Blocks the calling thread.
    pub fn run(self) -> io::Result<()> {
        let NodeServer {
            listener,
            addr,
            service,
            shutdown,
            config,
        } = self;
        let mut workers = Vec::new();
        // Open connections, keyed so each worker can deregister its own on
        // exit (a lingering clone would hold the peer's fd open past the
        // worker and hide the close from the client).
        let peers: Arc<Mutex<BTreeMap<u64, TcpStream>>> = Arc::new(Mutex::new(BTreeMap::new()));
        let mut next_conn: u64 = 0;
        for conn in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let conn_id = next_conn;
            next_conn += 1;
            if let Ok(clone) = stream.try_clone() {
                lock(&peers).insert(conn_id, clone);
            }
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let peers = Arc::clone(&peers);
            let config = config.clone();
            workers.push(std::thread::spawn(move || {
                serve_connection(stream, addr, &service, &shutdown, &config);
                lock(&peers).remove(&conn_id);
            }));
        }
        // Sever every still-open connection so workers blocked in a read
        // return at once, then reap them.
        for peer in lock(&peers).values() {
            let _ = peer.shutdown(std::net::Shutdown::Both);
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Run on a background thread, returning a [`RunningNode`] handle.
    pub fn spawn(self) -> RunningNode {
        let addr = self.addr;
        let shutdown = Arc::clone(&self.shutdown);
        let service = Arc::clone(&self.service);
        let handle = std::thread::spawn(move || self.run());
        RunningNode {
            addr,
            shutdown,
            service,
            handle,
        }
    }
}

impl RunningNode {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Inspect the node's service state (used by in-process ring reports).
    pub fn with_service<T>(&self, f: impl FnOnce(&NodeService) -> T) -> T {
        f(&lock(&self.service))
    }

    /// Raise the shutdown flag, unblock the accept loop, and join the server
    /// thread.
    pub fn stop(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        match self.handle.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}

/// Serve one connection until the peer closes, errors, or asks for shutdown.
fn serve_connection(
    mut stream: TcpStream,
    server_addr: SocketAddr,
    service: &Mutex<NodeService>,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        match read_request_traced(&mut stream) {
            Ok((Request::Shutdown, rid)) => {
                shutdown.store(true, Ordering::SeqCst);
                let _ = write_response_traced(&mut stream, &Response::ShuttingDown, rid);
                // Unblock the accept loop so it observes the flag now.
                let _ = TcpStream::connect(server_addr);
                break;
            }
            Ok((req, rid)) => {
                // Echo the caller's request id so the reply is correlatable.
                let resp = lock(service).handle_traced(req, rid);
                if write_response_traced(&mut stream, &resp, rid).is_err() {
                    break;
                }
            }
            Err(e) if e.is_transport() => break,
            Err(e) => {
                // A protocol violation: tell the peer why, then drop the
                // connection — the stream may no longer be frame-aligned.
                let _ = write_response(
                    &mut stream,
                    &Response::Error(RemoteError::BadRequest {
                        detail: e.to_string(),
                    }),
                );
                break;
            }
        }
    }
}

/// Convenience: one round-trip RPC over an existing stream.
pub fn call(stream: &mut TcpStream, req: &Request) -> Result<Response, WireError> {
    crate::protocol::write_request(stream, req)?;
    crate::protocol::read_response(stream)
}

/// One round-trip RPC carrying a request id; returns the reply and the id it
/// echoed (absent on [`Response::Error`] replies, which are never traced).
pub fn call_traced(
    stream: &mut TcpStream,
    req: &Request,
    rid: Option<u64>,
) -> Result<(Response, Option<u64>), WireError> {
    crate::protocol::write_request_traced(stream, req, rid)?;
    crate::protocol::read_response_traced(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeConfig;
    use peerstripe_core::ObjectName;
    use peerstripe_overlay::Id;
    use peerstripe_sim::ByteSize;

    fn start() -> RunningNode {
        let service = NodeService::new(&NodeConfig::named("node-0", ByteSize::mb(64)));
        NodeServer::bind("127.0.0.1:0", service, ServerConfig::default())
            .unwrap()
            .spawn()
    }

    #[test]
    fn serves_ping_and_store_fetch_over_tcp() {
        let node = start();
        let mut conn = TcpStream::connect(node.local_addr()).unwrap();
        assert_eq!(
            call(&mut conn, &Request::Ping).unwrap(),
            Response::Pong {
                node: Id::hash("node-0")
            }
        );
        let name = ObjectName::block("f", 0, 0);
        assert_eq!(
            call(
                &mut conn,
                &Request::StoreBlock {
                    key: name.key(),
                    name: name.clone(),
                    size: ByteSize::mb(1),
                    payload: Some(vec![42; 16]),
                }
            )
            .unwrap(),
            Response::Stored
        );
        assert_eq!(
            call(&mut conn, &Request::FetchBlock { name }).unwrap(),
            Response::Block {
                block: Some((ByteSize::mb(1), Some(vec![42; 16])))
            }
        );
        node.stop().unwrap();
    }

    #[test]
    fn concurrent_connections_share_one_store() {
        let node = start();
        let addr = node.local_addr();
        let mut threads = Vec::new();
        for t in 0..4 {
            threads.push(std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).unwrap();
                for b in 0..4u32 {
                    let name = ObjectName::block(format!("file-{t}"), 0, b);
                    let resp = call(
                        &mut conn,
                        &Request::StoreBlock {
                            key: name.key(),
                            name,
                            size: ByteSize::kb(1),
                            payload: None,
                        },
                    )
                    .unwrap();
                    assert_eq!(resp, Response::Stored);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(node.with_service(|s| s.store().object_count()), 16);
        node.stop().unwrap();
    }

    #[test]
    fn shutdown_request_stops_the_server() {
        let node = start();
        let addr = node.local_addr();
        let mut conn = TcpStream::connect(addr).unwrap();
        assert_eq!(
            call(&mut conn, &Request::Shutdown).unwrap(),
            Response::ShuttingDown
        );
        node.stop().unwrap();
        // The listener is gone (give the OS a beat to tear it down).
        let gone = (0..50).any(|_| {
            std::thread::sleep(Duration::from_millis(10));
            TcpStream::connect(addr).is_err()
        });
        assert!(gone, "listener still accepting after shutdown");
    }

    #[test]
    fn request_ids_echo_through_a_live_server_and_land_in_the_op_log() {
        let node = start();
        let mut conn = TcpStream::connect(node.local_addr()).unwrap();
        let (resp, rid) = call_traced(&mut conn, &Request::Ping, Some(7)).unwrap();
        assert_eq!(rid, Some(7));
        assert!(matches!(resp, Response::Pong { .. }));
        // Untraced calls stay untraced.
        let (_, rid) = call_traced(&mut conn, &Request::Ping, None).unwrap();
        assert_eq!(rid, None);
        // The scrape sees both pings, attributed exactly as sent.
        let (resp, rid) = call_traced(&mut conn, &Request::GetStats, Some(8)).unwrap();
        assert_eq!(rid, Some(8));
        let Response::Stats { stats } = resp else {
            panic!("expected Stats");
        };
        assert_eq!(stats.node, Id::hash("node-0"));
        let pings: Vec<_> = stats.op_log.iter().filter(|e| e.op == "ping").collect();
        assert_eq!(pings.len(), 2);
        assert_eq!(pings[0].request_id, Some(7));
        assert_eq!(pings[1].request_id, None);
        // The scrape itself never appears in its own log or counters.
        assert!(stats.op_log.iter().all(|e| e.op != "get_stats"));
        node.stop().unwrap();
    }

    #[test]
    fn malformed_frames_get_a_typed_error_reply() {
        use std::io::{Read, Write};
        let node = start();
        let mut conn = TcpStream::connect(node.local_addr()).unwrap();
        // Valid header with an unknown kind byte and empty body.
        let mut header = [0u8; crate::protocol::HEADER_LEN];
        header[0..2].copy_from_slice(&crate::protocol::MAGIC.to_le_bytes());
        header[2] = crate::protocol::VERSION;
        header[3] = 0x60;
        conn.write_all(&header).unwrap();
        let resp = crate::protocol::read_response(&mut conn).unwrap();
        assert!(matches!(
            resp,
            Response::Error(RemoteError::BadRequest { .. })
        ));
        // The server closed the connection after the error reply.
        let mut rest = Vec::new();
        conn.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        node.stop().unwrap();
    }
}
