//! Cluster-wide scraping: one merged view over every daemon's stats.
//!
//! A [`ClusterMonitor`] polls each node in an endpoint table with a
//! `GetStats` frame — a fresh dial per scrape, so the monitor sees exactly
//! what a new client would — and keeps the latest [`NodeStats`] snapshot per
//! node.  [`ClusterMonitor::merged_registry`] folds the latest snapshots into
//! one [`MetricsRegistry`] whose every series carries a `("node", name)`
//! label, so per-node rates and latencies sit side by side in one export.
//!
//! Health is judged per node from scrape history: a node that has never
//! answered is **unreachable**; one that answered before but failed its
//! latest scrape is **stale** (it may be briefly overloaded or freshly
//! dead — the distinction matters to a dashboard).  Scraping is read-only by
//! construction: `GetStats` is excluded from node-side instrumentation, so
//! repeated scrapes of an idle ring render byte-identical JSON — the
//! determinism the monitor tests pin down.

use crate::gateway::NodeEndpoint;
use crate::protocol::{NodeStats, Request, Response};
use crate::server::call;
use peerstripe_overlay::{Id, NodeRef};
use peerstripe_telemetry::MetricsRegistry;
use serde::Serialize;
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::time::Duration;

/// Monitor tunables.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Dial timeout and per-scrape socket read/write timeout.
    pub timeout: Duration,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            timeout: Duration::from_secs(5),
        }
    }
}

/// One node's scrape health, as the monitor sees it.
#[derive(Debug, Clone, Serialize)]
pub struct NodeHealth {
    /// The node's reference (its index in the endpoint table).
    pub node: NodeRef,
    /// The node's name under the shared `node-<i>` convention.
    pub name: String,
    /// The node's overlay identifier.
    pub id: Id,
    /// True when the latest scrape round reached the node.
    pub live: bool,
    /// True when no scrape round has ever reached the node.
    pub unreachable: bool,
    /// True when the node answered before but failed its latest scrape.
    pub stale: bool,
    /// Successful scrapes so far.
    pub scrapes: u64,
}

/// Per-node scrape state.
struct ScrapeState {
    endpoint: NodeEndpoint,
    scrapes: u64,
    last_ok: bool,
    latest: Option<NodeStats>,
}

/// Scrapes every daemon's `Stats` and merges them into one labelled view.
pub struct ClusterMonitor {
    states: BTreeMap<NodeRef, ScrapeState>,
    timeout: Duration,
    rounds: u64,
}

impl ClusterMonitor {
    /// A monitor over the given endpoints.  No connection is made until the
    /// first [`scrape_round`](ClusterMonitor::scrape_round).
    pub fn new(endpoints: &[NodeEndpoint], config: MonitorConfig) -> ClusterMonitor {
        let states = endpoints
            .iter()
            .map(|ep| {
                (
                    ep.node,
                    ScrapeState {
                        endpoint: *ep,
                        scrapes: 0,
                        last_ok: false,
                        latest: None,
                    },
                )
            })
            .collect();
        ClusterMonitor {
            states,
            timeout: config.timeout,
            rounds: 0,
        }
    }

    /// Scrape one node with a fresh connection.
    fn scrape_one(&self, endpoint: &NodeEndpoint) -> Option<NodeStats> {
        let stream = TcpStream::connect_timeout(&endpoint.addr, self.timeout).ok()?;
        let _ = stream.set_read_timeout(Some(self.timeout));
        let _ = stream.set_write_timeout(Some(self.timeout));
        let mut stream = stream;
        match call(&mut stream, &Request::GetStats) {
            Ok(Response::Stats { stats }) => Some(*stats),
            _ => None,
        }
    }

    /// Scrape every node once; returns how many answered this round.
    pub fn scrape_round(&mut self) -> usize {
        self.rounds += 1;
        let mut reached = 0;
        let endpoints: Vec<NodeEndpoint> = self.states.values().map(|s| s.endpoint).collect();
        for ep in endpoints {
            let result = self.scrape_one(&ep);
            let Some(state) = self.states.get_mut(&ep.node) else {
                continue;
            };
            match result {
                Some(stats) => {
                    state.scrapes += 1;
                    state.last_ok = true;
                    state.latest = Some(stats);
                    reached += 1;
                }
                None => state.last_ok = false,
            }
        }
        reached
    }

    /// Scrape rounds run so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Per-node health, in node order.
    pub fn health(&self) -> Vec<NodeHealth> {
        self.states
            .iter()
            .map(|(&node, state)| NodeHealth {
                node,
                name: format!("node-{node}"),
                id: state.endpoint.id,
                live: state.last_ok,
                unreachable: state.scrapes == 0,
                stale: state.scrapes > 0 && !state.last_ok,
                scrapes: state.scrapes,
            })
            .collect()
    }

    /// Nodes no scrape round has ever reached.
    pub fn unreachable(&self) -> Vec<NodeRef> {
        self.health()
            .into_iter()
            .filter(|h| h.unreachable)
            .map(|h| h.node)
            .collect()
    }

    /// Nodes that answered before but failed their latest scrape.
    pub fn stale(&self) -> Vec<NodeRef> {
        self.health()
            .into_iter()
            .filter(|h| h.stale)
            .map(|h| h.node)
            .collect()
    }

    /// The latest snapshot scraped from a node, if any round reached it.
    pub fn latest(&self, node: NodeRef) -> Option<&NodeStats> {
        self.states.get(&node).and_then(|s| s.latest.as_ref())
    }

    /// Merge the latest snapshot of every scraped node into one registry,
    /// each series labelled `("node", "node-<i>")`.  Built from the latest
    /// snapshots only (not accumulated across rounds), so two scrapes of an
    /// idle ring merge to the same registry.
    pub fn merged_registry(&self) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        for (node, state) in &self.states {
            if let Some(stats) = &state.latest {
                let name = format!("node-{node}");
                merged.absorb_export(&stats.metrics, &[("node", &name)]);
            }
        }
        merged
    }

    /// The merged registry as one line of deterministic JSON.
    pub fn render_merged_json(&self) -> String {
        self.merged_registry().render_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeConfig, NodeService};
    use crate::server::{NodeServer, RunningNode, ServerConfig};
    use peerstripe_sim::ByteSize;

    fn ring_of(n: usize) -> (Vec<RunningNode>, Vec<NodeEndpoint>) {
        let mut nodes = Vec::new();
        let mut endpoints = Vec::new();
        for i in 0..n {
            let name = format!("node-{i}");
            let service = NodeService::new(&NodeConfig::named(&name, ByteSize::mb(16)));
            let running = NodeServer::bind("127.0.0.1:0", service, ServerConfig::default())
                .unwrap()
                .spawn();
            endpoints.push(NodeEndpoint {
                node: i,
                id: Id::hash(&name),
                addr: running.local_addr(),
            });
            nodes.push(running);
        }
        (nodes, endpoints)
    }

    #[test]
    fn two_scrapes_of_an_idle_ring_render_byte_identical_json() {
        let (nodes, endpoints) = ring_of(3);
        let mut monitor = ClusterMonitor::new(&endpoints, MonitorConfig::default());
        assert_eq!(monitor.scrape_round(), 3);
        let first = monitor.render_merged_json();
        assert_eq!(monitor.scrape_round(), 3);
        let second = monitor.render_merged_json();
        assert_eq!(first, second, "scraping must not perturb what it reads");
        assert!(monitor.unreachable().is_empty());
        assert!(monitor.stale().is_empty());
        // Every node's series carry the node label.
        let merged = monitor.merged_registry();
        for i in 0..3 {
            let name = format!("node-{i}");
            assert_eq!(
                merged.find_counter("node_requests_total", &[("op", "ping"), ("node", &name)]),
                Some(0)
            );
        }
        for n in nodes {
            n.stop().unwrap();
        }
    }

    #[test]
    fn dead_nodes_are_flagged_unreachable_or_stale() {
        let (mut nodes, endpoints) = ring_of(3);
        // Node 2 dies before the first round: never scraped => unreachable.
        nodes.remove(2).stop().unwrap();
        let mut monitor = ClusterMonitor::new(&endpoints, MonitorConfig::default());
        assert_eq!(monitor.scrape_round(), 2);
        assert_eq!(monitor.unreachable(), vec![2]);
        assert!(monitor.stale().is_empty());
        // Node 1 dies after answering once => stale, not unreachable.
        nodes.remove(1).stop().unwrap();
        assert_eq!(monitor.scrape_round(), 1);
        assert_eq!(monitor.unreachable(), vec![2]);
        assert_eq!(monitor.stale(), vec![1]);
        let health = monitor.health();
        assert!(health[0].live && health[0].scrapes == 2);
        assert!(!health[1].live && health[1].scrapes == 1);
        for n in nodes {
            n.stop().unwrap();
        }
    }
}
