//! A localhost ring of real `peerstripe-node` processes.
//!
//! [`LocalRing::spawn`] launches N daemons on ephemeral ports, reads each
//! one's `listening on ADDR` line to learn where it landed, and hands out the
//! matching [`NodeEndpoint`] table.  Node identifiers follow the shared
//! convention `Id::hash("node-<i>")`, so the gateway's membership ring is
//! reproducible from the node count alone.  [`LocalRing::kill`] terminates
//! one daemon with a real signal — the failure the recovery path is then
//! exercised against.

use crate::gateway::{GatewayConfig, NodeEndpoint, RingGateway};
use peerstripe_overlay::{Id, NodeRef};
use peerstripe_sim::ByteSize;
use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// One spawned daemon process.
struct RingMember {
    endpoint: NodeEndpoint,
    child: Option<Child>,
}

/// A ring of localhost daemon processes, killed on drop.
pub struct LocalRing {
    members: Vec<RingMember>,
}

impl LocalRing {
    /// Spawn `n` daemons of `capacity` each from the `peerstripe-node`
    /// binary at `bin`.
    pub fn spawn(bin: &Path, n: usize, capacity: ByteSize) -> io::Result<LocalRing> {
        let mut members = Vec::with_capacity(n);
        for i in 0..n {
            let name = format!("node-{i}");
            let mut child = Command::new(bin)
                .arg("--listen")
                .arg("127.0.0.1:0")
                .arg("--id")
                .arg(&name)
                .arg("--capacity-mb")
                .arg(capacity.as_u64().div_ceil(1024 * 1024).to_string())
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()?;
            let addr = read_listen_line(&mut child)?;
            members.push(RingMember {
                endpoint: NodeEndpoint {
                    node: i,
                    id: Id::hash(&name),
                    addr,
                },
                child: Some(child),
            });
        }
        Ok(LocalRing { members })
    }

    /// Number of daemons spawned (live or killed).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The endpoint table for gateway construction.
    pub fn endpoints(&self) -> Vec<NodeEndpoint> {
        self.members.iter().map(|m| m.endpoint).collect()
    }

    /// Build a gateway over the whole ring.
    pub fn gateway(&self, config: GatewayConfig) -> RingGateway {
        RingGateway::connect(&self.endpoints(), config)
    }

    /// Kill one daemon process (SIGKILL) and reap it.  The gateway keeps
    /// routing to the node until `mark_failed` declares it.
    pub fn kill(&mut self, node: NodeRef) -> io::Result<()> {
        let member = self
            .members
            .get_mut(node)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such ring member"))?;
        if let Some(mut child) = member.child.take() {
            child.kill()?;
            child.wait()?;
        }
        Ok(())
    }

    /// True if the member's process is still running (not yet killed).
    pub fn is_running(&self, node: NodeRef) -> bool {
        self.members
            .get(node)
            .map(|m| m.child.is_some())
            .unwrap_or(false)
    }
}

impl Drop for LocalRing {
    fn drop(&mut self) {
        for member in &mut self.members {
            if let Some(mut child) = member.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Read the daemon's `listening on ADDR` announcement from its stdout.
fn read_listen_line(child: &mut Child) -> io::Result<SocketAddr> {
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| io::Error::other("daemon stdout not captured"))?;
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .and_then(|a| a.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("daemon announced {line:?}, expected `listening on ADDR`"),
            )
        })?;
    Ok(addr)
}

/// Locate the `peerstripe-node` binary for harnesses that are not in the
/// daemon's own package: the `PEERSTRIPE_NODE_BIN` environment variable wins,
/// otherwise the binary is looked for next to the current executable (cargo
/// puts example/test binaries in `target/<profile>/…` alongside it).
pub fn node_binary() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("PEERSTRIPE_NODE_BIN") {
        let p = PathBuf::from(path);
        return p.exists().then_some(p);
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?;
    for _ in 0..2 {
        let candidate = dir.join("peerstripe-node");
        if candidate.exists() {
            return Some(candidate);
        }
        dir = dir.parent()?;
    }
    None
}
