//! The framed wire format spoken between the gateway and `peerstripe-node`
//! daemons.
//!
//! Every message is one *frame*:
//!
//! ```text
//! [magic u16 LE][version u8][kind u8][meta_len u32 LE][payload_len u32 LE]
//! [meta: meta_len bytes of JSON][payload: payload_len bytes, raw]
//! ```
//!
//! The JSON *meta* section carries the typed message fields (names, keys,
//! sizes) through the vendored serde; block *payload* bytes ride the raw
//! payload section so a stored block is never base64-inflated or JSON-escaped.
//! The header is validated before any body byte is trusted: bad magic, an
//! unsupported version, or a body larger than [`MAX_FRAME`] rejects the frame
//! without allocating for it.
//!
//! The message set is the paper's §3 primitive set: `GetCapacity` (the
//! `getCapacity` probe), `StoreBlock` (chunk store), `FetchBlock` (retrieval),
//! and `RepairRead` (bulk read of a chunk's surviving blocks for
//! regeneration), plus `Ping`, `RemoveBlock` (store rollback), `Shutdown`,
//! and typed error replies.

use peerstripe_core::ObjectName;
use peerstripe_overlay::Id;
use peerstripe_sim::ByteSize;
use peerstripe_telemetry::RegistryExport;
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// First two header bytes of every frame: `"PS"` little-endian.
pub const MAGIC: u16 = 0x5053;
/// Wire protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Maximum accepted frame body (meta + payload), guarding both sides against
/// a corrupt or hostile length field.
pub const MAX_FRAME: u64 = 16 * 1024 * 1024;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Frame kind bytes. Requests have the high bit clear, responses set.
pub mod kind {
    /// Liveness check request.
    pub const PING: u8 = 0x01;
    /// `getCapacity` probe request.
    pub const GET_CAPACITY: u8 = 0x02;
    /// Store one block request.
    pub const STORE_BLOCK: u8 = 0x03;
    /// Fetch one block request.
    pub const FETCH_BLOCK: u8 = 0x04;
    /// Bulk-read a chunk's blocks for regeneration.
    pub const REPAIR_READ: u8 = 0x05;
    /// Remove a block (store rollback).
    pub const REMOVE_BLOCK: u8 = 0x06;
    /// Ask the daemon to shut down gracefully.
    pub const SHUTDOWN: u8 = 0x07;
    /// Ask for the daemon's metrics snapshot and recent-request log.
    pub const GET_STATS: u8 = 0x08;
    /// Reply to [`PING`].
    pub const PONG: u8 = 0x81;
    /// Reply to [`GET_CAPACITY`].
    pub const CAPACITY: u8 = 0x82;
    /// Success reply to [`STORE_BLOCK`].
    pub const STORED: u8 = 0x83;
    /// Reply to [`FETCH_BLOCK`].
    pub const BLOCK: u8 = 0x84;
    /// Reply to [`REPAIR_READ`].
    pub const REPAIR_BLOCKS: u8 = 0x85;
    /// Reply to [`REMOVE_BLOCK`].
    pub const REMOVED: u8 = 0x86;
    /// Reply to [`SHUTDOWN`].
    pub const SHUTTING_DOWN: u8 = 0x87;
    /// Reply to [`GET_STATS`].
    pub const STATS: u8 = 0x88;
    /// Typed error reply (any request).
    pub const ERROR: u8 = 0xFF;
}

/// Everything that can go wrong reading or writing a frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The stream ended inside a frame.
    Truncated,
    /// The first two bytes were not [`MAGIC`].
    BadMagic(u16),
    /// The peer speaks a protocol version this build does not.
    Version(u8),
    /// The declared body length exceeds [`MAX_FRAME`].
    Oversized(u64),
    /// The kind byte names no known message.
    UnknownKind(u8),
    /// The meta section failed to parse as the expected message.
    Body(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Truncated => write!(f, "stream ended inside a frame"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            WireError::Version(v) => write!(f, "unsupported protocol version {v}"),
            WireError::Oversized(n) => {
                write!(
                    f,
                    "frame body of {n} bytes exceeds the {MAX_FRAME}-byte limit"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k:#04x}"),
            WireError::Body(e) => write!(f, "malformed message body: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

impl WireError {
    /// True for transport-level failures where reconnecting may help, as
    /// opposed to protocol violations where it will not.
    pub fn is_transport(&self) -> bool {
        matches!(self, WireError::Io(_) | WireError::Truncated)
    }

    /// A stable label for the error's variant, used as the `kind` label on
    /// `gateway_rpc_errors` so wire errors stay distinguishable from node
    /// refusals in merged telemetry.
    pub fn kind_label(&self) -> &'static str {
        match self {
            WireError::Io(_) => "io",
            WireError::Truncated => "truncated",
            WireError::BadMagic(_) => "bad_magic",
            WireError::Version(_) => "version",
            WireError::Oversized(_) => "oversized",
            WireError::UnknownKind(_) => "unknown_kind",
            WireError::Body(_) => "body",
        }
    }
}

/// A request the gateway sends to a node daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// The paper's `getCapacity` probe: how much space will you accept?
    GetCapacity,
    /// Store a block under `key`; the payload travels in the frame's raw
    /// payload section.
    StoreBlock {
        /// Overlay key the object is stored under.
        key: Id,
        /// The object's name.
        name: ObjectName,
        /// Size charged against the node's capacity.
        size: ByteSize,
        /// Block bytes (absent on the metadata-only placement path).
        payload: Option<Vec<u8>>,
    },
    /// Fetch the block stored under `name`'s key.
    FetchBlock {
        /// The object's name.
        name: ObjectName,
    },
    /// Read every surviving block of `(file, chunk)` this node holds — the
    /// bulk read regeneration starts from.
    RepairRead {
        /// The file the chunk belongs to.
        file: String,
        /// The chunk number.
        chunk: u32,
    },
    /// Undo a store: remove the object, or release `size` reserved bytes if
    /// the object is not tracked.
    RemoveBlock {
        /// The object's name.
        name: ObjectName,
        /// Size to release when the object itself is unknown.
        size: ByteSize,
    },
    /// Ask the daemon to finish in-flight requests and exit.
    Shutdown,
    /// Ask for the node's metrics snapshot and recent-request log.
    GetStats,
}

/// Why a node refused a request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemoteError {
    /// The node does not have the space (`StoreBlock`).
    InsufficientSpace,
    /// An object with the same key is already stored (`StoreBlock`).
    AlreadyStored,
    /// The request could not be understood.
    BadRequest {
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::InsufficientSpace => write!(f, "insufficient space on the node"),
            RemoteError::AlreadyStored => {
                write!(f, "an object with the same key is already stored")
            }
            RemoteError::BadRequest { detail } => write!(f, "bad request: {detail}"),
        }
    }
}

/// One finished request in a node's bounded recent-request log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpLogEntry {
    /// The request id the caller threaded through the frame meta; `None`
    /// when the request was untraced.
    pub request_id: Option<u64>,
    /// Wire operation name (`store_block`, `fetch_block`, ...).
    pub op: String,
    /// How long handling took, in milliseconds.
    pub duration_ms: f64,
    /// `"ok"` or a typed error kind (`insufficient_space`, ...).
    pub outcome: String,
    /// True when `duration_ms` crossed the node's slow-request threshold.
    pub slow: bool,
}

impl OpLogEntry {
    /// True when the request completed without a typed error.
    pub fn is_ok(&self) -> bool {
        self.outcome == "ok"
    }
}

/// A node daemon's self-reported observability snapshot: identity, store
/// occupancy, the full metrics-registry export, and the tail of its
/// recent-request log.  Carried by [`Response::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    /// The reporting node's overlay identifier.
    pub node: Id,
    /// Contributed capacity.
    pub capacity: ByteSize,
    /// Bytes currently charged against the capacity.
    pub used: ByteSize,
    /// Objects currently stored.
    pub objects: u64,
    /// The node's metrics registry (per-op counters, latency histograms,
    /// byte counters, occupancy gauge, typed-error counters).
    pub metrics: RegistryExport,
    /// The bounded recent-request log, oldest first.
    pub op_log: Vec<OpLogEntry>,
}

/// One block returned by a [`Request::RepairRead`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairBlock {
    /// The block's name.
    pub name: ObjectName,
    /// The block's recorded size.
    pub size: ByteSize,
    /// The block's payload bytes, when the byte path stored any.
    pub payload: Option<Vec<u8>>,
}

/// A reply a node daemon sends back to the gateway.
///
/// `PartialEq` only (no `Eq`): [`Response::Stats`] carries float-valued
/// telemetry.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`], carrying the node's overlay id.
    Pong {
        /// The responding node's identifier.
        node: Id,
    },
    /// Reply to [`Request::GetCapacity`]: the advertised free space.  The
    /// space is *not* reserved (Section 4.3 of the paper).
    Capacity {
        /// Free space the node is willing to devote to one block.
        free: ByteSize,
    },
    /// The block was stored.
    Stored,
    /// Reply to [`Request::FetchBlock`]; `None` when the node does not hold
    /// the object.
    Block {
        /// The found block's size and payload.
        block: Option<(ByteSize, Option<Vec<u8>>)>,
    },
    /// Reply to [`Request::RepairRead`]: every matching block on the node.
    RepairBlocks {
        /// The surviving blocks, in stored-key order.
        blocks: Vec<RepairBlock>,
    },
    /// The block was removed (or its space released).
    Removed,
    /// The daemon acknowledges the shutdown request and will exit.
    ShuttingDown,
    /// Reply to [`Request::GetStats`]: the node's observability snapshot.
    Stats {
        /// Metrics, occupancy, and the recent-request log.
        stats: Box<NodeStats>,
    },
    /// The request was refused.
    Error(RemoteError),
}

// Per-variant meta records: the kind byte discriminates the message, so each
// frame's JSON carries only that variant's fields.

#[derive(Serialize, Deserialize)]
struct StoreBlockMeta {
    key: Id,
    name: ObjectName,
    size: ByteSize,
    has_payload: bool,
}

#[derive(Serialize, Deserialize)]
struct FetchBlockMeta {
    name: ObjectName,
}

#[derive(Serialize, Deserialize)]
struct RepairReadMeta {
    file: String,
    chunk: u32,
}

#[derive(Serialize, Deserialize)]
struct RemoveBlockMeta {
    name: ObjectName,
    size: ByteSize,
}

#[derive(Serialize, Deserialize)]
struct PongMeta {
    node: Id,
}

#[derive(Serialize, Deserialize)]
struct CapacityMeta {
    free: ByteSize,
}

#[derive(Serialize, Deserialize)]
struct BlockMeta {
    found: bool,
    size: ByteSize,
    has_payload: bool,
}

#[derive(Serialize, Deserialize)]
struct RepairBlockMeta {
    name: ObjectName,
    size: ByteSize,
    /// Length of this block's slice of the frame payload; `None` when the
    /// block carries no payload (metadata-only path).
    payload_len: Option<u64>,
}

#[derive(Serialize, Deserialize)]
struct RepairBlocksMeta {
    blocks: Vec<RepairBlockMeta>,
}

/// The meta-JSON key an optional request id travels under.  Request ids make
/// every RPC correlatable between the gateway's and the node's op logs; a
/// frame without the key is simply untraced, so old and new peers interoperate
/// (the typed meta parsers ignore unknown fields).
const RID_KEY: &str = "rid";

/// Render a frame's meta section: the message's typed fields as a JSON
/// object (or `None` for field-less messages), with the optional request id
/// spliced in as an extra `"rid"` field.  Untraced field-less frames keep the
/// zero-byte meta section older peers expect.
fn render_meta(meta: Option<Value>, rid: Option<u64>) -> Result<String, WireError> {
    let value = match (meta, rid) {
        (None, None) => return Ok(String::new()),
        (Some(v), None) => v,
        (meta, Some(id)) => {
            let mut fields = match meta {
                Some(Value::Obj(fields)) => fields,
                None => Vec::new(),
                Some(_) => {
                    return Err(WireError::Body(
                        "request ids require an object-shaped meta".to_string(),
                    ))
                }
            };
            fields.push((RID_KEY.to_string(), Value::Num(id.to_string())));
            Value::Obj(fields)
        }
    };
    serde_json::to_string(&value).map_err(|e| WireError::Body(e.to_string()))
}

/// Parse a frame's meta section and strip the optional request id out of it,
/// leaving the typed fields for the per-kind parsers.  Non-object metas (the
/// error reply's enum encoding) pass through untouched and untraced.
fn split_meta(meta: &str) -> Result<(Value, Option<u64>), WireError> {
    if meta.is_empty() {
        return Ok((Value::Obj(Vec::new()), None));
    }
    let value: Value = serde_json::from_str(meta).map_err(|e| WireError::Body(e.to_string()))?;
    let Value::Obj(mut fields) = value else {
        return Ok((value, None));
    };
    let rid = match fields.iter().position(|(k, _)| k == RID_KEY) {
        Some(i) => match fields.remove(i).1 {
            Value::Num(n) => Some(
                n.parse::<u64>()
                    .map_err(|_| WireError::Body(format!("bad request id {n:?}")))?,
            ),
            Value::Null => None,
            _ => return Err(WireError::Body("request id is not a number".to_string())),
        },
        None => None,
    };
    Ok((Value::Obj(fields), rid))
}

fn meta_value<T: Serialize>(meta: &T) -> Option<Value> {
    Some(meta.to_value())
}

fn parse_meta<T: Deserialize>(v: &Value) -> Result<T, WireError> {
    T::from_value(v).map_err(|e| WireError::Body(e.to_string()))
}

/// Write one raw frame.
fn write_frame(w: &mut impl Write, kind: u8, meta: &str, payload: &[u8]) -> Result<(), WireError> {
    let meta_len = meta.len() as u64;
    let payload_len = payload.len() as u64;
    if meta_len + payload_len > MAX_FRAME {
        return Err(WireError::Oversized(meta_len + payload_len));
    }
    let mut header = [0u8; HEADER_LEN];
    header[0..2].copy_from_slice(&MAGIC.to_le_bytes());
    header[2] = VERSION;
    header[3] = kind;
    header[4..8].copy_from_slice(&(meta_len as u32).to_le_bytes());
    header[8..12].copy_from_slice(&(payload_len as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(meta.as_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one raw frame: validated header, then `(kind, meta, payload)`.
fn read_frame(r: &mut impl Read) -> Result<(u8, String, Vec<u8>), WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic = u16::from_le_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if header[2] != VERSION {
        return Err(WireError::Version(header[2]));
    }
    let kind = header[3];
    let meta_len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as u64;
    let payload_len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as u64;
    if meta_len + payload_len > MAX_FRAME {
        return Err(WireError::Oversized(meta_len + payload_len));
    }
    let mut meta_bytes = vec![0u8; meta_len as usize];
    r.read_exact(&mut meta_bytes)?;
    let meta = String::from_utf8(meta_bytes)
        .map_err(|_| WireError::Body("meta section is not UTF-8".to_string()))?;
    let mut payload = vec![0u8; payload_len as usize];
    r.read_exact(&mut payload)?;
    Ok((kind, meta, payload))
}

/// Serialize and write one request frame (untraced).
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), WireError> {
    write_request_traced(w, req, None)
}

/// Serialize and write one request frame, threading an optional request id
/// through the frame meta.
pub fn write_request_traced(
    w: &mut impl Write,
    req: &Request,
    rid: Option<u64>,
) -> Result<(), WireError> {
    let (kind_byte, meta, payload): (u8, Option<Value>, &[u8]) = match req {
        Request::Ping => (kind::PING, None, &[]),
        Request::GetCapacity => (kind::GET_CAPACITY, None, &[]),
        Request::StoreBlock {
            key,
            name,
            size,
            payload,
        } => (
            kind::STORE_BLOCK,
            meta_value(&StoreBlockMeta {
                key: *key,
                name: name.clone(),
                size: *size,
                has_payload: payload.is_some(),
            }),
            payload.as_deref().unwrap_or(&[]),
        ),
        Request::FetchBlock { name } => (
            kind::FETCH_BLOCK,
            meta_value(&FetchBlockMeta { name: name.clone() }),
            &[],
        ),
        Request::RepairRead { file, chunk } => (
            kind::REPAIR_READ,
            meta_value(&RepairReadMeta {
                file: file.clone(),
                chunk: *chunk,
            }),
            &[],
        ),
        Request::RemoveBlock { name, size } => (
            kind::REMOVE_BLOCK,
            meta_value(&RemoveBlockMeta {
                name: name.clone(),
                size: *size,
            }),
            &[],
        ),
        Request::Shutdown => (kind::SHUTDOWN, None, &[]),
        Request::GetStats => (kind::GET_STATS, None, &[]),
    };
    let meta = render_meta(meta, rid)?;
    write_frame(w, kind_byte, &meta, payload)
}

/// Read and parse one request frame, dropping any request id.
pub fn read_request(r: &mut impl Read) -> Result<Request, WireError> {
    read_request_traced(r).map(|(req, _)| req)
}

/// Read and parse one request frame along with the optional request id the
/// sender threaded through the meta (`None` = untraced).
pub fn read_request_traced(r: &mut impl Read) -> Result<(Request, Option<u64>), WireError> {
    let (kind_byte, meta, payload) = read_frame(r)?;
    let (meta, rid) = split_meta(&meta)?;
    let req = match kind_byte {
        kind::PING => Request::Ping,
        kind::GET_CAPACITY => Request::GetCapacity,
        kind::STORE_BLOCK => {
            let m: StoreBlockMeta = parse_meta(&meta)?;
            Request::StoreBlock {
                key: m.key,
                name: m.name,
                size: m.size,
                payload: m.has_payload.then_some(payload),
            }
        }
        kind::FETCH_BLOCK => {
            let m: FetchBlockMeta = parse_meta(&meta)?;
            Request::FetchBlock { name: m.name }
        }
        kind::REPAIR_READ => {
            let m: RepairReadMeta = parse_meta(&meta)?;
            Request::RepairRead {
                file: m.file,
                chunk: m.chunk,
            }
        }
        kind::REMOVE_BLOCK => {
            let m: RemoveBlockMeta = parse_meta(&meta)?;
            Request::RemoveBlock {
                name: m.name,
                size: m.size,
            }
        }
        kind::SHUTDOWN => Request::Shutdown,
        kind::GET_STATS => Request::GetStats,
        other => return Err(WireError::UnknownKind(other)),
    };
    Ok((req, rid))
}

/// Serialize and write one response frame (untraced).
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), WireError> {
    write_response_traced(w, resp, None)
}

/// Serialize and write one response frame, echoing the request id of the
/// request it answers.  Error replies stay untraced on the wire: their meta
/// is the error enum's encoding, not an extendable object — the caller
/// already knows which request the reply answers (one in flight per
/// connection).
pub fn write_response_traced(
    w: &mut impl Write,
    resp: &Response,
    rid: Option<u64>,
) -> Result<(), WireError> {
    match resp {
        Response::Pong { node } => {
            let meta = render_meta(meta_value(&PongMeta { node: *node }), rid)?;
            write_frame(w, kind::PONG, &meta, &[])
        }
        Response::Capacity { free } => {
            let meta = render_meta(meta_value(&CapacityMeta { free: *free }), rid)?;
            write_frame(w, kind::CAPACITY, &meta, &[])
        }
        Response::Stored => write_frame(w, kind::STORED, &render_meta(None, rid)?, &[]),
        Response::Block { block } => {
            let (found, size, payload) = match block {
                Some((size, payload)) => (true, *size, payload.as_deref()),
                None => (false, ByteSize::ZERO, None),
            };
            let meta = render_meta(
                meta_value(&BlockMeta {
                    found,
                    size,
                    has_payload: payload.is_some(),
                }),
                rid,
            )?;
            write_frame(w, kind::BLOCK, &meta, payload.unwrap_or(&[]))
        }
        Response::RepairBlocks { blocks } => {
            let mut joined = Vec::new();
            let metas: Vec<RepairBlockMeta> = blocks
                .iter()
                .map(|b| {
                    if let Some(p) = &b.payload {
                        joined.extend_from_slice(p);
                    }
                    RepairBlockMeta {
                        name: b.name.clone(),
                        size: b.size,
                        payload_len: b.payload.as_ref().map(|p| p.len() as u64),
                    }
                })
                .collect();
            let meta = render_meta(meta_value(&RepairBlocksMeta { blocks: metas }), rid)?;
            write_frame(w, kind::REPAIR_BLOCKS, &meta, &joined)
        }
        Response::Removed => write_frame(w, kind::REMOVED, &render_meta(None, rid)?, &[]),
        Response::ShuttingDown => {
            write_frame(w, kind::SHUTTING_DOWN, &render_meta(None, rid)?, &[])
        }
        Response::Stats { stats } => {
            let meta = render_meta(meta_value(stats.as_ref()), rid)?;
            write_frame(w, kind::STATS, &meta, &[])
        }
        Response::Error(e) => {
            let meta = render_meta(meta_value(e), None)?;
            write_frame(w, kind::ERROR, &meta, &[])
        }
    }
}

/// Read and parse one response frame, dropping any echoed request id.
pub fn read_response(r: &mut impl Read) -> Result<Response, WireError> {
    read_response_traced(r).map(|(resp, _)| resp)
}

/// Read and parse one response frame along with the optional request id the
/// responder echoed (`None` = untraced; error replies are always untraced).
pub fn read_response_traced(r: &mut impl Read) -> Result<(Response, Option<u64>), WireError> {
    let (kind_byte, meta, payload) = read_frame(r)?;
    let (meta, rid) = split_meta(&meta)?;
    let resp = read_response_body(kind_byte, &meta, payload)?;
    Ok((resp, rid))
}

fn read_response_body(
    kind_byte: u8,
    meta: &Value,
    payload: Vec<u8>,
) -> Result<Response, WireError> {
    match kind_byte {
        kind::PONG => {
            let m: PongMeta = parse_meta(meta)?;
            Ok(Response::Pong { node: m.node })
        }
        kind::CAPACITY => {
            let m: CapacityMeta = parse_meta(meta)?;
            Ok(Response::Capacity { free: m.free })
        }
        kind::STORED => Ok(Response::Stored),
        kind::BLOCK => {
            let m: BlockMeta = parse_meta(meta)?;
            Ok(Response::Block {
                block: m
                    .found
                    .then_some((m.size, m.has_payload.then_some(payload))),
            })
        }
        kind::REPAIR_BLOCKS => {
            let m: RepairBlocksMeta = parse_meta(meta)?;
            let declared: u64 = m.blocks.iter().filter_map(|b| b.payload_len).sum();
            if declared != payload.len() as u64 {
                return Err(WireError::Body(format!(
                    "repair payload lengths sum to {declared} but frame carries {}",
                    payload.len()
                )));
            }
            let mut offset = 0usize;
            let mut blocks = Vec::with_capacity(m.blocks.len());
            for b in m.blocks {
                let slice = match b.payload_len {
                    Some(len) => {
                        let len = len as usize;
                        let part = payload[offset..offset + len].to_vec();
                        offset += len;
                        Some(part)
                    }
                    None => None,
                };
                blocks.push(RepairBlock {
                    name: b.name,
                    size: b.size,
                    payload: slice,
                });
            }
            Ok(Response::RepairBlocks { blocks })
        }
        kind::REMOVED => Ok(Response::Removed),
        kind::SHUTTING_DOWN => Ok(Response::ShuttingDown),
        kind::STATS => {
            let stats: NodeStats = parse_meta(meta)?;
            Ok(Response::Stats {
                stats: Box::new(stats),
            })
        }
        kind::ERROR => {
            let e: RemoteError = parse_meta(meta)?;
            Ok(Response::Error(e))
        }
        other => Err(WireError::UnknownKind(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_request(req: Request) -> Request {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        read_request(&mut Cursor::new(buf)).unwrap()
    }

    fn roundtrip_response(resp: Response) -> Response {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        read_response(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Ping,
            Request::GetCapacity,
            Request::StoreBlock {
                key: Id::hash("k"),
                name: ObjectName::block("f", 2, 1),
                size: ByteSize::mb(1),
                payload: Some(vec![1, 2, 3]),
            },
            Request::StoreBlock {
                key: Id::hash("k2"),
                name: ObjectName::chunk("g", 0),
                size: ByteSize::kb(4),
                payload: None,
            },
            Request::FetchBlock {
                name: ObjectName::cat("f"),
            },
            Request::RepairRead {
                file: "f".to_string(),
                chunk: 3,
            },
            Request::RemoveBlock {
                name: ObjectName::block("f", 0, 0),
                size: ByteSize::mb(2),
            },
            Request::Shutdown,
            Request::GetStats,
        ];
        for req in reqs {
            assert_eq!(roundtrip_request(req.clone()), req);
        }
    }

    fn sample_stats() -> NodeStats {
        let mut reg = peerstripe_telemetry::MetricsRegistry::new();
        let c = reg.counter("node_requests_total", &[("op", "ping")]);
        reg.inc(c, 3);
        let h = reg.histogram("node_request_latency_ms", &[("op", "ping")], &[1.0, 10.0]);
        reg.observe(h, 0.2);
        NodeStats {
            node: Id::hash("node-0"),
            capacity: ByteSize::mb(64),
            used: ByteSize::kb(96),
            objects: 2,
            metrics: reg.export(),
            op_log: vec![
                OpLogEntry {
                    request_id: Some(7),
                    op: "store_block".to_string(),
                    duration_ms: 0.31,
                    outcome: "ok".to_string(),
                    slow: false,
                },
                OpLogEntry {
                    request_id: None,
                    op: "fetch_block".to_string(),
                    duration_ms: 120.5,
                    outcome: "ok".to_string(),
                    slow: true,
                },
                OpLogEntry {
                    request_id: Some(9),
                    op: "store_block".to_string(),
                    duration_ms: 0.02,
                    outcome: "insufficient_space".to_string(),
                    slow: false,
                },
            ],
        }
    }

    #[test]
    fn stats_frames_round_trip() {
        let resp = Response::Stats {
            stats: Box::new(sample_stats()),
        };
        assert_eq!(roundtrip_response(resp.clone()), resp);
        assert_eq!(roundtrip_request(Request::GetStats), Request::GetStats);
    }

    #[test]
    fn request_ids_round_trip_on_every_kind() {
        let reqs = vec![
            Request::Ping, // field-less: the meta object exists only for the id
            Request::GetStats,
            Request::StoreBlock {
                key: Id::hash("k"),
                name: ObjectName::block("f", 2, 1),
                size: ByteSize::mb(1),
                payload: Some(vec![1, 2, 3]),
            },
            Request::FetchBlock {
                name: ObjectName::cat("f"),
            },
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            let rid = 1000 + i as u64;
            let mut buf = Vec::new();
            write_request_traced(&mut buf, &req, Some(rid)).unwrap();
            let (back, got) = read_request_traced(&mut Cursor::new(buf)).unwrap();
            assert_eq!(back, req);
            assert_eq!(got, Some(rid));
        }
        let resps = vec![
            Response::Stored,
            Response::Pong {
                node: Id::hash("n"),
            },
            Response::Stats {
                stats: Box::new(sample_stats()),
            },
        ];
        for (i, resp) in resps.into_iter().enumerate() {
            let rid = 2000 + i as u64;
            let mut buf = Vec::new();
            write_response_traced(&mut buf, &resp, Some(rid)).unwrap();
            let (back, got) = read_response_traced(&mut Cursor::new(buf)).unwrap();
            assert_eq!(back, resp);
            assert_eq!(got, Some(rid));
        }
    }

    #[test]
    fn absent_request_id_reads_as_untraced() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Ping).unwrap();
        // Untraced field-less frames keep the zero-byte meta of protocol v1.
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 0);
        let (req, rid) = read_request_traced(&mut Cursor::new(buf)).unwrap();
        assert_eq!(req, Request::Ping);
        assert_eq!(rid, None);

        // A traced frame still parses for an id-oblivious reader.
        let mut traced = Vec::new();
        write_request_traced(
            &mut traced,
            &Request::FetchBlock {
                name: ObjectName::cat("f"),
            },
            Some(42),
        )
        .unwrap();
        assert_eq!(
            read_request(&mut Cursor::new(traced)).unwrap(),
            Request::FetchBlock {
                name: ObjectName::cat("f"),
            }
        );
    }

    #[test]
    fn error_replies_are_never_traced() {
        let mut buf = Vec::new();
        write_response_traced(
            &mut buf,
            &Response::Error(RemoteError::InsufficientSpace),
            Some(7),
        )
        .unwrap();
        let (resp, rid) = read_response_traced(&mut Cursor::new(buf)).unwrap();
        assert_eq!(resp, Response::Error(RemoteError::InsufficientSpace));
        assert_eq!(rid, None, "error metas cannot carry a request id");
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Pong {
                node: Id::hash("n"),
            },
            Response::Capacity {
                free: ByteSize::gb(3),
            },
            Response::Stored,
            Response::Block { block: None },
            Response::Block {
                block: Some((ByteSize::mb(1), Some(vec![9, 8, 7]))),
            },
            Response::Block {
                block: Some((ByteSize::mb(1), None)),
            },
            Response::RepairBlocks {
                blocks: vec![
                    RepairBlock {
                        name: ObjectName::block("f", 0, 0),
                        size: ByteSize::kb(1),
                        payload: Some(vec![1, 2]),
                    },
                    RepairBlock {
                        name: ObjectName::block("f", 0, 1),
                        size: ByteSize::kb(1),
                        payload: None,
                    },
                    RepairBlock {
                        name: ObjectName::block("f", 0, 2),
                        size: ByteSize::kb(1),
                        payload: Some(vec![3, 4, 5]),
                    },
                ],
            },
            Response::Removed,
            Response::ShuttingDown,
            Response::Error(RemoteError::InsufficientSpace),
            Response::Error(RemoteError::AlreadyStored),
            Response::Error(RemoteError::BadRequest {
                detail: "nope".to_string(),
            }),
        ];
        for resp in resps {
            assert_eq!(roundtrip_response(resp.clone()), resp);
        }
    }

    #[test]
    fn bad_magic_is_rejected_before_the_body() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Ping).unwrap();
        buf[0] = 0x00;
        match read_request(&mut Cursor::new(buf)) {
            Err(WireError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Ping).unwrap();
        buf[2] = VERSION + 1;
        match read_request(&mut Cursor::new(buf)) {
            Err(WireError::Version(v)) => assert_eq!(v, VERSION + 1),
            other => panic!("expected Version, got {other:?}"),
        }
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocation() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Ping).unwrap();
        // Declare a payload far past MAX_FRAME; no such bytes follow.
        buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        match read_request(&mut Cursor::new(buf)) {
            Err(WireError::Oversized(n)) => assert!(n > MAX_FRAME),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &Request::StoreBlock {
                key: Id::hash("k"),
                name: ObjectName::block("f", 0, 0),
                size: ByteSize::mb(1),
                payload: Some(vec![0; 64]),
            },
        )
        .unwrap();
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 3, buf.len() - 1] {
            match read_request(&mut Cursor::new(&buf[..cut])) {
                Err(WireError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_kind_bytes_are_rejected() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Ping).unwrap();
        buf[3] = 0x70;
        match read_request(&mut Cursor::new(buf.clone())) {
            Err(WireError::UnknownKind(0x70)) => {}
            other => panic!("expected UnknownKind, got {other:?}"),
        }
        // A response kind is unknown to the request reader and vice versa.
        let mut pong = Vec::new();
        write_response(
            &mut pong,
            &Response::Pong {
                node: Id::hash("n"),
            },
        )
        .unwrap();
        assert!(matches!(
            read_request(&mut Cursor::new(pong)),
            Err(WireError::UnknownKind(k)) if k == kind::PONG
        ));
    }

    #[test]
    fn oversized_writes_are_refused() {
        let req = Request::StoreBlock {
            key: Id::hash("k"),
            name: ObjectName::block("f", 0, 0),
            size: ByteSize::mb(32),
            payload: Some(vec![0u8; MAX_FRAME as usize + 1]),
        };
        let mut buf = Vec::new();
        assert!(matches!(
            write_request(&mut buf, &req),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn repair_payload_length_mismatch_is_rejected() {
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            &Response::RepairBlocks {
                blocks: vec![RepairBlock {
                    name: ObjectName::block("f", 0, 0),
                    size: ByteSize::kb(1),
                    payload: Some(vec![1, 2, 3, 4]),
                }],
            },
        )
        .unwrap();
        // Corrupt the payload length in the frame header: shrink by one byte
        // and drop the final payload byte so the frame still reads fully.
        let payload_len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        buf[8..12].copy_from_slice(&(payload_len - 1).to_le_bytes());
        buf.pop();
        assert!(matches!(
            read_response(&mut Cursor::new(buf)),
            Err(WireError::Body(_))
        ));
    }
}
