//! The per-node daemon's service logic: a [`NodeService`] owns one
//! [`StorageNode`] — the same node-local store the simulator gives every
//! cluster member — and answers the wire protocol's requests against it.
//!
//! Keeping the service separate from the TCP plumbing means the exact same
//! request handling is exercised in-process by unit tests and over real
//! sockets by the daemon.

use crate::protocol::{RemoteError, RepairBlock, Request, Response};
use peerstripe_core::{NodeStoreError, StoredObject};
use peerstripe_overlay::Id;
use peerstripe_sim::ByteSize;

/// Configuration of one node daemon.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The node's overlay identifier.
    pub id: Id,
    /// Contributed capacity.
    pub capacity: ByteSize,
    /// Fraction of free space a `getCapacity` reply advertises (Section 4.3).
    pub report_fraction: f64,
}

impl NodeConfig {
    /// A node named by hashing `name` into the id space — the convention the
    /// localhost ring harness and the daemon CLI share, so a gateway can
    /// recompute every daemon's id from its index.
    pub fn named(name: &str, capacity: ByteSize) -> Self {
        NodeConfig {
            id: Id::hash(name),
            capacity,
            report_fraction: 1.0,
        }
    }
}

/// The request handler a daemon serves: one node's storage and identity.
#[derive(Debug)]
pub struct NodeService {
    id: Id,
    store: peerstripe_core::StorageNode,
}

impl NodeService {
    /// Create a service with an empty store.
    pub fn new(config: &NodeConfig) -> Self {
        NodeService {
            id: config.id,
            store: peerstripe_core::StorageNode::new(config.capacity, config.report_fraction, true),
        }
    }

    /// The node's overlay identifier.
    pub fn id(&self) -> Id {
        self.id
    }

    /// The node's store (for inspection in tests and reports).
    pub fn store(&self) -> &peerstripe_core::StorageNode {
        &self.store
    }

    /// Answer one request.  Never fails: malformed or refused operations
    /// produce typed [`Response::Error`] replies.
    pub fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong { node: self.id },
            Request::GetCapacity => Response::Capacity {
                free: self.store.report_capacity(),
            },
            Request::StoreBlock {
                key,
                name,
                size,
                payload,
            } => match self.store.store(
                key,
                StoredObject {
                    name,
                    size,
                    payload,
                },
            ) {
                Ok(()) => Response::Stored,
                Err(NodeStoreError::InsufficientSpace) => {
                    Response::Error(RemoteError::InsufficientSpace)
                }
                Err(NodeStoreError::AlreadyStored) => Response::Error(RemoteError::AlreadyStored),
            },
            Request::FetchBlock { name } => Response::Block {
                block: self
                    .store
                    .get(name.key())
                    .map(|obj| (obj.size, obj.payload.clone())),
            },
            Request::RepairRead { file, chunk } => {
                let blocks = self
                    .store
                    .objects()
                    .filter(|(_, obj)| {
                        obj.name.file() == file && obj.name.chunk_no() == Some(chunk)
                    })
                    .map(|(_, obj)| RepairBlock {
                        name: obj.name.clone(),
                        size: obj.size,
                        payload: obj.payload.clone(),
                    })
                    .collect();
                Response::RepairBlocks { blocks }
            }
            Request::RemoveBlock { name, size } => {
                if self.store.remove(name.key()).is_none() {
                    self.store.release(size);
                }
                Response::Removed
            }
            // The server layer intercepts Shutdown before dispatch; answering
            // here keeps the service total.
            Request::Shutdown => Response::ShuttingDown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerstripe_core::ObjectName;

    fn service() -> NodeService {
        NodeService::new(&NodeConfig::named("node-0", ByteSize::mb(10)))
    }

    #[test]
    fn capacity_store_fetch_remove_cycle() {
        let mut svc = service();
        assert_eq!(
            svc.handle(Request::GetCapacity),
            Response::Capacity {
                free: ByteSize::mb(10)
            }
        );
        let name = ObjectName::block("f", 0, 1);
        let store = Request::StoreBlock {
            key: name.key(),
            name: name.clone(),
            size: ByteSize::mb(2),
            payload: Some(vec![5, 6]),
        };
        assert_eq!(svc.handle(store.clone()), Response::Stored);
        assert_eq!(
            svc.handle(store),
            Response::Error(RemoteError::AlreadyStored)
        );
        assert_eq!(
            svc.handle(Request::FetchBlock { name: name.clone() }),
            Response::Block {
                block: Some((ByteSize::mb(2), Some(vec![5, 6])))
            }
        );
        assert_eq!(
            svc.handle(Request::RemoveBlock {
                name: name.clone(),
                size: ByteSize::mb(2)
            }),
            Response::Removed
        );
        assert_eq!(
            svc.handle(Request::FetchBlock { name }),
            Response::Block { block: None }
        );
        assert_eq!(svc.store().used(), ByteSize::ZERO);
    }

    #[test]
    fn oversized_store_is_refused_with_a_typed_error() {
        let mut svc = service();
        let name = ObjectName::block("f", 0, 0);
        assert_eq!(
            svc.handle(Request::StoreBlock {
                key: name.key(),
                name,
                size: ByteSize::mb(100),
                payload: None,
            }),
            Response::Error(RemoteError::InsufficientSpace)
        );
    }

    #[test]
    fn repair_read_returns_exactly_the_chunks_blocks() {
        let mut svc = service();
        for (file, chunk, ecb) in [("f", 0, 0), ("f", 0, 1), ("f", 1, 0), ("g", 0, 0)] {
            let name = ObjectName::block(file, chunk, ecb);
            svc.handle(Request::StoreBlock {
                key: name.key(),
                name,
                size: ByteSize::kb(1),
                payload: Some(vec![ecb as u8]),
            });
        }
        let resp = svc.handle(Request::RepairRead {
            file: "f".to_string(),
            chunk: 0,
        });
        let Response::RepairBlocks { blocks } = resp else {
            panic!("expected RepairBlocks");
        };
        assert_eq!(blocks.len(), 2);
        assert!(blocks.iter().all(|b| b.name.file() == "f"));
    }

    #[test]
    fn rollback_of_an_unknown_object_releases_reserved_space() {
        let mut svc = service();
        // Reserve space as an untracked charge, then roll it back by size.
        let name = ObjectName::block("f", 0, 0);
        svc.handle(Request::StoreBlock {
            key: name.key(),
            name: name.clone(),
            size: ByteSize::mb(1),
            payload: None,
        });
        svc.handle(Request::RemoveBlock {
            name: ObjectName::block("other", 0, 0),
            size: ByteSize::mb(1),
        });
        assert_eq!(svc.store().used(), ByteSize::ZERO);
    }
}
