//! The per-node daemon's service logic: a [`NodeService`] owns one
//! [`StorageNode`] — the same node-local store the simulator gives every
//! cluster member — and answers the wire protocol's requests against it.
//!
//! Keeping the service separate from the TCP plumbing means the exact same
//! request handling is exercised in-process by unit tests and over real
//! sockets by the daemon.

use crate::gateway::LATENCY_BUCKETS_MS;
use crate::protocol::{NodeStats, OpLogEntry, RemoteError, RepairBlock, Request, Response};
use peerstripe_core::{NodeStoreError, StoredObject};
use peerstripe_overlay::Id;
use peerstripe_sim::ByteSize;
use peerstripe_telemetry::{CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry};
use std::collections::{BTreeMap, VecDeque};

/// The wire operations a node instruments, as metric label values.
/// `get_stats` is deliberately absent: a stats scrape must not perturb the
/// stats it reads, so repeated scrapes of an idle node are byte-identical.
const OPS: &[&str] = &[
    "ping",
    "get_capacity",
    "store_block",
    "fetch_block",
    "repair_read",
    "remove_block",
    "shutdown",
];

/// The typed-error kinds a node counts, pre-registered so the registry's
/// shape does not depend on which errors a run happened to hit.
const ERROR_KINDS: &[&str] = &["insufficient_space", "already_stored", "bad_request"];

/// Configuration of one node daemon.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The node's overlay identifier.
    pub id: Id,
    /// Contributed capacity.
    pub capacity: ByteSize,
    /// Fraction of free space a `getCapacity` reply advertises (Section 4.3).
    pub report_fraction: f64,
    /// How many finished requests the recent-request log retains.
    pub op_log_capacity: usize,
    /// Requests slower than this many milliseconds are flagged slow (in the
    /// op log and the `node_slow_requests_total` counter).
    pub slow_ms: f64,
}

impl NodeConfig {
    /// A node named by hashing `name` into the id space — the convention the
    /// localhost ring harness and the daemon CLI share, so a gateway can
    /// recompute every daemon's id from its index.
    pub fn named(name: &str, capacity: ByteSize) -> Self {
        NodeConfig {
            id: Id::hash(name),
            capacity,
            report_fraction: 1.0,
            op_log_capacity: 1024,
            slow_ms: 100.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct OpHandles {
    total: CounterHandle,
    latency: HistogramHandle,
}

/// The request handler a daemon serves: one node's storage and identity,
/// plus its own observability: a metrics registry (per-op counters and
/// latency histograms, byte counters, an occupancy gauge, typed-error
/// counters) and a bounded log of recent requests.
#[derive(Debug)]
pub struct NodeService {
    id: Id,
    store: peerstripe_core::StorageNode,
    metrics: MetricsRegistry,
    op_handles: BTreeMap<&'static str, OpHandles>,
    error_handles: BTreeMap<&'static str, CounterHandle>,
    bytes_in: CounterHandle,
    bytes_out: CounterHandle,
    slow_total: CounterHandle,
    occupancy: GaugeHandle,
    op_log: VecDeque<OpLogEntry>,
    op_log_capacity: usize,
    slow_ms: f64,
}

impl NodeService {
    /// Create a service with an empty store.
    pub fn new(config: &NodeConfig) -> Self {
        let mut metrics = MetricsRegistry::new();
        let mut op_handles = BTreeMap::new();
        for op in OPS {
            op_handles.insert(
                *op,
                OpHandles {
                    total: metrics.counter("node_requests_total", &[("op", op)]),
                    latency: metrics.histogram(
                        "node_request_latency_ms",
                        &[("op", op)],
                        LATENCY_BUCKETS_MS,
                    ),
                },
            );
        }
        let mut error_handles = BTreeMap::new();
        for kind in ERROR_KINDS {
            error_handles.insert(
                *kind,
                metrics.counter("node_errors_total", &[("kind", kind)]),
            );
        }
        let bytes_in = metrics.counter("node_bytes_in_total", &[]);
        let bytes_out = metrics.counter("node_bytes_out_total", &[]);
        let slow_total = metrics.counter("node_slow_requests_total", &[]);
        let occupancy = metrics.gauge("node_store_occupancy_bytes", &[]);
        NodeService {
            id: config.id,
            store: peerstripe_core::StorageNode::new(config.capacity, config.report_fraction, true),
            metrics,
            op_handles,
            error_handles,
            bytes_in,
            bytes_out,
            slow_total,
            occupancy,
            op_log: VecDeque::new(),
            op_log_capacity: config.op_log_capacity.max(1),
            slow_ms: config.slow_ms,
        }
    }

    /// The node's overlay identifier.
    pub fn id(&self) -> Id {
        self.id
    }

    /// The node's store (for inspection in tests and reports).
    pub fn store(&self) -> &peerstripe_core::StorageNode {
        &self.store
    }

    /// The node's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The recent-request log, oldest first.
    pub fn op_log(&self) -> impl Iterator<Item = &OpLogEntry> {
        self.op_log.iter()
    }

    /// The wire label of a request, for metrics and the op log.
    fn op_name(req: &Request) -> &'static str {
        match req {
            Request::Ping => "ping",
            Request::GetCapacity => "get_capacity",
            Request::StoreBlock { .. } => "store_block",
            Request::FetchBlock { .. } => "fetch_block",
            Request::RepairRead { .. } => "repair_read",
            Request::RemoveBlock { .. } => "remove_block",
            Request::Shutdown => "shutdown",
            Request::GetStats => "get_stats",
        }
    }

    /// The op-log outcome string of a response: `"ok"` or the error kind.
    fn outcome_of(resp: &Response) -> &'static str {
        match resp {
            Response::Error(RemoteError::InsufficientSpace) => "insufficient_space",
            Response::Error(RemoteError::AlreadyStored) => "already_stored",
            Response::Error(RemoteError::BadRequest { .. }) => "bad_request",
            _ => "ok",
        }
    }

    /// Payload bytes a request carries into the node.
    fn payload_in(req: &Request) -> u64 {
        match req {
            Request::StoreBlock {
                payload: Some(p), ..
            } => p.len() as u64,
            _ => 0,
        }
    }

    /// Payload bytes a response carries out of the node.
    fn payload_out(resp: &Response) -> u64 {
        match resp {
            Response::Block {
                block: Some((_, Some(p))),
            } => p.len() as u64,
            Response::RepairBlocks { blocks } => blocks
                .iter()
                .filter_map(|b| b.payload.as_ref())
                .map(|p| p.len() as u64)
                .sum(),
            _ => 0,
        }
    }

    /// Snapshot the node's observability state (the `Stats` reply body).
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            node: self.id,
            capacity: self.store.capacity(),
            used: self.store.used(),
            objects: self.store.object_count(),
            metrics: self.metrics.export(),
            op_log: self.op_log.iter().cloned().collect(),
        }
    }

    /// Answer one request (untraced).
    pub fn handle(&mut self, req: Request) -> Response {
        self.handle_traced(req, None)
    }

    /// Answer one request carrying an optional request id, recording per-op
    /// metrics and an op-log entry.  `GetStats` is answered without touching
    /// either, so a scrape observes the node instead of perturbing it.
    /// Never fails: malformed or refused operations produce typed
    /// [`Response::Error`] replies.
    pub fn handle_traced(&mut self, req: Request, rid: Option<u64>) -> Response {
        if matches!(req, Request::GetStats) {
            return Response::Stats {
                stats: Box::new(self.stats()),
            };
        }
        let op = Self::op_name(&req);
        let in_bytes = Self::payload_in(&req);
        let start = std::time::Instant::now(); // lint:allow(wall-clock) -- node-side request latency is real service time on the network path, mirroring the gateway's waiver
        let resp = self.handle_inner(req);
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        let outcome = Self::outcome_of(&resp);
        let slow = elapsed_ms > self.slow_ms;
        if let Some(h) = self.op_handles.get(op) {
            self.metrics.inc(h.total, 1);
            self.metrics.observe(h.latency, elapsed_ms);
        }
        if outcome != "ok" {
            if let Some(&h) = self.error_handles.get(outcome) {
                self.metrics.inc(h, 1);
            }
        }
        self.metrics.inc(self.bytes_in, in_bytes);
        self.metrics.inc(self.bytes_out, Self::payload_out(&resp));
        if slow {
            self.metrics.inc(self.slow_total, 1);
        }
        self.metrics
            .set(self.occupancy, self.store.used().as_u64() as f64);
        if self.op_log.len() == self.op_log_capacity {
            self.op_log.pop_front();
        }
        self.op_log.push_back(OpLogEntry {
            request_id: rid,
            op: op.to_string(),
            duration_ms: elapsed_ms,
            outcome: outcome.to_string(),
            slow,
        });
        resp
    }

    /// The storage semantics of each request, free of instrumentation.
    fn handle_inner(&mut self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong { node: self.id },
            Request::GetCapacity => Response::Capacity {
                free: self.store.report_capacity(),
            },
            Request::StoreBlock {
                key,
                name,
                size,
                payload,
            } => match self.store.store(
                key,
                StoredObject {
                    name,
                    size,
                    payload,
                },
            ) {
                Ok(()) => Response::Stored,
                Err(NodeStoreError::InsufficientSpace) => {
                    Response::Error(RemoteError::InsufficientSpace)
                }
                Err(NodeStoreError::AlreadyStored) => Response::Error(RemoteError::AlreadyStored),
            },
            Request::FetchBlock { name } => Response::Block {
                block: self
                    .store
                    .get(name.key())
                    .map(|obj| (obj.size, obj.payload.clone())),
            },
            Request::RepairRead { file, chunk } => {
                let blocks = self
                    .store
                    .objects()
                    .filter(|(_, obj)| {
                        obj.name.file() == file && obj.name.chunk_no() == Some(chunk)
                    })
                    .map(|(_, obj)| RepairBlock {
                        name: obj.name.clone(),
                        size: obj.size,
                        payload: obj.payload.clone(),
                    })
                    .collect();
                Response::RepairBlocks { blocks }
            }
            Request::RemoveBlock { name, size } => {
                if self.store.remove(name.key()).is_none() {
                    self.store.release(size);
                }
                Response::Removed
            }
            // The server layer intercepts Shutdown before dispatch; answering
            // here keeps the service total.
            Request::Shutdown => Response::ShuttingDown,
            // `handle_traced` answers GetStats before dispatch (a scrape must
            // not instrument itself); answering here keeps the match total.
            Request::GetStats => Response::Stats {
                stats: Box::new(self.stats()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerstripe_core::ObjectName;

    fn service() -> NodeService {
        NodeService::new(&NodeConfig::named("node-0", ByteSize::mb(10)))
    }

    #[test]
    fn capacity_store_fetch_remove_cycle() {
        let mut svc = service();
        assert_eq!(
            svc.handle(Request::GetCapacity),
            Response::Capacity {
                free: ByteSize::mb(10)
            }
        );
        let name = ObjectName::block("f", 0, 1);
        let store = Request::StoreBlock {
            key: name.key(),
            name: name.clone(),
            size: ByteSize::mb(2),
            payload: Some(vec![5, 6]),
        };
        assert_eq!(svc.handle(store.clone()), Response::Stored);
        assert_eq!(
            svc.handle(store),
            Response::Error(RemoteError::AlreadyStored)
        );
        assert_eq!(
            svc.handle(Request::FetchBlock { name: name.clone() }),
            Response::Block {
                block: Some((ByteSize::mb(2), Some(vec![5, 6])))
            }
        );
        assert_eq!(
            svc.handle(Request::RemoveBlock {
                name: name.clone(),
                size: ByteSize::mb(2)
            }),
            Response::Removed
        );
        assert_eq!(
            svc.handle(Request::FetchBlock { name }),
            Response::Block { block: None }
        );
        assert_eq!(svc.store().used(), ByteSize::ZERO);
    }

    #[test]
    fn oversized_store_is_refused_with_a_typed_error() {
        let mut svc = service();
        let name = ObjectName::block("f", 0, 0);
        assert_eq!(
            svc.handle(Request::StoreBlock {
                key: name.key(),
                name,
                size: ByteSize::mb(100),
                payload: None,
            }),
            Response::Error(RemoteError::InsufficientSpace)
        );
    }

    #[test]
    fn repair_read_returns_exactly_the_chunks_blocks() {
        let mut svc = service();
        for (file, chunk, ecb) in [("f", 0, 0), ("f", 0, 1), ("f", 1, 0), ("g", 0, 0)] {
            let name = ObjectName::block(file, chunk, ecb);
            svc.handle(Request::StoreBlock {
                key: name.key(),
                name,
                size: ByteSize::kb(1),
                payload: Some(vec![ecb as u8]),
            });
        }
        let resp = svc.handle(Request::RepairRead {
            file: "f".to_string(),
            chunk: 0,
        });
        let Response::RepairBlocks { blocks } = resp else {
            panic!("expected RepairBlocks");
        };
        assert_eq!(blocks.len(), 2);
        assert!(blocks.iter().all(|b| b.name.file() == "f"));
    }

    #[test]
    fn rollback_of_an_unknown_object_releases_reserved_space() {
        let mut svc = service();
        // Reserve space as an untracked charge, then roll it back by size.
        let name = ObjectName::block("f", 0, 0);
        svc.handle(Request::StoreBlock {
            key: name.key(),
            name: name.clone(),
            size: ByteSize::mb(1),
            payload: None,
        });
        svc.handle(Request::RemoveBlock {
            name: ObjectName::block("other", 0, 0),
            size: ByteSize::mb(1),
        });
        assert_eq!(svc.store().used(), ByteSize::ZERO);
    }
}
