//! Property-based tests over the framed wire format: arbitrary payloads must
//! round-trip exactly, and corrupted frames — truncations, oversized length
//! fields, unknown kind bytes — must be rejected with typed errors rather
//! than panics or mis-parses.

use peerstripe_core::ObjectName;
use peerstripe_net::protocol::{
    kind, read_request, read_request_traced, read_response, read_response_traced, write_request,
    write_request_traced, write_response, write_response_traced, HEADER_LEN, MAGIC,
};
use peerstripe_net::{
    NodeStats, OpLogEntry, RemoteError, RepairBlock, Request, Response, WireError, MAX_FRAME,
    VERSION,
};
use peerstripe_overlay::Id;
use peerstripe_sim::ByteSize;
use peerstripe_telemetry::MetricsRegistry;
use proptest::prelude::*;

/// Encode a request to bytes.
fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    write_request(&mut buf, req).expect("encoding a well-formed request");
    buf
}

/// Encode a response to bytes.
fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    write_response(&mut buf, resp).expect("encoding a well-formed response");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// StoreBlock requests round-trip through the wire format for arbitrary
    /// names, keys, sizes, and payload bytes.
    #[test]
    fn store_block_round_trips_arbitrary_payloads(
        file in "[a-z]{1,12}",
        chunk in 0u32..64,
        ecb in 0u32..64,
        key in any::<u128>(),
        size in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..4096),
        with_payload in any::<bool>(),
    ) {
        let req = Request::StoreBlock {
            key: Id(key),
            name: ObjectName::block(file, chunk, ecb),
            size: ByteSize::bytes(size),
            payload: with_payload.then_some(payload),
        };
        let bytes = encode_request(&req);
        prop_assert_eq!(read_request(&mut bytes.as_slice()).unwrap(), req);
    }

    /// Block responses round-trip: found/missing, with and without payload
    /// bytes, for arbitrary contents.
    #[test]
    fn block_responses_round_trip_arbitrary_payloads(
        size in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..4096),
        shape in 0u8..3,
    ) {
        let resp = Response::Block {
            block: match shape {
                0 => None,
                1 => Some((ByteSize::bytes(size), None)),
                _ => Some((ByteSize::bytes(size), Some(payload))),
            },
        };
        let bytes = encode_response(&resp);
        prop_assert_eq!(read_response(&mut bytes.as_slice()).unwrap(), resp);
    }

    /// RepairBlocks responses carry several blocks' payloads concatenated in
    /// one frame and must reassemble them at the declared boundaries.
    #[test]
    fn repair_blocks_round_trip_multi_payload_frames(
        file in "[a-z]{1,8}",
        chunk in 0u32..16,
        lens in proptest::collection::vec(0usize..512, 0..8),
        fill in any::<u8>(),
    ) {
        let blocks: Vec<RepairBlock> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| RepairBlock {
                name: ObjectName::block(file.clone(), chunk, i as u32),
                size: ByteSize::bytes(len as u64),
                payload: Some(vec![fill.wrapping_add(i as u8); len]),
            })
            .collect();
        let resp = Response::RepairBlocks { blocks };
        let bytes = encode_response(&resp);
        prop_assert_eq!(read_response(&mut bytes.as_slice()).unwrap(), resp);
    }

    /// Every prefix of a valid frame shorter than the whole is a truncation
    /// and must fail as a transport error, never parse or panic.
    #[test]
    fn truncated_frames_are_transport_errors(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        cut_seed in any::<u64>(),
    ) {
        let name = ObjectName::block("t", 0, 0);
        let req = Request::StoreBlock {
            key: name.key(),
            name,
            size: ByteSize::kb(1),
            payload: Some(payload),
        };
        let bytes = encode_request(&req);
        let cut = (cut_seed as usize) % (bytes.len() - 1) + 1; // 1..len
        let err = read_request(&mut bytes[..cut].to_vec().as_slice()).unwrap_err();
        prop_assert!(err.is_transport(), "cut at {} gave {:?}", cut, err);
    }

    /// A header whose combined length fields exceed MAX_FRAME is rejected
    /// before any body allocation, whatever the excess.
    #[test]
    fn oversized_length_fields_are_rejected(
        meta_len in 0u32..u32::MAX,
        payload_len in 0u32..u32::MAX,
        kind_byte in 1u8..8,
    ) {
        let total = meta_len as u64 + payload_len as u64;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC.to_le_bytes());
        header.push(VERSION);
        header.push(kind_byte);
        header.extend_from_slice(&meta_len.to_le_bytes());
        header.extend_from_slice(&payload_len.to_le_bytes());
        let result = read_request(&mut header.as_slice());
        if total > MAX_FRAME {
            prop_assert!(
                matches!(result, Err(WireError::Oversized(n)) if n == total),
                "lengths {}+{} gave {:?}", meta_len, payload_len, result
            );
        } else if total > 0 {
            // In-bounds lengths with a truncated body are a transport error.
            prop_assert!(result.unwrap_err().is_transport());
        }
    }

    /// Unknown kind bytes are a typed protocol error on both decode paths,
    /// and response kinds never parse as requests (or vice versa).
    #[test]
    fn unknown_and_mismatched_kinds_are_typed_errors(kind_byte in any::<u8>()) {
        let request_kinds = [
            kind::PING, kind::GET_CAPACITY, kind::STORE_BLOCK, kind::FETCH_BLOCK,
            kind::REPAIR_READ, kind::REMOVE_BLOCK, kind::SHUTDOWN, kind::GET_STATS,
        ];
        let response_kinds = [
            kind::PONG, kind::CAPACITY, kind::STORED, kind::BLOCK,
            kind::REPAIR_BLOCKS, kind::REMOVED, kind::SHUTTING_DOWN, kind::STATS, kind::ERROR,
        ];
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC.to_le_bytes());
        header.push(VERSION);
        header.push(kind_byte);
        header.extend_from_slice(&0u32.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        if !request_kinds.contains(&kind_byte) {
            let err = read_request(&mut header.as_slice()).unwrap_err();
            prop_assert!(
                matches!(err, WireError::UnknownKind(k) if k == kind_byte)
                    || matches!(err, WireError::Body(_)),
                "request decode of kind {:#x} gave {:?}", kind_byte, err
            );
        }
        if !response_kinds.contains(&kind_byte) {
            let err = read_response(&mut header.as_slice()).unwrap_err();
            prop_assert!(
                matches!(err, WireError::UnknownKind(k) if k == kind_byte)
                    || matches!(err, WireError::Body(_)),
                "response decode of kind {:#x} gave {:?}", kind_byte, err
            );
        }
    }

    /// Flipping the magic or version byte of a valid frame yields the
    /// matching typed error, decided before the body is read.
    #[test]
    fn corrupted_headers_fail_with_the_right_variant(
        bad_magic in any::<u16>(),
        bad_version in any::<u8>(),
    ) {
        let mut bytes = encode_request(&Request::Ping);
        if bad_magic != MAGIC {
            let mut corrupted = bytes.clone();
            corrupted[0..2].copy_from_slice(&bad_magic.to_le_bytes());
            let err = read_request(&mut corrupted.as_slice()).unwrap_err();
            prop_assert!(matches!(err, WireError::BadMagic(m) if m == bad_magic));
        }
        if bad_version != VERSION {
            bytes[2] = bad_version;
            let err = read_request(&mut bytes.as_slice()).unwrap_err();
            prop_assert!(matches!(err, WireError::Version(v) if v == bad_version));
        }
    }

    /// Error responses round-trip their typed remote error, including the
    /// free-form detail string.
    #[test]
    fn error_responses_round_trip(detail in "[ -~]{0,120}", which in 0u8..3) {
        let resp = Response::Error(match which {
            0 => RemoteError::InsufficientSpace,
            1 => RemoteError::AlreadyStored,
            _ => RemoteError::BadRequest { detail },
        });
        let bytes = encode_response(&resp);
        prop_assert_eq!(read_response(&mut bytes.as_slice()).unwrap(), resp);
    }

    /// Stats responses round-trip arbitrary telemetry snapshots: live
    /// registry exports and op logs with arbitrary ids, durations (including
    /// non-finite ones, which JSON maps through null), and outcomes.
    #[test]
    fn stats_responses_round_trip_arbitrary_snapshots(
        capacity in any::<u64>(),
        used in any::<u64>(),
        objects in any::<u64>(),
        counts in proptest::collection::vec(any::<u32>(), 0..4),
        entries in proptest::collection::vec(any::<u64>(), 0..8),
    ) {
        let mut metrics = MetricsRegistry::new();
        for (i, c) in counts.iter().enumerate() {
            let op = format!("op-{i}");
            let h = metrics.counter("node_requests_total", &[("op", &op)]);
            metrics.inc(h, *c as u64);
            let lat = metrics.histogram("node_request_latency_ms", &[("op", &op)], &[1.0, 10.0]);
            metrics.observe(lat, *c as f64);
        }
        // Each seed expands into one op-log entry: traced/untraced, op,
        // duration, and outcome all derived from its bits.
        let ops = ["ping", "store_block", "fetch_block"];
        let op_log = entries
            .iter()
            .map(|seed| {
                let slow = seed & 2 != 0;
                OpLogEntry {
                    request_id: (seed & 1 == 0).then_some(seed >> 3),
                    op: ops[(*seed as usize >> 2) % ops.len()].to_string(),
                    duration_ms: (seed >> 16) as f64 / 128.0,
                    outcome: if slow { "bad_request" } else { "ok" }.to_string(),
                    slow,
                }
            })
            .collect();
        let resp = Response::Stats {
            stats: Box::new(NodeStats {
                node: Id::hash("node-p"),
                capacity: ByteSize::bytes(capacity),
                used: ByteSize::bytes(used),
                objects,
                metrics: metrics.export(),
                op_log,
            }),
        };
        let bytes = encode_response(&resp);
        prop_assert_eq!(read_response(&mut bytes.as_slice()).unwrap(), resp);
    }

    /// Any request id survives a traced round-trip on any request kind, and
    /// traced frames still parse on the untraced path (the id is simply
    /// dropped), so tracing is backward-compatible.
    #[test]
    fn request_ids_round_trip_and_degrade_gracefully(
        traced in any::<bool>(),
        rid_value in any::<u64>(),
        which in 0u8..4,
    ) {
        let rid = traced.then_some(rid_value);
        let name = ObjectName::block("f", 0, 0);
        let req = match which {
            0 => Request::Ping,
            1 => Request::GetStats,
            2 => Request::FetchBlock { name },
            _ => Request::StoreBlock {
                key: name.key(),
                name,
                size: ByteSize::kb(1),
                payload: Some(vec![9; 8]),
            },
        };
        let mut bytes = Vec::new();
        write_request_traced(&mut bytes, &req, rid).unwrap();
        let (back, back_rid) = read_request_traced(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(back_rid, rid);
        prop_assert_eq!(read_request(&mut bytes.as_slice()).unwrap(), req);

        let resp = Response::Pong { node: Id::hash("n") };
        let mut bytes = Vec::new();
        write_response_traced(&mut bytes, &resp, rid).unwrap();
        let (back, back_rid) = read_response_traced(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(back_rid, rid);
        prop_assert_eq!(read_response(&mut bytes.as_slice()).unwrap(), resp);
    }
}
