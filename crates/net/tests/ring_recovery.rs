//! End-to-end networked deployment test: the acceptance path of the
//! networked subsystem.
//!
//! Spawns eight real `peerstripe-node` daemon processes on localhost, stores
//! a file through the unchanged `PeerStripe` client + placement + erasure
//! stack over the TCP gateway, kills one daemon with a real signal, reads
//! the file back degraded, runs the repair path, and reads it again.

use peerstripe_core::{CodingPolicy, PeerStripe, PeerStripeConfig};
use peerstripe_net::{GatewayConfig, LocalRing, RingGateway};
use peerstripe_overlay::NodeRef;
use peerstripe_placement::ClusterView;
use peerstripe_sim::{ByteSize, DetRng};
use std::path::Path;

const NODES: usize = 8;
const FILE: &str = "trace/alpha.bin";

fn spawn_ring() -> LocalRing {
    let bin = Path::new(env!("CARGO_BIN_EXE_peerstripe-node"));
    LocalRing::spawn(bin, NODES, ByteSize::mb(64)).expect("spawning localhost daemons")
}

fn client(ring: &LocalRing) -> PeerStripe<RingGateway> {
    let gateway = ring.gateway(GatewayConfig::default());
    PeerStripe::new(
        gateway,
        PeerStripeConfig {
            // 5+3 Reed-Solomon: every chunk spreads over all 8 nodes, so any
            // single kill loses exactly one block per chunk and stays three
            // losses inside the recovery margin.
            coding: CodingPolicy::ReedSolomon { data: 5, parity: 3 },
            ..PeerStripeConfig::default()
        },
    )
}

fn test_bytes(len: usize) -> Vec<u8> {
    let mut rng = DetRng::new(42);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

#[test]
fn file_survives_a_real_node_kill_via_degraded_read_and_repair() {
    let mut ring = spawn_ring();
    let mut client = client(&ring);
    let data = test_bytes(256 * 1024);

    assert!(client.store_data(FILE, &data).is_stored());
    assert_eq!(client.retrieve_data(FILE).as_deref(), Some(&data[..]));

    // Kill a daemon that actually holds blocks of the file (overlay-random
    // placement need not touch every node). The gateway still routes to it
    // until the failure is declared.
    let manifest = client.manifest(FILE).expect("manifests are tracked");
    let victim: NodeRef = (0..NODES)
        .find(|&n| {
            manifest
                .chunks
                .iter()
                .any(|c| c.blocks_on(n).next().is_some())
        })
        .expect("at least one node holds a block");
    ring.kill(victim).expect("killing the victim daemon");
    assert!(!ring.is_running(victim));

    // Degraded read: fetches to the dead node fail over TCP, and the erasure
    // decoder reconstructs every chunk from the surviving blocks.
    assert_eq!(
        client.retrieve_data(FILE).as_deref(),
        Some(&data[..]),
        "degraded read with one daemon down"
    );

    // Declare the failure and run the repair path: lost blocks are
    // regenerated from survivors and re-placed on live daemons.
    let takeover = client
        .backend_mut()
        .mark_failed(victim)
        .expect("victim was a ring member");
    let report = client.handle_node_failure(victim, &takeover);
    assert_eq!(report.chunks_lost, 0, "no chunk may be unrecoverable");
    assert!(
        report.blocks_regenerated > 0,
        "the victim held blocks, so repair must regenerate some"
    );

    // Post-repair the file reads back whole, and availability agrees.
    assert_eq!(client.retrieve_data(FILE).as_deref(), Some(&data[..]));
    assert!(client.is_file_available(FILE));

    // The gateway's telemetry saw the whole story: store/fetch RPCs plus the
    // errors from talking to the killed daemon.
    let export = client.backend().export_metrics();
    let fetches: u64 = export
        .counters
        .iter()
        .filter(|c| {
            c.name == "gateway_rpc_total"
                && c.labels
                    .iter()
                    .any(|(k, v)| k == "op" && v == "fetch_block")
        })
        .map(|c| c.value)
        .sum();
    let errors: u64 = export
        .counters
        .iter()
        .filter(|c| c.name == "gateway_rpc_errors")
        .map(|c| c.value)
        .sum();
    assert!(fetches > 0, "fetch RPCs must be counted");
    assert!(errors > 0, "RPCs against the killed daemon must be counted");
}

#[test]
fn every_gateway_rpc_is_attributed_across_a_real_kill() {
    let mut ring = spawn_ring();
    let mut client = client(&ring);
    let data = test_bytes(128 * 1024);

    assert!(client.store_data(FILE, &data).is_stored());
    assert_eq!(client.retrieve_data(FILE).as_deref(), Some(&data[..]));

    // Scrape every daemon before the kill: SIGKILL destroys the victim's
    // op log, so its entries must be captured while it is still alive.
    let mut node_rids = std::collections::BTreeSet::new();
    for e in ring.endpoints() {
        let stats = client.backend().get_stats(e.node).expect("pre-kill scrape");
        for entry in &stats.op_log {
            if let Some(rid) = entry.request_id {
                node_rids.insert(rid);
            }
        }
    }

    let manifest = client.manifest(FILE).expect("manifests are tracked");
    let victim: NodeRef = (0..NODES)
        .find(|&n| {
            manifest
                .chunks
                .iter()
                .any(|c| c.blocks_on(n).next().is_some())
        })
        .expect("at least one node holds a block");
    ring.kill(victim).expect("killing the victim daemon");

    assert_eq!(client.retrieve_data(FILE).as_deref(), Some(&data[..]));
    let takeover = client.backend_mut().mark_failed(victim).unwrap();
    let report = client.handle_node_failure(victim, &takeover);
    assert_eq!(report.chunks_lost, 0);
    assert_eq!(client.retrieve_data(FILE).as_deref(), Some(&data[..]));

    // Re-scrape the survivors: their logs now also cover the degraded read
    // and the repair traffic.
    for e in ring.endpoints() {
        if e.node != victim {
            let stats = client.backend().get_stats(e.node).expect("survivor scrape");
            for entry in &stats.op_log {
                if let Some(rid) = entry.request_id {
                    node_rids.insert(rid);
                }
            }
        }
    }

    // The join: every successful gateway op-log entry's request id must
    // appear in some node's op log; failed entries are attributed by their
    // error kind (the node never saw them, or died before answering).
    let log = client.backend().op_log();
    assert!(!log.is_empty(), "the run must have logged RPCs");
    let unattributed: Vec<_> = log
        .iter()
        .filter(|e| e.is_ok())
        .filter(|e| !e.request_id.is_some_and(|r| node_rids.contains(&r)))
        .collect();
    assert!(
        unattributed.is_empty(),
        "{} unattributed RPCs, e.g. {:?}",
        unattributed.len(),
        unattributed.first()
    );
    // The kill shows up as error-kind entries, not as silent gaps.
    assert!(
        log.iter().any(|e| !e.is_ok()),
        "RPCs against the killed daemon must appear with an error outcome"
    );
}

#[test]
fn surviving_daemons_hold_the_regenerated_bytes() {
    let mut ring = spawn_ring();
    let mut client = client(&ring);
    let data = test_bytes(64 * 1024);

    assert!(client.store_data(FILE, &data).is_stored());
    let victim: NodeRef = 0;
    ring.kill(victim).expect("killing the victim daemon");
    let takeover = client.backend_mut().mark_failed(victim).unwrap();
    client.handle_node_failure(victim, &takeover);

    // A fresh gateway over only the survivors (no state carried over) can
    // still assemble the file: the regenerated blocks live on real daemons,
    // not in any client-side cache.
    let survivors: Vec<_> = ring
        .endpoints()
        .into_iter()
        .filter(|e| e.node != victim)
        .collect();
    drop(client);
    let fresh = RingGateway::connect(&survivors, GatewayConfig::default());
    let mut live = 0;
    let mut free_total = ByteSize::ZERO;
    for e in &survivors {
        if fresh.ping(e.node) {
            live += 1;
        }
        free_total = free_total.saturating_add(fresh.report_of(e.node));
    }
    assert_eq!(live, NODES - 1);
    // With nothing stored the survivors would report their full contributed
    // capacity; the stored + regenerated blocks eat into it.
    let full = ByteSize::mb(64 * (NODES as u64 - 1));
    assert!(
        free_total < full,
        "survivors must hold block bytes ({free_total} free of {full})"
    );
}
