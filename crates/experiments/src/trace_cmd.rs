//! The `repro trace` / `repro trace-summary` commands: run a named scenario
//! with the JSONL tracer attached and digest the emitted trace into causal
//! breakdowns.
//!
//! A trace is one maintenance-engine run with every telemetry emission point
//! enabled: the first line is the [`RunManifest`] header (effective repair,
//! detector and churn configuration), every following line one
//! [`TraceRecord`] stamped with sim time.  [`summarize`] replays the record
//! stream and attributes each lost file to the declaration that wrote its
//! chunk off and — transitively, via the engine's `down_outage` bookkeeping —
//! to the group outage that provoked the declaration.  That closes the causal
//! chain the placement sweep only shows in aggregate: *this* outage, under
//! *this* timeout, cost *these* files.
//!
//! Two scenarios are built in:
//!
//! * `placement-outage` (default): one placement-sweep cell — oblivious
//!   `overlay-random` placement over uniform failure domains with grouped
//!   churn and an aggressive permanence timeout, the regime where every lost
//!   file traces back to a whole-domain outage.
//! * `repair-mini`: a tiny fixed-size independent-churn run, small enough to
//!   keep a byte-identical golden trace under `tests/golden/`.

use crate::placement_sweep::PlacementSweepConfig;
use crate::scale::Scale;
use peerstripe_core::{ClusterConfig, CodingPolicy, PeerStripe, PeerStripeConfig, StorageSystem};
use peerstripe_placement::{StrategyKind, Topology};
use peerstripe_repair::{
    BandwidthBudget, ChurnProcess, DetectionKind, DetectorConfig, GroupedChurn, MaintenanceEngine,
    RepairConfig, RepairPolicy, SessionModel,
};
use peerstripe_sim::{ByteSize, DetRng, SimTime};
use peerstripe_telemetry::{
    JsonlTracer, RunManifest, TraceEvent, TraceOutput, TraceRecord, Tracer,
};
use peerstripe_trace::TraceConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Every scenario `repro trace` understands.
pub const SCENARIOS: &[&str] = &["placement-outage", "repair-mini"];

/// Configuration of one `repro trace` run.
#[derive(Debug, Clone)]
pub struct TraceCmdConfig {
    /// Scenario name (one of [`SCENARIOS`]).
    pub scenario: String,
    /// Scale of the scenario (ignored by the fixed-size `repair-mini`).
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Enable wall-clock per-phase profiling alongside the trace.
    pub profile: bool,
}

/// What one trace run produced.
#[derive(Debug, Clone)]
pub struct TraceArtifacts {
    /// The JSONL trace: one record per line, manifest first.
    pub jsonl: String,
    /// Number of records in the trace.
    pub records: u64,
    /// Rendered per-phase wall-clock profile, when profiling was enabled.
    pub profile_text: Option<String>,
    /// The engine's metrics-registry export (counters/gauges/histograms),
    /// rendered as JSON.
    pub metrics_json: String,
}

/// The redundancy traced scenarios deploy with: 8 placed blocks per chunk of
/// which any 4 recover it — the same geometry the repair and placement sweeps
/// use, so traces are directly comparable to sweep rows.
fn trace_coding() -> CodingPolicy {
    CodingPolicy::Online {
        placed: 8,
        tolerable: 4,
        overhead: 1.03,
    }
}

/// Run the named scenario with the JSONL tracer attached.
pub fn run_trace(config: &TraceCmdConfig) -> Result<TraceArtifacts, String> {
    match config.scenario.as_str() {
        "placement-outage" => Ok(run_placement_outage(config)),
        "repair-mini" => Ok(run_repair_mini(config)),
        other => Err(format!(
            "unknown trace scenario '{other}' (expected one of {SCENARIOS:?})"
        )),
    }
}

/// Drain the finished engine into [`TraceArtifacts`].
fn finish(mut engine: MaintenanceEngine, profile: bool) -> TraceArtifacts {
    let profile_text = profile.then(|| engine.profiler().render_text());
    let metrics_json = engine.metrics_registry().render_json();
    let jsonl = match engine.finish_trace() {
        TraceOutput::Jsonl(jsonl) => jsonl,
        _ => String::new(),
    };
    TraceArtifacts {
        records: jsonl.lines().count() as u64,
        jsonl,
        profile_text,
        metrics_json,
    }
}

/// The default scenario: one placement-sweep cell (first group size, first
/// outage interval) under oblivious placement — grouped churn, aggressive
/// timeout, domain-concentrated chunks, so losses happen and every one of
/// them is caused by an outage-provoked declaration wave.
fn run_placement_outage(cmd: &TraceCmdConfig) -> TraceArtifacts {
    let config = PlacementSweepConfig::at_scale(cmd.scale, cmd.seed);
    let group_size = config.group_sizes.first().copied().unwrap_or(25);
    let interval_hours = config
        .outage_interval_hours
        .first()
        .copied()
        .unwrap_or(48.0);
    let kind = StrategyKind::OverlayRandom;
    let topology = Topology::uniform_groups(config.nodes, group_size);
    let trace = TraceConfig::scaled(config.files).generate(cmd.seed ^ 0xd0a7);

    let mut rng = DetRng::new(cmd.seed);
    let cluster = ClusterConfig::scaled(config.nodes).build(&mut rng);
    let mut ps = PeerStripe::with_placement(
        cluster,
        PeerStripeConfig::default().with_coding(trace_coding()),
        kind.build(cmd.seed),
        Some(topology.clone()),
    );
    for file in &trace.files {
        let _ = ps.store_file(file);
    }
    let manifests = ps.manifests().clone();
    let cluster = ps.into_cluster();

    let churn = ChurnProcess {
        sessions: SessionModel::Synthetic {
            mean_session_secs: config.mean_session_hours * 3_600.0,
            mean_downtime_secs: config.mean_downtime_hours * 3_600.0,
        },
        permanent_fraction: config.permanent_fraction,
        grouped: Some(GroupedChurn::new(
            topology.clone(),
            interval_hours,
            config.outage_downtime_hours,
        )),
    };
    let repair = RepairConfig {
        policy: RepairPolicy::Eager,
        detector: DetectorConfig::default_desktop_grid()
            .with_timeout(config.timeout_hours * 3_600.0),
        detection: DetectionKind::PerNodeTimeout,
        bandwidth: BandwidthBudget::symmetric(config.bandwidth),
        sample_period_secs: 1_800.0,
    };

    let mut manifest = RunManifest::new("placement-outage", cmd.seed, &cmd.scale.to_string());
    manifest.push("nodes", config.nodes.to_string());
    manifest.push("files", trace.files.len().to_string());
    manifest.push("sim_hours", format!("{}", config.sim_hours));
    manifest.push("placement.strategy", kind.label().to_string());
    manifest.push("placement.group_size", group_size.to_string());
    manifest.extend(repair.manifest_entries());
    manifest.extend(churn.manifest_entries());
    let mut tracer = JsonlTracer::new();
    tracer.record(TraceEvent {
        t_ns: 0,
        record: TraceRecord::Manifest(manifest),
    });

    let mut engine = MaintenanceEngine::new(cluster, &manifests, churn, repair, cmd.seed)
        .with_placement(kind.build(cmd.seed), Some(topology))
        .with_tracer(Box::new(tracer))
        .with_profiling(cmd.profile);
    engine.run_for(SimTime::from_secs_f64(config.sim_hours * 3_600.0));
    finish(engine, cmd.profile)
}

/// The golden-fixture scenario: a fixed tiny deployment (48 nodes, 200 files,
/// 24 virtual hours) under independent churn with a high permanent-departure
/// rate, so declarations, repairs and a handful of losses all appear in a
/// trace small enough to commit byte-for-byte.
fn run_repair_mini(cmd: &TraceCmdConfig) -> TraceArtifacts {
    let nodes = 40;
    let files = 60;
    let sim_hours = 15.0;

    let mut rng = DetRng::new(cmd.seed);
    let cluster = ClusterConfig::scaled(nodes).build(&mut rng);
    let mut ps = PeerStripe::new(
        cluster,
        PeerStripeConfig::default().with_coding(trace_coding()),
    );
    let trace = TraceConfig::scaled(files).generate(cmd.seed ^ 0xc0de);
    for file in &trace.files {
        let _ = ps.store_file(file);
    }
    let manifests = ps.manifests().clone();
    let cluster = ps.into_cluster();

    let churn = ChurnProcess {
        sessions: SessionModel::Synthetic {
            mean_session_secs: 8.0 * 3_600.0,
            mean_downtime_secs: 4.0 * 3_600.0,
        },
        permanent_fraction: 0.05,
        grouped: None,
    };
    let repair = RepairConfig {
        policy: RepairPolicy::Eager,
        detector: DetectorConfig::default_desktop_grid().with_timeout(6.0 * 3_600.0),
        detection: DetectionKind::PerNodeTimeout,
        bandwidth: BandwidthBudget::symmetric(ByteSize::mb(4)),
        sample_period_secs: 3_600.0,
    };

    let mut manifest = RunManifest::new("repair-mini", cmd.seed, "fixed");
    manifest.push("nodes", nodes.to_string());
    manifest.push("files", trace.files.len().to_string());
    manifest.push("sim_hours", format!("{sim_hours}"));
    manifest.extend(repair.manifest_entries());
    manifest.extend(churn.manifest_entries());
    let mut tracer = JsonlTracer::new();
    tracer.record(TraceEvent {
        t_ns: 0,
        record: TraceRecord::Manifest(manifest),
    });

    let mut engine = MaintenanceEngine::new(cluster, &manifests, churn, repair, cmd.seed)
        .with_tracer(Box::new(tracer))
        .with_profiling(cmd.profile);
    engine.run_for(SimTime::from_secs_f64(sim_hours * 3_600.0));
    finish(engine, cmd.profile)
}

/// One lost file with its full causal chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LostFileAttribution {
    /// The lost file.
    pub file: u32,
    /// The chunk whose write-off damaged the file.
    pub chunk: u32,
    /// The declared node whose write-off caused the loss.
    pub cause_node: usize,
    /// Sim-clock nanoseconds of the causing declaration.
    pub declared_at_ns: u64,
    /// The group outage the loss traces back to: the causing declaration's
    /// outage, or — when the finishing declaration was an individual one —
    /// the outage whose declarations wrote off the most of the chunk's
    /// blocks.
    pub outage: Option<u64>,
    /// True when the finishing declaration itself belonged to the outage;
    /// false when the outage was inferred from the chunk's earlier
    /// write-offs.
    pub direct: bool,
    /// The failure domain the loss traces back to (the outage's group, or
    /// the causing node's domain for individual departures).
    pub domain: Option<u32>,
}

/// A digested trace: headline counters plus the causal loss breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Scenario name from the manifest header.
    pub scenario: String,
    /// Seed from the manifest header.
    pub seed: u64,
    /// Repair policy label from the manifest header.
    pub policy: String,
    /// Detection policy label from the manifest header.
    pub detection: String,
    /// Total records in the trace (including the manifest).
    pub records: u64,
    /// Per-record-kind counts, sorted by kind name.
    pub records_by_kind: Vec<(String, u64)>,
    /// Group outages observed.
    pub outages: u64,
    /// Declarations that went through ("declare" verdicts).
    pub declarations: u64,
    /// "hold" verdicts.
    pub holds: u64,
    /// "cancel" verdicts.
    pub cancels: u64,
    /// Regenerations scheduled.
    pub repairs_scheduled: u64,
    /// Regenerations completed.
    pub repairs_completed: u64,
    /// Total completed repair traffic, bytes.
    pub repair_traffic_bytes: u64,
    /// Every lost file with its causal chain, in loss order.
    pub files_lost: Vec<LostFileAttribution>,
    /// Lost files per failure domain ("domain N", or "individual" when the
    /// causing declaration was not part of a group outage).
    pub lost_by_domain: Vec<(String, u64)>,
    /// Lost files per causing outage id.
    pub lost_by_outage: Vec<(String, u64)>,
    /// Lost files whose causing declaration belonged to no group outage.
    /// Zero in the `placement-outage` scenario means the causal chain is
    /// closed: every loss traces to a concrete outage and declaration.
    pub unattributed: u64,
}

/// Short kind label for one record.
fn kind_of(record: &TraceRecord) -> &'static str {
    match record {
        TraceRecord::Manifest(_) => "manifest",
        TraceRecord::NodeDown { .. } => "node_down",
        TraceRecord::NodeReturn { .. } => "node_return",
        TraceRecord::OutageStart { .. } => "outage_start",
        TraceRecord::OutageEnd { .. } => "outage_end",
        TraceRecord::DeclarationVerdict { .. } => "declaration_verdict",
        TraceRecord::HoldReleased { .. } => "hold_released",
        TraceRecord::BlocksWrittenOff { .. } => "blocks_written_off",
        TraceRecord::ChunkLost { .. } => "chunk_lost",
        TraceRecord::FileLost { .. } => "file_lost",
        TraceRecord::PlacementDecision { .. } => "placement_decision",
        TraceRecord::RepairScheduled { .. } => "repair_scheduled",
        TraceRecord::RepairCompleted { .. } => "repair_completed",
        TraceRecord::Sample { .. } => "sample",
    }
}

/// Replay a JSONL trace into a [`TraceSummary`], attributing every lost file
/// to its causing declaration and outage.
pub fn summarize(jsonl: &str) -> Result<TraceSummary, String> {
    let mut scenario = String::new();
    let mut seed = 0u64;
    let mut policy = String::new();
    let mut detection = String::new();
    let mut records = 0u64;
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut node_domain: BTreeMap<usize, u32> = BTreeMap::new();
    let mut outage_group: BTreeMap<u64, u32> = BTreeMap::new();
    // Which outage each down node currently belongs to, and per chunk how
    // many blocks each outage's declarations have written off — the fallback
    // attribution when the finishing declaration is an individual one.
    let mut node_outage: BTreeMap<usize, u64> = BTreeMap::new();
    let mut chunk_votes: BTreeMap<u32, BTreeMap<u64, usize>> = BTreeMap::new();
    let mut outages = 0u64;
    let (mut declarations, mut holds, mut cancels) = (0u64, 0u64, 0u64);
    let (mut repairs_scheduled, mut repairs_completed) = (0u64, 0u64);
    let mut repair_traffic_bytes = 0u64;
    let mut files_lost: Vec<LostFileAttribution> = Vec::new();

    for (index, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: TraceEvent = serde_json::from_str(line)
            .map_err(|_| format!("unparseable trace record on line {}", index + 1))?;
        records += 1;
        *by_kind.entry(kind_of(&event.record)).or_insert(0) += 1;
        match event.record {
            TraceRecord::Manifest(manifest) => {
                scenario = manifest.scenario.clone();
                seed = manifest.seed;
                policy = manifest.get("repair.policy").unwrap_or("?").to_string();
                detection = manifest.get("repair.detection").unwrap_or("?").to_string();
            }
            TraceRecord::NodeDown {
                node,
                domain,
                outage,
                ..
            } => {
                if let Some(domain) = domain {
                    node_domain.insert(node, domain);
                }
                match outage {
                    Some(outage) => {
                        node_outage.insert(node, outage);
                    }
                    None => {
                        node_outage.remove(&node);
                    }
                }
            }
            TraceRecord::NodeReturn { node, .. } => {
                node_outage.remove(&node);
            }
            TraceRecord::BlocksWrittenOff {
                chunk,
                node,
                blocks,
            } => {
                if let Some(&outage) = node_outage.get(&node) {
                    *chunk_votes
                        .entry(chunk)
                        .or_default()
                        .entry(outage)
                        .or_insert(0) += blocks;
                }
            }
            TraceRecord::OutageStart { outage, group, .. } => {
                outages += 1;
                outage_group.insert(outage, group);
            }
            TraceRecord::DeclarationVerdict { verdict, .. } => match verdict.as_str() {
                "declare" => declarations += 1,
                "hold" => holds += 1,
                _ => cancels += 1,
            },
            TraceRecord::RepairScheduled { .. } => repairs_scheduled += 1,
            TraceRecord::RepairCompleted { traffic, .. } => {
                repairs_completed += 1;
                repair_traffic_bytes += traffic;
            }
            TraceRecord::FileLost {
                file,
                chunk,
                cause_node,
                outage,
            } => {
                let direct = outage.is_some();
                // Individual finishing blow: fall back to the outage whose
                // declarations destroyed most of the chunk's redundancy.
                let outage = outage.or_else(|| {
                    chunk_votes.get(&chunk).and_then(|votes| {
                        votes
                            .iter()
                            .max_by_key(|&(_, blocks)| *blocks)
                            .map(|(&outage, _)| outage)
                    })
                });
                let domain = outage
                    .and_then(|o| outage_group.get(&o).copied())
                    .or_else(|| node_domain.get(&cause_node).copied());
                files_lost.push(LostFileAttribution {
                    file,
                    chunk,
                    cause_node,
                    declared_at_ns: event.t_ns,
                    outage,
                    direct,
                    domain,
                });
            }
            _ => {}
        }
    }
    if scenario.is_empty() {
        return Err("trace has no manifest header record".to_string());
    }

    let mut lost_by_domain: BTreeMap<String, u64> = BTreeMap::new();
    let mut lost_by_outage: BTreeMap<String, u64> = BTreeMap::new();
    let mut unattributed = 0u64;
    for loss in &files_lost {
        let domain_label = match loss.domain {
            Some(domain) => format!("domain {domain}"),
            None => "individual".to_string(),
        };
        *lost_by_domain.entry(domain_label).or_insert(0) += 1;
        match loss.outage {
            Some(outage) => {
                *lost_by_outage
                    .entry(format!("outage {outage}"))
                    .or_insert(0) += 1;
            }
            None => unattributed += 1,
        }
    }

    Ok(TraceSummary {
        scenario,
        seed,
        policy,
        detection,
        records,
        records_by_kind: by_kind
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        outages,
        declarations,
        holds,
        cancels,
        repairs_scheduled,
        repairs_completed,
        repair_traffic_bytes,
        files_lost,
        lost_by_domain: lost_by_domain.into_iter().collect(),
        lost_by_outage: lost_by_outage.into_iter().collect(),
        unattributed,
    })
}

/// Render a summary as human-readable text.
pub fn render_summary_text(summary: &TraceSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## trace summary — {} (seed {})\n\npolicy {} | detection {}\n{} records, {} outages, \
         {} declarations ({} held, {} cancelled)\n{} repairs scheduled, {} completed, {} repair bytes\n",
        summary.scenario,
        summary.seed,
        summary.policy,
        summary.detection,
        summary.records,
        summary.outages,
        summary.declarations,
        summary.holds,
        summary.cancels,
        summary.repairs_scheduled,
        summary.repairs_completed,
        summary.repair_traffic_bytes,
    ));
    out.push_str("\nrecords by kind:\n");
    for (kind, count) in &summary.records_by_kind {
        out.push_str(&format!("  {kind:<22} {count}\n"));
    }
    out.push_str(&format!(
        "\nfiles lost: {} ({} unattributed to any outage)\n",
        summary.files_lost.len(),
        summary.unattributed
    ));
    for (domain, count) in &summary.lost_by_domain {
        out.push_str(&format!("  by {domain:<12} {count}\n"));
    }
    for (outage, count) in &summary.lost_by_outage {
        out.push_str(&format!("  by {outage:<12} {count}\n"));
    }
    for loss in &summary.files_lost {
        let cause = match (loss.outage, loss.direct) {
            (Some(outage), true) => format!("outage {outage}"),
            (Some(outage), false) => format!("outage {outage}, finished individually"),
            (None, _) => "individual departure".to_string(),
        };
        out.push_str(&format!(
            "  file {} (chunk {}) lost at t={:.1}h: declaration of node {} ({})\n",
            loss.file,
            loss.chunk,
            loss.declared_at_ns as f64 / 3.6e12,
            loss.cause_node,
            cause
        ));
    }
    out
}

/// Render a summary as JSON.
pub fn render_summary_json(summary: &TraceSummary) -> String {
    serde_json::to_string(summary).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> TraceCmdConfig {
        TraceCmdConfig {
            scenario: "repair-mini".to_string(),
            scale: Scale::Small,
            seed: 42,
            profile: false,
        }
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        let mut config = mini();
        config.scenario = "bogus".to_string();
        assert!(run_trace(&config).is_err());
    }

    #[test]
    fn repair_mini_traces_and_summarizes() {
        let artifacts = run_trace(&mini()).unwrap();
        assert!(artifacts.records > 10, "{}", artifacts.records);
        let first = artifacts.jsonl.lines().next().unwrap();
        assert!(first.contains("Manifest"), "{first}");
        let summary = summarize(&artifacts.jsonl).unwrap();
        assert_eq!(summary.scenario, "repair-mini");
        assert_eq!(summary.seed, 42);
        assert_eq!(summary.policy, "eager");
        assert_eq!(summary.records, artifacts.records);
        assert!(summary.declarations > 0, "{summary:#?}");
        assert!(summary.repairs_scheduled > 0);
        // Registry export rides along.
        assert!(artifacts
            .metrics_json
            .contains("engine_repair_traffic_bytes"));
        // Renders don't panic and carry the headline.
        assert!(render_summary_text(&summary).contains("repair-mini"));
        assert!(render_summary_json(&summary).contains("\"scenario\""));
    }

    #[test]
    fn summary_round_trips_through_json() {
        let artifacts = run_trace(&mini()).unwrap();
        let summary = summarize(&artifacts.jsonl).unwrap();
        let json = render_summary_json(&summary);
        let back: TraceSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn headerless_trace_is_rejected() {
        assert!(summarize("").is_err());
    }

    #[test]
    fn profiling_rides_along_without_changing_the_trace() {
        let plain = run_trace(&mini()).unwrap();
        let mut config = mini();
        config.profile = true;
        let profiled = run_trace(&config).unwrap();
        assert_eq!(plain.jsonl, profiled.jsonl);
        assert!(plain.profile_text.is_none());
        let text = profiled.profile_text.unwrap();
        assert!(text.contains("event_dispatch"), "{text}");
    }
}
