//! The Condor `bigCopy` case study: Table 4.
//!
//! A thin wrapper around `peerstripe_gridsim::table4` that selects the file-size
//! sweep per scale and renders the paper's table layout.

use crate::scale::Scale;
use peerstripe_gridsim::{table4, table4_sizes, PoolConfig, Table4Row};
use peerstripe_sim::ByteSize;

/// Configuration of the Table 4 reproduction.
#[derive(Debug, Clone)]
pub struct CondorConfig {
    /// File sizes to copy.
    pub sizes: Vec<ByteSize>,
    /// Pool configuration (32 machines, Uniform(2, 15) GB, 100 Mb/s).
    pub pool: PoolConfig,
    /// Random seed.
    pub seed: u64,
}

impl CondorConfig {
    /// Configuration for a given scale: the paper sweep is 1–128 GB; smaller
    /// scales stop earlier so tests and benches stay fast.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let sizes = match scale {
            Scale::Small => vec![ByteSize::gb(1), ByteSize::gb(2), ByteSize::gb(4)],
            Scale::Medium => (0..6).map(|i| ByteSize::gb(1 << i)).collect(),
            Scale::Paper => table4_sizes(),
        };
        CondorConfig {
            sizes,
            pool: PoolConfig::paper(),
            seed,
        }
    }
}

/// Run the Table 4 experiment.
pub fn run_table4(config: &CondorConfig) -> Vec<Table4Row> {
    table4(&config.sizes, &config.pool, config.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_reproduces_the_crossover() {
        let rows = run_table4(&CondorConfig::at_scale(Scale::Small, 1));
        assert_eq!(rows.len(), 3);
        // Every scheme that can store the file reports a finite time.
        for row in &rows {
            assert!(row.fixed.succeeded && row.varying.succeeded);
            assert!(row.fixed.elapsed_secs.is_finite());
            assert!(row.varying.elapsed_secs.is_finite());
        }
        // At 4 GB the varying-chunk scheme must beat the fixed-chunk scheme
        // (Table 4 shows it winning from 2 GB onward).
        let last = rows.last().unwrap();
        assert!(last.varying.elapsed_secs < last.fixed.elapsed_secs);
    }

    #[test]
    fn paper_sizes_include_cases_whole_file_cannot_serve() {
        let config = CondorConfig::at_scale(Scale::Paper, 2);
        assert_eq!(config.sizes.len(), 8);
        // Only check the largest size to keep the test quick.
        let rows = run_table4(&CondorConfig {
            sizes: vec![ByteSize::gb(128)],
            ..config
        });
        let row = &rows[0];
        assert!(
            !row.whole.succeeded,
            "128 GB cannot be stored whole on any machine"
        );
        assert!(row.varying.succeeded);
        assert!(row.fixed.succeeded);
        assert!(row.varying.elapsed_secs < row.fixed.elapsed_secs);
    }
}
