//! The file-insertion comparison: Figures 7, 8, 9 and Table 1.
//!
//! The three systems — PAST, CFS, and PeerStripe ("Our System") — are each run
//! on an identically seeded cluster (same node ids, same contributed
//! capacities) and fed the same synthetic trace.  As files are inserted we
//! sample:
//!
//! * the cumulative percentage of failed file stores (Figure 7),
//! * the cumulative percentage of data that failed to be stored (Figure 8),
//! * the overall storage utilization (Figure 9),
//!
//! and at the end we report the chunk-count / chunk-size statistics of CFS and
//! PeerStripe (Table 1).  The three systems run in parallel threads (one cluster
//! each) since they are completely independent.

use crate::scale::Scale;
use peerstripe_baselines::{Cfs, CfsConfig, Past, PastConfig};
use peerstripe_core::{ClusterConfig, PeerStripe, PeerStripeConfig, StorageSystem};
use peerstripe_sim::stats::Figure;
use peerstripe_sim::{ByteSize, DetRng, Series};
use peerstripe_trace::{Trace, TraceConfig};

/// Which of the three systems a result row belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// PAST-style whole-file placement.
    Past,
    /// CFS-style fixed-size blocks.
    Cfs,
    /// PeerStripe (the paper's "Our System").
    PeerStripe,
}

impl SystemKind {
    /// Legend label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::Past => "PAST",
            SystemKind::Cfs => "CFS",
            SystemKind::PeerStripe => "Our System",
        }
    }
}

/// Per-system outcome of the insertion sweep.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// Which system this is.
    pub kind: SystemKind,
    /// (files inserted, % failed stores) samples — Figure 7.
    pub failed_stores: Series,
    /// (files inserted, % failed bytes) samples — Figure 8.
    pub failed_bytes: Series,
    /// (files inserted, % utilization) samples — Figure 9.
    pub utilization: Series,
    /// Mean / sd of chunks per file — Table 1.
    pub chunk_count_mean: f64,
    /// Standard deviation of chunks per file.
    pub chunk_count_sd: f64,
    /// Mean chunk size — Table 1.
    pub chunk_size_mean: ByteSize,
    /// Standard deviation of chunk size.
    pub chunk_size_sd: ByteSize,
    /// Final failed-store percentage.
    pub final_failed_pct: f64,
    /// Final failed-bytes percentage.
    pub final_failed_bytes_pct: f64,
    /// Final utilization percentage.
    pub final_utilization_pct: f64,
}

/// The full result of the insertion comparison.
#[derive(Debug, Clone)]
pub struct StoreComparison {
    /// One run per system, in `[PAST, CFS, PeerStripe]` order.
    pub runs: Vec<SystemRun>,
    /// Number of files offered.
    pub files_offered: usize,
    /// Total bytes offered.
    pub bytes_offered: ByteSize,
    /// Total cluster capacity.
    pub capacity: ByteSize,
}

impl StoreComparison {
    /// Look up a run by system kind.
    pub fn run(&self, kind: SystemKind) -> &SystemRun {
        self.runs
            .iter()
            .find(|r| r.kind == kind)
            .expect("all three systems present") // lint:allow(panic) -- run_store_comparison always produces all three systems
    }

    /// Figure 7: failed stores vs. files inserted.
    pub fn figure7(&self) -> Figure {
        self.figure(
            |r| r.failed_stores.clone(),
            "Figure 7: failed file stores",
            "% failed stores",
        )
    }

    /// Figure 8: failed bytes vs. files inserted.
    pub fn figure8(&self) -> Figure {
        self.figure(
            |r| r.failed_bytes.clone(),
            "Figure 8: failed store data",
            "% failed data",
        )
    }

    /// Figure 9: utilization vs. files inserted.
    pub fn figure9(&self) -> Figure {
        self.figure(
            |r| r.utilization.clone(),
            "Figure 9: system utilization",
            "% utilization",
        )
    }

    fn figure(&self, pick: impl Fn(&SystemRun) -> Series, title: &str, y: &str) -> Figure {
        let mut fig = Figure::new(title, "files inserted", y);
        for run in &self.runs {
            fig.push_series(pick(run));
        }
        fig
    }
}

/// Configuration of the insertion comparison.
#[derive(Debug, Clone)]
pub struct StoreSimConfig {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// Number of trace files inserted.
    pub files: usize,
    /// Number of sample points along the insertion.
    pub samples: usize,
    /// Whether per-object/manifest tracking is enabled (off for paper scale).
    pub track_objects: bool,
    /// Base random seed.
    pub seed: u64,
}

impl StoreSimConfig {
    /// Configuration for a given scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        StoreSimConfig {
            nodes: scale.nodes(),
            files: scale.trace_files(),
            samples: scale.sample_points(),
            track_objects: !matches!(scale, Scale::Paper),
            seed,
        }
    }
}

/// Run the insertion comparison for all three systems.
pub fn run_store_comparison(config: &StoreSimConfig) -> StoreComparison {
    let trace = TraceConfig::scaled(config.files).generate(config.seed ^ 0x7ace);
    let bytes_offered = trace.total_size();

    let kinds = [SystemKind::Past, SystemKind::Cfs, SystemKind::PeerStripe];
    let mut runs: Vec<Option<SystemRun>> = vec![None, None, None];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, kind) in kinds.iter().enumerate() {
            let trace = &trace;
            handles.push((
                i,
                scope.spawn(move || run_single_system(*kind, config, trace)),
            ));
        }
        for (i, handle) in handles {
            runs[i] = Some(handle.join().expect("system run panicked")); // lint:allow(panic) -- worker panic is unrecoverable; propagate it to the caller
        }
    });
    // The three clusters are identically seeded; recompute the shared capacity once.
    let mut rng = DetRng::new(config.seed);
    let cluster = ClusterConfig::scaled(config.nodes).build(&mut rng);

    StoreComparison {
        runs: runs.into_iter().map(Option::unwrap).collect(),
        files_offered: config.files,
        bytes_offered,
        capacity: cluster.total_capacity(),
    }
}

/// Run the insertion sweep for one system.
pub fn run_single_system(kind: SystemKind, config: &StoreSimConfig, trace: &Trace) -> SystemRun {
    let mut rng = DetRng::new(config.seed);
    let mut cluster_cfg = ClusterConfig::scaled(config.nodes);
    cluster_cfg.track_objects = config.track_objects;
    let cluster = cluster_cfg.build(&mut rng);

    let mut system: Box<dyn StorageSystem> = match kind {
        SystemKind::Past => Box::new(Past::new(
            cluster,
            PastConfig {
                // Published PAST does not keep re-salting an insert that hit a
                // full node (it diverts replicas, then fails); the paper's 36 %
                // failure level is only reachable without a deep retry budget.
                retries: 0,
                track_manifests: false,
                ..PastConfig::default()
            },
        )),
        SystemKind::Cfs => Box::new(Cfs::new(
            cluster,
            CfsConfig {
                // CFS retries are per 4 MB block, and a block only needs a node
                // with 4 MB free, so its effective retry budget is deeper than
                // PAST's whole-file placement (see EXPERIMENTS.md calibration).
                retries_per_block: 8,
                track_manifests: false,
                ..CfsConfig::paper_simulation()
            },
        )),
        SystemKind::PeerStripe => Box::new(PeerStripe::new(
            cluster,
            PeerStripeConfig {
                // Table 1 reports ~3.7 chunks of ~81 MB per 243 MB file, which
                // implies the per-probe report was effectively bounded around
                // 80–100 MB; we reproduce that with the Section 4.3 local policy
                // of reporting only part of the free space per getCapacity.
                max_chunk_size: Some(ByteSize::mb(96)),
                track_manifests: false,
                ..PeerStripeConfig::paper_simulation()
            },
        )),
    };

    let sample_every = (trace.len() / config.samples.max(1)).max(1);
    let mut failed_stores = Series::new(kind.label());
    let mut failed_bytes = Series::new(kind.label());
    let mut utilization = Series::new(kind.label());
    for (i, file) in trace.files.iter().enumerate() {
        let _ = system.store_file(file);
        let inserted = (i + 1) as f64;
        if (i + 1) % sample_every == 0 || i + 1 == trace.len() {
            let m = system.metrics();
            failed_stores.push(inserted, m.failed_store_pct());
            failed_bytes.push(inserted, m.failed_bytes_pct());
            utilization.push(inserted, system.utilization() * 100.0);
        }
    }

    let m = system.metrics();
    SystemRun {
        kind,
        final_failed_pct: m.failed_store_pct(),
        final_failed_bytes_pct: m.failed_bytes_pct(),
        final_utilization_pct: system.utilization() * 100.0,
        chunk_count_mean: m.mean_chunks_per_file(),
        chunk_count_sd: m.sd_chunks_per_file(),
        chunk_size_mean: m.mean_chunk_size(),
        chunk_size_sd: m.sd_chunk_size(),
        failed_stores,
        failed_bytes,
        utilization,
    }
}

/// Table 1: chunk-count and chunk-size statistics of CFS vs. PeerStripe.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// `(scheme, chunk count mean, sd, chunk size mean, sd)` rows.
    pub rows: Vec<(String, f64, f64, ByteSize, ByteSize)>,
}

impl StoreComparison {
    /// Extract Table 1 from the comparison.
    pub fn table1(&self) -> Table1 {
        let mut rows = Vec::new();
        for kind in [SystemKind::Cfs, SystemKind::PeerStripe] {
            let run = self.run(kind);
            rows.push((
                kind.label().to_string(),
                run.chunk_count_mean,
                run.chunk_count_sd,
                run.chunk_size_mean,
                run.chunk_size_sd,
            ));
        }
        Table1 { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_comparison() -> StoreComparison {
        run_store_comparison(&StoreSimConfig {
            nodes: 150,
            files: 150 * 120,
            samples: 6,
            track_objects: true,
            seed: 11,
        })
    }

    #[test]
    fn paper_orderings_hold_at_small_scale() {
        let cmp = small_comparison();
        let past = cmp.run(SystemKind::Past);
        let cfs = cmp.run(SystemKind::Cfs);
        let ours = cmp.run(SystemKind::PeerStripe);

        // Figure 7 ordering: PeerStripe fails least, PAST most.
        assert!(ours.final_failed_pct < cfs.final_failed_pct);
        assert!(cfs.final_failed_pct < past.final_failed_pct);
        assert!(past.final_failed_pct > 10.0, "PAST must fail substantially");
        assert!(ours.final_failed_pct < 15.0);

        // Figure 8 ordering: same for failed bytes.
        assert!(ours.final_failed_bytes_pct < cfs.final_failed_bytes_pct);
        assert!(cfs.final_failed_bytes_pct < past.final_failed_bytes_pct);

        // Figure 9 ordering: PeerStripe utilizes the system best.
        assert!(ours.final_utilization_pct > cfs.final_utilization_pct);
        assert!(cfs.final_utilization_pct > past.final_utilization_pct);

        // Table 1 shape: CFS creates an order of magnitude more, smaller chunks.
        assert!(cfs.chunk_count_mean > 10.0 * ours.chunk_count_mean);
        assert!(ours.chunk_size_mean > cfs.chunk_size_mean);
        assert!(cfs.chunk_size_mean <= ByteSize::mb(4));
    }

    #[test]
    fn curves_are_monotonic_in_failures() {
        let cmp = small_comparison();
        for run in &cmp.runs {
            for w in run.failed_stores.points.windows(2) {
                assert!(w[1].0 > w[0].0, "x increases");
            }
            for w in run.utilization.points.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9, "utilization never decreases");
            }
        }
    }

    #[test]
    fn figures_contain_all_three_series() {
        let cmp = small_comparison();
        for fig in [cmp.figure7(), cmp.figure8(), cmp.figure9()] {
            assert_eq!(fig.series.len(), 3);
            assert!(fig.series_named("PAST").is_some());
            assert!(fig.series_named("CFS").is_some());
            assert!(fig.series_named("Our System").is_some());
        }
        let t1 = cmp.table1();
        assert_eq!(t1.rows.len(), 2);
    }
}
