//! The `repair-sweep` experiment: durability over continuous churn.
//!
//! Sweeps the event-driven maintenance engine (`peerstripe-repair`) over
//! repair policy × permanence timeout × per-node bandwidth, at up to the
//! paper's 10 000-node scale, and reports what each configuration buys:
//! objects lost, availability over time, and — the maintenance bill — repair
//! bytes spent per useful byte protected.  The comparison the sweep exists
//! for: *lazy/threshold* repair spends measurably less than *eager* repair at
//! equal or better durability, because batching amortises decode reads and
//! aggressive timeouts stop costing traffic for nodes that were coming back
//! anyway.

use crate::scale::Scale;
use peerstripe_core::{
    ClusterConfig, CodingPolicy, DamageLedger, PeerStripe, PeerStripeConfig, StorageSystem,
};
use peerstripe_repair::{
    BandwidthBudget, ChurnProcess, DetectionKind, DetectorConfig, MaintenanceEngine, RepairConfig,
    RepairPolicy, SessionModel,
};
use peerstripe_sim::{ByteSize, DetRng, SimTime};
use peerstripe_telemetry::{MetricsRegistry, RegistryExport, RunManifest};
use peerstripe_trace::TraceConfig;
use serde::Serialize;

/// Configuration of the repair sweep.
#[derive(Debug, Clone)]
pub struct RepairSweepConfig {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// Number of files distributed before churn starts.
    pub files: usize,
    /// Virtual hours of churn to simulate per configuration.
    pub sim_hours: f64,
    /// Mean node session length, hours.
    pub mean_session_hours: f64,
    /// Mean node downtime, hours.
    pub mean_downtime_hours: f64,
    /// Probability a departure is permanent.
    pub permanent_fraction: f64,
    /// Repair policies to sweep.
    pub policies: Vec<RepairPolicy>,
    /// Permanence timeouts to sweep, hours.
    pub timeouts_hours: Vec<f64>,
    /// Symmetric per-node bandwidth budgets to sweep (bytes/second).
    pub bandwidths: Vec<ByteSize>,
    /// Base random seed.
    pub seed: u64,
}

impl RepairSweepConfig {
    /// Configuration for a given scale: desktop-grid churn (12 h sessions,
    /// 3 h downtimes — nodes up 80 % of the time — with 1 % permanent
    /// departures), eager vs. lazy repair, an aggressive and a conservative
    /// timeout, a thin and a comfortable pipe.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let nodes = scale.nodes();
        RepairSweepConfig {
            nodes,
            files: nodes * 8,
            sim_hours: match scale {
                Scale::Small => 48.0,
                Scale::Medium => 72.0,
                Scale::Paper => 96.0,
            },
            mean_session_hours: 12.0,
            mean_downtime_hours: 3.0,
            permanent_fraction: 0.01,
            policies: vec![
                RepairPolicy::Eager,
                RepairPolicy::Lazy { margin: 2 },
                RepairPolicy::Lazy { margin: 0 },
            ],
            timeouts_hours: vec![6.0, 24.0],
            bandwidths: vec![ByteSize::mb(1), ByteSize::mb(8)],
            seed,
        }
    }
}

/// The redundancy the sweep deploys with: 8 placed blocks per chunk of which
/// any 4 recover it.  Lazy repair needs slack between full redundancy and the
/// decode threshold to batch within — the regime durability-oriented
/// maintenance systems actually run at — while the paper's default 6/4 online
/// geometry leaves a margin-0 lazy policy nothing to wait with.
fn sweep_coding() -> CodingPolicy {
    CodingPolicy::Online {
        placed: 8,
        tolerable: 4,
        overhead: 1.03,
    }
}

/// One swept configuration's outcome.
#[derive(Debug, Clone)]
pub struct RepairSweepRow {
    /// Repair policy.
    pub policy: RepairPolicy,
    /// Permanence timeout, hours.
    pub timeout_hours: f64,
    /// Symmetric per-node bandwidth budget.
    pub bandwidth: ByteSize,
    /// Files permanently lost.
    pub files_lost: u64,
    /// Mean sampled availability percentage.
    pub availability_mean_pct: f64,
    /// Lowest sampled availability percentage.
    pub availability_min_pct: f64,
    /// Total repair traffic.
    pub repair_bytes: ByteSize,
    /// Repair traffic per useful byte protected.
    pub repair_per_useful_byte: f64,
    /// Nodes declared dead that later returned.
    pub false_declarations: u64,
    /// Permanent node failures the run drew.
    pub permanent_failures: u64,
    /// Events the engine processed.
    pub events: u64,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct RepairSweep {
    /// One row per swept configuration, in sweep order
    /// (bandwidth-major, then timeout, then policy).
    pub rows: Vec<RepairSweepRow>,
    /// Nodes in the deployment.
    pub nodes: usize,
    /// Files tracked.
    pub files_total: u64,
    /// User bytes under maintenance.
    pub useful_bytes: ByteSize,
    /// Virtual hours simulated per configuration.
    pub sim_hours: f64,
    /// The effective configuration, emitted as the header of the JSON export.
    pub manifest: RunManifest,
    /// Every cell's maintenance counters on the shared telemetry registry,
    /// labelled by `policy`/`timeout_h`/`bandwidth`.
    pub registry: MetricsRegistry,
}

impl RepairSweep {
    /// JSON export: the [`RunManifest`] header followed by the labelled
    /// metrics-registry contents.
    pub fn render_json(&self) -> String {
        #[derive(Serialize)]
        struct Export {
            manifest: RunManifest,
            metrics: RegistryExport,
        }
        serde_json::to_string(&Export {
            manifest: self.manifest.clone(),
            metrics: self.registry.export(),
        })
        .unwrap_or_default()
    }

    /// Matched eager/lazy pairs at the same timeout and bandwidth:
    /// `(eager, lazy)` row index pairs.
    pub fn matched_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for (i, a) in self.rows.iter().enumerate() {
            if a.policy != RepairPolicy::Eager {
                continue;
            }
            for (j, b) in self.rows.iter().enumerate() {
                if matches!(b.policy, RepairPolicy::Lazy { .. })
                    && b.timeout_hours == a.timeout_hours
                    && b.bandwidth == a.bandwidth
                {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    /// True if some matched configuration shows the lazy policy spending
    /// strictly fewer repair bytes per useful byte at equal-or-better
    /// durability — the trade-off the sweep exists to demonstrate.
    pub fn lazy_beats_eager_somewhere(&self) -> bool {
        self.matched_pairs().iter().any(|&(e, l)| {
            self.rows[l].repair_per_useful_byte < self.rows[e].repair_per_useful_byte
                && self.rows[l].files_lost <= self.rows[e].files_lost
        })
    }
}

/// Deploy the trace once, then run the engine over a cloned cluster/ledger per
/// swept configuration, so every configuration faces the same initial
/// placement (and, with the same seed, the same churn process).
pub fn run_repair_sweep(config: &RepairSweepConfig) -> RepairSweep {
    let mut rng = DetRng::new(config.seed);
    let cluster = ClusterConfig::scaled(config.nodes).build(&mut rng);
    let mut ps = PeerStripe::new(
        cluster,
        PeerStripeConfig::default().with_coding(sweep_coding()),
    );
    let trace = TraceConfig::scaled(config.files).generate(config.seed ^ 0xc0de);
    for file in &trace.files {
        let _ = ps.store_file(file);
    }
    let manifests = ps.manifests().clone();
    let base_cluster = ps.into_cluster();
    // What is under maintenance is a property of the deployment, not of any
    // swept configuration.
    let deployed = DamageLedger::build(&manifests);

    let churn = ChurnProcess {
        sessions: SessionModel::Synthetic {
            mean_session_secs: config.mean_session_hours * 3_600.0,
            mean_downtime_secs: config.mean_downtime_hours * 3_600.0,
        },
        permanent_fraction: config.permanent_fraction,
        grouped: None,
    };
    let horizon = SimTime::from_secs_f64(config.sim_hours * 3_600.0);

    let mut manifest = RunManifest::new(
        "repair-sweep",
        config.seed,
        &format!("{} nodes", config.nodes),
    );
    manifest.push("files", config.files.to_string());
    manifest.push("sim_hours", format!("{}", config.sim_hours));
    if let (Some(&policy), Some(&timeout_hours), Some(&bandwidth)) = (
        config.policies.first(),
        config.timeouts_hours.first(),
        config.bandwidths.first(),
    ) {
        // The first cell's effective repair/detector configuration; the swept
        // axes below say how the other cells differ.
        let representative = RepairConfig {
            policy,
            detector: DetectorConfig::default_desktop_grid().with_timeout(timeout_hours * 3_600.0),
            detection: DetectionKind::PerNodeTimeout,
            bandwidth: BandwidthBudget::symmetric(bandwidth),
            sample_period_secs: 3_600.0,
        };
        manifest.extend(representative.manifest_entries());
    }
    manifest.extend(churn.manifest_entries());
    let policies: Vec<String> = config.policies.iter().map(|p| p.label()).collect();
    manifest.push("sweep.policies", policies.join(","));
    let timeouts: Vec<String> = config
        .timeouts_hours
        .iter()
        .map(|t| format!("{t}"))
        .collect();
    manifest.push("sweep.timeouts_hours", timeouts.join(","));
    let bandwidths: Vec<String> = config
        .bandwidths
        .iter()
        .map(|b| b.as_u64().to_string())
        .collect();
    manifest.push("sweep.bandwidths", bandwidths.join(","));
    let mut registry = MetricsRegistry::new();

    let mut rows = Vec::new();
    for &bandwidth in &config.bandwidths {
        for &timeout_hours in &config.timeouts_hours {
            for &policy in &config.policies {
                let repair = RepairConfig {
                    policy,
                    detector: DetectorConfig::default_desktop_grid()
                        .with_timeout(timeout_hours * 3_600.0),
                    detection: DetectionKind::PerNodeTimeout,
                    bandwidth: BandwidthBudget::symmetric(bandwidth),
                    sample_period_secs: 3_600.0,
                };
                let mut engine = MaintenanceEngine::new(
                    base_cluster.clone(),
                    &manifests,
                    churn.clone(),
                    repair,
                    config.seed,
                );
                engine.run_for(horizon);
                let cell = [
                    ("policy".to_string(), policy.label()),
                    ("timeout_h".to_string(), format!("{timeout_hours}")),
                    ("bandwidth".to_string(), bandwidth.as_u64().to_string()),
                ];
                let labels: Vec<(&str, &str)> =
                    cell.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                engine.metrics().fill_registry(&mut registry, &labels);
                let report = engine.report();
                rows.push(RepairSweepRow {
                    policy,
                    timeout_hours,
                    bandwidth,
                    files_lost: report.files_lost,
                    availability_mean_pct: report.availability_mean_pct,
                    availability_min_pct: report.availability_min_pct,
                    repair_bytes: report.repair_bytes,
                    repair_per_useful_byte: report.repair_per_useful_byte,
                    false_declarations: report.false_declarations,
                    permanent_failures: report.permanent_failures,
                    events: report.events,
                });
            }
        }
    }
    RepairSweep {
        rows,
        nodes: config.nodes,
        files_total: deployed.file_count() as u64,
        useful_bytes: deployed.tracked_bytes(),
        sim_hours: config.sim_hours,
        manifest,
        registry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> RepairSweepConfig {
        RepairSweepConfig {
            nodes: 150,
            files: 600,
            sim_hours: 36.0,
            mean_session_hours: 8.0,
            mean_downtime_hours: 4.0,
            permanent_fraction: 0.01,
            policies: vec![
                RepairPolicy::Eager,
                RepairPolicy::Lazy { margin: 2 },
                RepairPolicy::Lazy { margin: 0 },
            ],
            timeouts_hours: vec![24.0],
            bandwidths: vec![ByteSize::mb(4)],
            seed: 33,
        }
    }

    #[test]
    fn lazy_spends_less_at_equal_or_better_durability() {
        let sweep = run_repair_sweep(&small_config());
        assert_eq!(sweep.rows.len(), 3);
        assert!(sweep.files_total > 0);
        assert!(!sweep.matched_pairs().is_empty());
        for row in &sweep.rows {
            assert!(row.events > 0);
            assert!((0.0..=100.0).contains(&row.availability_mean_pct));
            // Eager repairs every confirmed loss, so with permanent failures in
            // the run it must spend traffic; a lazy row may legitimately spend
            // nothing (no chunk sank to its threshold).
            if row.policy == RepairPolicy::Eager {
                assert!(row.permanent_failures > 0, "{row:?}");
                assert!(row.repair_bytes > ByteSize::ZERO, "{row:?}");
            }
        }
        assert!(
            sweep.lazy_beats_eager_somewhere(),
            "lazy must beat eager somewhere: {:#?}",
            sweep.rows
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_repair_sweep(&small_config());
        let b = run_repair_sweep(&small_config());
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.repair_bytes, rb.repair_bytes);
            assert_eq!(ra.files_lost, rb.files_lost);
            assert_eq!(ra.events, rb.events);
            assert_eq!(ra.false_declarations, rb.false_declarations);
        }
        assert_eq!(a.registry.export(), b.registry.export());
        assert_eq!(a.render_json(), b.render_json());
    }

    #[test]
    fn registry_balances_with_rows_and_manifest_leads_the_json() {
        let sweep = run_repair_sweep(&small_config());
        // Every cell's labelled registry counters must balance the row's
        // bespoke accounting exactly — the port, not a reimplementation.
        for row in &sweep.rows {
            let (timeout, bandwidth) = (
                format!("{}", row.timeout_hours),
                row.bandwidth.as_u64().to_string(),
            );
            let policy = row.policy.label();
            let labels: [(&str, &str); 3] = [
                ("policy", policy.as_str()),
                ("timeout_h", timeout.as_str()),
                ("bandwidth", bandwidth.as_str()),
            ];
            assert_eq!(
                sweep
                    .registry
                    .find_counter("maintenance_files_lost_total", &labels),
                Some(row.files_lost),
                "{labels:?}"
            );
            assert_eq!(
                sweep
                    .registry
                    .find_counter("maintenance_repair_bytes_total", &labels),
                Some(row.repair_bytes.as_u64()),
                "{labels:?}"
            );
            assert_eq!(
                sweep
                    .registry
                    .find_counter("maintenance_false_declarations_total", &labels),
                Some(row.false_declarations),
                "{labels:?}"
            );
        }
        // The manifest header leads the JSON export and names the swept axes.
        let json = sweep.render_json();
        assert!(json.starts_with("{\"manifest\""), "{}", &json[..40]);
        assert_eq!(
            sweep.manifest.get("sweep.policies"),
            Some("eager,lazy(k=2),lazy(k=0)")
        );
        assert_eq!(sweep.manifest.get("repair.policy"), Some("eager"));
        assert!(sweep.manifest.get("churn.sessions").is_some());
    }
}
