//! Multicast replica-creation experiments: Figures 11 and 12.
//!
//! Figure 11 sweeps the RanSub set size from 3 % to 16 % of the 63-node binary
//! tree and plots the average number of packets received per node over time;
//! Figure 12 fixes RanSub at 16 % and plots the minimum, average, and maximum.

use crate::scale::Scale;
use peerstripe_multicast::{BulletConfig, BulletSim, MulticastTree};
use peerstripe_sim::stats::Figure;
use peerstripe_sim::DetRng;

/// The RanSub fractions swept in Figure 11 (3 %–16 % of the tree).
pub const RANSUB_FRACTIONS: [f64; 9] = [0.03, 0.05, 0.06, 0.08, 0.10, 0.11, 0.13, 0.14, 0.16];

/// Configuration of the multicast experiments.
#[derive(Debug, Clone, Copy)]
pub struct MulticastConfig {
    /// Height of the binary dissemination tree (5 in the paper → 63 nodes).
    pub tree_height: u32,
    /// Number of packets the chunk is divided into (1 000 in the paper).
    pub packets: usize,
    /// Per-epoch download budget per node.
    pub per_epoch_budget: usize,
    /// Random seed.
    pub seed: u64,
}

impl MulticastConfig {
    /// Configuration for a given scale (the tree is always the paper's 63-node
    /// binary tree; only the packet count shrinks at smaller scales).
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        MulticastConfig {
            tree_height: 5,
            packets: scale.multicast_packets(),
            per_epoch_budget: 4,
            seed,
        }
    }

    fn bullet_config(&self, fraction: f64) -> BulletConfig {
        BulletConfig {
            packets: self.packets,
            ransub_fraction: fraction,
            per_epoch_budget: self.per_epoch_budget,
            upload_budget: self.per_epoch_budget + 2,
            max_epochs: 50 * self.packets,
        }
    }
}

/// Result of the Figure 11 sweep.
#[derive(Debug, Clone)]
pub struct RanSubSweep {
    /// One (epoch, avg packets/node) curve per RanSub fraction, largest first
    /// (the ordering used in the paper's legend).
    pub figure: Figure,
    /// Completion epoch per fraction, in the order of [`RANSUB_FRACTIONS`].
    pub completion_epochs: Vec<usize>,
}

/// Run the Figure 11 sweep.
pub fn run_ransub_sweep(config: &MulticastConfig) -> RanSubSweep {
    let mut figure = Figure::new(
        "Figure 11: packets received per node vs. time",
        "epochs",
        "average packets per node",
    );
    let mut completion = Vec::new();
    for &fraction in RANSUB_FRACTIONS.iter().rev() {
        let tree = MulticastTree::binary(config.tree_height);
        let mut rng = DetRng::new(config.seed).fork_indexed("ransub", (fraction * 100.0) as u64);
        let run = BulletSim::new(tree, config.bullet_config(fraction)).run(&mut rng);
        figure.push_series(run.avg_series(format!("RanSub = {:.0}%", fraction * 100.0)));
        completion.push(run.completed_at.unwrap_or(usize::MAX));
    }
    completion.reverse();
    RanSubSweep {
        figure,
        completion_epochs: completion,
    }
}

/// Result of the Figure 12 run (RanSub = 16 %).
#[derive(Debug, Clone)]
pub struct SpreadResult {
    /// The min / average / max curves.
    pub figure: Figure,
    /// Epoch at which dissemination completed.
    pub completed_at: Option<usize>,
}

/// Run the Figure 12 experiment.
pub fn run_spread(config: &MulticastConfig) -> SpreadResult {
    let tree = MulticastTree::binary(config.tree_height);
    let mut rng = DetRng::new(config.seed).fork("spread");
    let run = BulletSim::new(tree, config.bullet_config(0.16)).run(&mut rng);
    let (min, avg, max) = run.spread_series();
    let mut figure = Figure::new(
        "Figure 12: packet spread per node (RanSub = 16%)",
        "epochs",
        "packets per node",
    );
    figure.push_series(max);
    figure.push_series(avg);
    figure.push_series(min);
    SpreadResult {
        figure,
        completed_at: run.completed_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MulticastConfig {
        MulticastConfig {
            tree_height: 5,
            packets: 120,
            per_epoch_budget: 4,
            seed: 5,
        }
    }

    #[test]
    fn sweep_produces_one_curve_per_fraction() {
        let sweep = run_ransub_sweep(&tiny());
        assert_eq!(sweep.figure.series.len(), RANSUB_FRACTIONS.len());
        assert_eq!(sweep.completion_epochs.len(), RANSUB_FRACTIONS.len());
        assert!(sweep.figure.series_named("RanSub = 16%").is_some());
        assert!(sweep.figure.series_named("RanSub = 3%").is_some());
        // Every run completed.
        assert!(sweep.completion_epochs.iter().all(|&e| e != usize::MAX));
    }

    #[test]
    fn larger_ransub_never_completes_later_by_much() {
        // Figure 11's trend: completion time decreases (then saturates) as the
        // RanSub fraction grows.  Compare the smallest and the largest.
        let sweep = run_ransub_sweep(&tiny());
        let smallest = sweep.completion_epochs[0];
        let largest = *sweep.completion_epochs.last().unwrap();
        assert!(
            largest <= smallest,
            "16% ({largest}) should finish no later than 3% ({smallest})"
        );
    }

    #[test]
    fn spread_min_avg_max_ordering() {
        let spread = run_spread(&tiny());
        assert!(spread.completed_at.is_some());
        let max = spread.figure.series_named("Max").unwrap();
        let avg = spread.figure.series_named("Average").unwrap();
        let min = spread.figure.series_named("Min").unwrap();
        for i in 0..max.points.len() {
            assert!(min.points[i].1 <= avg.points[i].1 + 1e-9);
            assert!(avg.points[i].1 <= max.points[i].1 + 1e-9);
        }
        // Dissemination finishes with everyone holding every packet.
        assert_eq!(min.last_y(), Some(120.0));
    }
}
