//! `repro bench-snapshot` — one-shot, in-process perf snapshots of the two
//! hot paths the criterion benches guard, written as small JSON files under
//! `benchmarks/` so perf regressions show up in review as a diff.
//!
//! The snapshots mirror `crates/bench/benches/repair_schedule.rs`,
//! `detector_decide.rs` and `placement_decide.rs` exactly (same deployment,
//! same churn, same decide loop) — plus a `wire_roundtrip` snapshot covering
//! the networked path's frame encode/decode and an `rs_encode` snapshot
//! covering erasure-encode throughput (scalar vs `nibble64` kernel vs
//! parallel) — but run each measurement a handful of times and keep the best —
//! good enough to catch an order-of-magnitude regression without criterion's
//! multi-minute statistics.  Numbers are machine-dependent by nature; the
//! committed files record the machine-independent *shape* (events processed,
//! verdict counts) next to the throughput observed when they were captured.
//!
//! This file is on the linter's `WALL_CLOCK_EXEMPT` list: measuring elapsed
//! wall time is its whole job.  Nothing here feeds simulation results.

use crate::Scale;
use peerstripe_core::{
    ClusterConfig, CodingPolicy, ObjectName, PeerStripe, PeerStripeConfig, StorageSystem,
};
use peerstripe_net::protocol::{read_request_traced, write_request_traced};
use peerstripe_net::Request;
use peerstripe_overlay::Id;
use peerstripe_placement::{RepairRequest, StrategyKind, Topology};
use peerstripe_repair::{
    BandwidthBudget, ChurnProcess, DeclarationVerdict, DetectionKind, DetectionPolicy,
    DetectorConfig, MaintenanceEngine, OutageAware, OutageAwareConfig, PerNodeTimeout,
    RepairConfig, RepairPolicy, SessionModel,
};
use peerstripe_sim::{ByteSize, DetRng, SimTime};
use peerstripe_trace::TraceConfig;
use serde::Deserialize;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Domain size used by the detector benches (matches `detector_decide.rs`).
const GROUP_SIZE: usize = 25;
/// Measurement repetitions per configuration; the best run is kept.
const REPS: usize = 3;
/// Blocks per chunk in the placement bench (matches `placement_decide.rs`).
const BLOCKS_PER_CHUNK: usize = 8;
/// Per-domain block cap in the placement bench (matches `placement_decide.rs`).
const DOMAIN_CAP: usize = 4;

/// Parameters of a snapshot run.
#[derive(Debug, Clone)]
pub struct BenchSnapshotConfig {
    /// Node counts to measure at (the benches use 1 000 and 10 000).
    pub node_counts: Vec<usize>,
    /// Deployment / churn seed.
    pub seed: u64,
}

impl BenchSnapshotConfig {
    /// The configuration matching the committed criterion benches.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let node_counts = match scale {
            Scale::Small => vec![200, 1_000],
            _ => vec![1_000, 10_000],
        };
        BenchSnapshotConfig { node_counts, seed }
    }
}

/// One measured configuration within a snapshot.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Sub-benchmark id, e.g. `churn_24h/1000_nodes`.
    pub id: String,
    /// Work units completed in the measured run (events, verdicts, cycles).
    pub work_units: u64,
    /// Best observed throughput, work units per second.
    pub per_sec: f64,
}

/// A named collection of rows, renderable as JSON.
#[derive(Debug, Clone)]
pub struct BenchSnapshot {
    /// Snapshot name (`repair_schedule` or `detector_decide`).
    pub name: String,
    /// Seed the deployment and churn used.
    pub seed: u64,
    /// Measured rows in execution order.
    pub rows: Vec<BenchRow>,
}

impl BenchSnapshot {
    /// Render the snapshot as stable, diff-friendly JSON.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"{}\",", self.name);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"captured_with\": \"repro bench-snapshot\",");
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{ \"id\": \"{}\", \"work_units\": {}, \"per_sec\": {:.1} }}{comma}",
                row.id, row.work_units, row.per_sec
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Deploy a cluster with a light per-node file load (mirrors
/// `repair_schedule.rs::deploy`).
fn deploy(
    nodes: usize,
    seed: u64,
) -> (
    peerstripe_core::StorageCluster,
    peerstripe_core::ManifestStore,
) {
    let mut rng = DetRng::new(seed);
    let cluster = ClusterConfig::scaled(nodes).build(&mut rng);
    let mut ps = PeerStripe::new(
        cluster,
        PeerStripeConfig::default().with_coding(CodingPolicy::online_default()),
    );
    let trace = TraceConfig::scaled(nodes * 2).generate(seed ^ 0xc0de);
    for file in &trace.files {
        let _ = ps.store_file(file);
    }
    let manifests = ps.manifests().clone();
    (ps.into_cluster(), manifests)
}

/// Build the maintenance engine the bench drives (mirrors
/// `repair_schedule.rs::engine_of`).
fn engine_of(
    cluster: peerstripe_core::StorageCluster,
    manifests: &peerstripe_core::ManifestStore,
    seed: u64,
) -> MaintenanceEngine {
    let churn = ChurnProcess {
        sessions: SessionModel::Synthetic {
            mean_session_secs: 8.0 * 3_600.0,
            mean_downtime_secs: 4.0 * 3_600.0,
        },
        permanent_fraction: 0.01,
        grouped: None,
    };
    let config = RepairConfig {
        policy: RepairPolicy::Eager,
        detector: DetectorConfig::default_desktop_grid().with_timeout(24.0 * 3_600.0),
        detection: DetectionKind::PerNodeTimeout,
        bandwidth: BandwidthBudget::symmetric(ByteSize::mb(4)),
        sample_period_secs: 3_600.0,
    };
    MaintenanceEngine::new(cluster, manifests, churn, config, seed)
}

/// Maintenance-engine event throughput over 24 h of churn.
pub fn run_repair_schedule_snapshot(config: &BenchSnapshotConfig) -> BenchSnapshot {
    let mut rows = Vec::new();
    for &nodes in &config.node_counts {
        let (cluster, manifests) = deploy(nodes, config.seed);
        let mut best_per_sec = 0.0f64;
        let mut work_units = 0u64;
        for _ in 0..REPS {
            let mut engine = engine_of(cluster.clone(), &manifests, config.seed);
            let started = Instant::now();
            engine.run_for(SimTime::from_secs(24 * 3_600));
            let elapsed = started.elapsed().as_secs_f64().max(1e-9);
            let events = engine.events_processed();
            work_units = events;
            best_per_sec = best_per_sec.max(events as f64 / elapsed);
        }
        rows.push(BenchRow {
            id: format!("churn_24h/{nodes}_nodes"),
            work_units,
            per_sec: best_per_sec,
        });
    }
    BenchSnapshot {
        name: "repair_schedule".to_string(),
        seed: config.seed,
        rows,
    }
}

/// Clustered-downtime setup shared by the decide rows (mirrors
/// `detector_decide.rs::take_half_down`).
fn take_half_down(
    policy: &mut dyn DetectionPolicy,
    nodes: usize,
) -> Vec<peerstripe_repair::PendingDeclaration> {
    let at = SimTime::from_secs(1_000);
    (0..nodes)
        .filter(|n| n % 2 == 0)
        .map(|n| policy.node_down(n, at))
        .collect()
}

fn detector_config() -> DetectorConfig {
    DetectorConfig::default_desktop_grid().with_timeout(4.0 * 3_600.0)
}

/// Detection-policy decide and down/up throughput for both policies.
pub fn run_detector_decide_snapshot(config: &BenchSnapshotConfig) -> BenchSnapshot {
    let mut rows = Vec::new();
    for &nodes in &config.node_counts {
        let topology = Topology::uniform_groups(nodes, GROUP_SIZE);
        let policies: Vec<(&str, Box<dyn DetectionPolicy>)> = vec![
            (
                "per-node",
                Box::new(PerNodeTimeout::new(nodes, detector_config())),
            ),
            (
                "outage-aware",
                Box::new(OutageAware::new(
                    nodes,
                    detector_config(),
                    topology.domain_view(),
                    OutageAwareConfig::default_desktop_grid(),
                )),
            ),
        ];
        for (label, mut policy) in policies {
            let pendings = take_half_down(policy.as_mut(), nodes);
            // Decide throughput: one verdict per down node per pass.
            let mut best = 0.0f64;
            for _ in 0..REPS {
                let started = Instant::now();
                let mut verdicts = 0u64;
                while started.elapsed().as_secs_f64() < 0.1 {
                    for (i, p) in pendings.iter().enumerate() {
                        match policy.decide(i * 2, p.generation, p.declare_at) {
                            DeclarationVerdict::Declare
                            | DeclarationVerdict::Hold { .. }
                            | DeclarationVerdict::Cancel => verdicts += 1,
                        }
                    }
                }
                best = best.max(verdicts as f64 / started.elapsed().as_secs_f64());
            }
            rows.push(BenchRow {
                id: format!("decide/{label}/{nodes}_nodes"),
                work_units: pendings.len() as u64,
                per_sec: best,
            });
            // Departure bookkeeping: a down/up cycle per node per pass.
            let mut best = 0.0f64;
            let mut t = 2_000u64;
            for _ in 0..REPS {
                let started = Instant::now();
                let mut cycles = 0u64;
                while started.elapsed().as_secs_f64() < 0.1 {
                    t += 1;
                    for node in 0..nodes {
                        let _ = policy.node_down(node, SimTime::from_secs(t));
                        policy.node_up(node, SimTime::from_secs(t + 1));
                        cycles += 1;
                    }
                }
                best = best.max(cycles as f64 / started.elapsed().as_secs_f64());
            }
            rows.push(BenchRow {
                id: format!("down_up/{label}/{nodes}_nodes"),
                work_units: nodes as u64,
                per_sec: best,
            });
        }
    }
    BenchSnapshot {
        name: "detector_decide".to_string(),
        seed: config.seed,
        rows,
    }
}

/// Placement decision throughput: chunk-placement plans and repair-target
/// picks per second for every strategy (mirrors `placement_decide.rs`).
pub fn run_placement_decide_snapshot(config: &BenchSnapshotConfig) -> BenchSnapshot {
    let mut rows = Vec::new();
    for &nodes in &config.node_counts {
        let mut rng = DetRng::new(7);
        let base = ClusterConfig::scaled(nodes).build(&mut rng);
        let topology = Topology::synthetic(nodes, 4, 8, 7);
        for kind in StrategyKind::ALL {
            // Chunk-placement planning: one 8-block plan per pass, fresh keys
            // per chunk (the store path's hot decision).
            let mut best = 0.0f64;
            for _ in 0..REPS {
                let mut cluster = base.clone();
                let mut strategy = kind.build(7);
                let mut chunk = 0u64;
                let started = Instant::now();
                let mut plans = 0u64;
                while started.elapsed().as_secs_f64() < 0.1 {
                    chunk += 1;
                    let keys: Vec<Id> = (0..BLOCKS_PER_CHUNK as u64)
                        .map(|ecb| Id::hash(&format!("bench-file_{chunk}_{ecb}")))
                        .collect();
                    let _ = strategy
                        .plan_chunk(&mut cluster, Some(&topology), &keys, DOMAIN_CAP)
                        .map(|picks| picks.len());
                    plans += 1;
                }
                best = best.max(plans as f64 / started.elapsed().as_secs_f64());
            }
            rows.push(BenchRow {
                id: format!("plan_chunk/{}/{nodes}_nodes", kind.label()),
                work_units: BLOCKS_PER_CHUNK as u64,
                per_sec: best,
            });
            // Repair targeting: one replacement pick against a half-placed
            // chunk (the maintenance engine's hot decision).
            let mut best = 0.0f64;
            for _ in 0..REPS {
                let cluster = base.clone();
                let mut strategy = kind.build(7);
                let mut pick_rng = DetRng::new(11);
                let holders: Vec<usize> = (0..BLOCKS_PER_CHUNK - 1).map(|i| i * 7).collect();
                let request = RepairRequest {
                    want: 1,
                    size: ByteSize::mb(8),
                    holders: &holders,
                    domain_cap: DOMAIN_CAP,
                };
                let started = Instant::now();
                let mut picks = 0u64;
                while started.elapsed().as_secs_f64() < 0.1 {
                    let _ = strategy
                        .repair_targets(&cluster, Some(&topology), &request, &mut pick_rng)
                        .len();
                    picks += 1;
                }
                best = best.max(picks as f64 / started.elapsed().as_secs_f64());
            }
            rows.push(BenchRow {
                id: format!("repair_targets/{}/{nodes}_nodes", kind.label()),
                work_units: 1,
                per_sec: best,
            });
        }
    }
    BenchSnapshot {
        name: "placement_decide".to_string(),
        seed: config.seed,
        rows,
    }
}

/// Wire-frame encode + decode throughput for the networked path's hot
/// frames: traced `StoreBlock` requests at several payload sizes, plus a
/// header-only `Ping` control row.  One pass is one traced write into a
/// reusable in-memory buffer followed by one traced read back — exactly what
/// `RingGateway::rpc` and the node server do per RPC, minus the socket — so
/// a regression here (e.g. an extra copy in the meta/rid path) shows up as a
/// frames-per-second collapse.
pub fn run_wire_roundtrip_snapshot(config: &BenchSnapshotConfig) -> BenchSnapshot {
    fn roundtrip_row(id: String, work_units: u64, req: &Request) -> BenchRow {
        let mut best = 0.0f64;
        for _ in 0..REPS {
            let mut buf: Vec<u8> = Vec::with_capacity(512 * 1024);
            let started = Instant::now();
            let mut frames = 0u64;
            while started.elapsed().as_secs_f64() < 0.1 {
                buf.clear();
                // lint:allow(panic) -- writing to a Vec cannot fail and the bench frames stay far under MAX_FRAME
                write_request_traced(&mut buf, req, Some(frames)).expect("in-memory frame write");
                let mut frame = buf.as_slice();
                // lint:allow(panic) -- decoding the bytes this bench just encoded cannot fail
                let (decoded, rid) = read_request_traced(&mut frame).expect("frame read");
                assert_eq!(rid, Some(frames), "request id must survive the roundtrip");
                std::hint::black_box(decoded);
                frames += 1;
            }
            best = best.max(frames as f64 / started.elapsed().as_secs_f64());
        }
        BenchRow {
            id,
            work_units,
            per_sec: best,
        }
    }

    let mut rows = vec![roundtrip_row("ping".to_string(), 0, &Request::Ping)];
    for kib in [1u64, 16, 256] {
        let size = ByteSize::kb(kib);
        let mut rng = DetRng::new(config.seed);
        let payload: Vec<u8> = (0..size.as_u64()).map(|_| rng.next_u64() as u8).collect();
        let req = Request::StoreBlock {
            key: Id::hash("bench-wire/0_0"),
            name: ObjectName::block("bench-wire", 0, 0),
            size,
            payload: Some(payload),
        };
        rows.push(roundtrip_row(
            format!("store_block/{kib}_kib"),
            size.as_u64(),
            &req,
        ));
    }
    BenchSnapshot {
        name: "wire_roundtrip".to_string(),
        seed: config.seed,
        rows,
    }
}

/// Reed–Solomon encode throughput: serial `scalar` kernel vs serial
/// `nibble64` kernel vs the column-stripe parallel path, at RS(5, 3) and
/// RS(8, 4) over 1 MB and 4 MB chunks (mirrors `rs_encode.rs`).  `per_sec`
/// is source **bytes** per second; all three paths are cross-checked for
/// byte-identical blocks before any number is recorded, so a kernel bug
/// fails the snapshot rather than polluting it.
pub fn run_rs_encode_snapshot(config: &BenchSnapshotConfig) -> BenchSnapshot {
    use peerstripe_erasure::{Gf256Kernel, ReedSolomonCode};
    let mut rows = Vec::new();
    for (data, parity) in [(5usize, 3usize), (8, 4)] {
        let scalar = ReedSolomonCode::new(data, parity).with_kernel(Gf256Kernel::Scalar);
        let fast = ReedSolomonCode::new(data, parity).with_kernel(Gf256Kernel::Nibble64);
        for mb in [1u64, 4] {
            let size = ByteSize::mb(mb);
            let mut rng = DetRng::new(config.seed);
            let chunk: Vec<u8> = (0..size.as_u64()).map(|_| rng.next_u64() as u8).collect();
            let reference = scalar.encode_serial(&chunk);
            assert_eq!(reference, fast.encode_serial(&chunk), "kernel mismatch");
            assert_eq!(reference, fast.parallel_encode(&chunk), "parallel mismatch");
            let paths: [(&str, &dyn Fn() -> Vec<peerstripe_erasure::EncodedBlock>); 3] = [
                ("serial_scalar", &|| scalar.encode_serial(&chunk)),
                ("serial_nibble64", &|| fast.encode_serial(&chunk)),
                ("parallel", &|| fast.parallel_encode(&chunk)),
            ];
            for (label, encode) in paths {
                let mut best = 0.0f64;
                for _ in 0..REPS {
                    let started = Instant::now();
                    std::hint::black_box(encode());
                    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
                    best = best.max(size.as_u64() as f64 / elapsed);
                }
                rows.push(BenchRow {
                    id: format!("rs_{data}p{parity}/{mb}_mb/{label}"),
                    work_units: size.as_u64(),
                    per_sec: best,
                });
            }
        }
    }
    BenchSnapshot {
        name: "rs_encode".to_string(),
        seed: config.seed,
        rows,
    }
}

/// Run all five snapshots and write them under `dir` as
/// `BENCH_repair_schedule.json`, `BENCH_detector_decide.json`,
/// `BENCH_placement_decide.json`, `BENCH_wire_roundtrip.json` and
/// `BENCH_rs_encode.json`.  Returns the written paths.
pub fn write_snapshots(dir: &Path, config: &BenchSnapshotConfig) -> Result<Vec<PathBuf>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut written = Vec::new();
    for snapshot in [
        run_repair_schedule_snapshot(config),
        run_detector_decide_snapshot(config),
        run_placement_decide_snapshot(config),
        run_wire_roundtrip_snapshot(config),
        run_rs_encode_snapshot(config),
    ] {
        let path = dir.join(format!("BENCH_{}.json", snapshot.name));
        std::fs::write(&path, snapshot.render_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        written.push(path);
    }
    Ok(written)
}

/// A committed `BENCH_*.json` file, parsed back.
#[derive(Debug, Clone, Deserialize)]
struct SnapshotFile {
    benchmark: String,
    #[allow(dead_code)]
    seed: u64,
    #[allow(dead_code)]
    captured_with: String,
    rows: Vec<SnapshotFileRow>,
}

/// One row of a committed snapshot file.
#[derive(Debug, Clone, Deserialize)]
struct SnapshotFileRow {
    id: String,
    #[allow(dead_code)]
    work_units: u64,
    per_sec: f64,
}

/// The fraction of a committed row's throughput a fresh measurement must
/// reach for `check_repair_schedule` to pass.  Generous on purpose: the
/// committed numbers are machine-dependent, so only an order-of-magnitude
/// collapse (e.g. tracing overhead leaking into the `NullTracer` hot path)
/// should fail the check.
pub const CHECK_TOLERANCE: f64 = 0.5;

/// Compare one freshly measured snapshot against its committed
/// `BENCH_<name>.json` under `dir`.  Appends per-row lines to `report` and
/// failure messages to `failures`.
fn check_one_snapshot(
    dir: &Path,
    fresh: &BenchSnapshot,
    report: &mut String,
    failures: &mut Vec<String>,
) -> Result<(), String> {
    let path = dir.join(format!("BENCH_{}.json", fresh.name));
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let committed: SnapshotFile =
        serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
    if committed.benchmark != fresh.name {
        return Err(format!(
            "{} is a '{}' snapshot, expected {}",
            path.display(),
            committed.benchmark,
            fresh.name
        ));
    }
    for row in &fresh.rows {
        let Some(baseline) = committed.rows.iter().find(|r| r.id == row.id) else {
            let _ = writeln!(
                report,
                "{}/{}: no committed baseline (skipped)",
                fresh.name, row.id
            );
            continue;
        };
        let ratio = if baseline.per_sec > 0.0 {
            row.per_sec / baseline.per_sec
        } else {
            1.0
        };
        let _ = writeln!(
            report,
            "{}/{}: {:.0}/s vs committed {:.0}/s ({:.2}x)",
            fresh.name, row.id, row.per_sec, baseline.per_sec, ratio
        );
        if ratio < CHECK_TOLERANCE {
            failures.push(format!(
                "{}/{} regressed to {:.2}x of the committed throughput",
                fresh.name, row.id, ratio
            ));
        }
    }
    Ok(())
}

/// Re-measure the `repair_schedule` snapshot (the engine hot path, with the
/// default `NullTracer`) and compare against the committed
/// `BENCH_repair_schedule.json` under `dir`.  Returns a per-row report, or an
/// error naming every row that fell below [`CHECK_TOLERANCE`] of its
/// committed throughput.
pub fn check_repair_schedule(dir: &Path, config: &BenchSnapshotConfig) -> Result<String, String> {
    let mut report = String::new();
    let mut failures = Vec::new();
    check_one_snapshot(
        dir,
        &run_repair_schedule_snapshot(config),
        &mut report,
        &mut failures,
    )?;
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!("{report}\n{}", failures.join("\n")))
    }
}

/// Re-measure **all five** committed snapshots — `repair_schedule`,
/// `detector_decide`, `placement_decide`, `wire_roundtrip`, and `rs_encode`
/// — and compare each against its `BENCH_*.json` under `dir`.  Rows without
/// a committed baseline (e.g. the 200-node rows of a `--scale small` run
/// against medium-scale baselines) are reported but skipped; any measured
/// row below [`CHECK_TOLERANCE`] of its committed throughput fails the
/// check.
pub fn check_snapshots(dir: &Path, config: &BenchSnapshotConfig) -> Result<String, String> {
    let mut report = String::new();
    let mut failures = Vec::new();
    for fresh in [
        run_repair_schedule_snapshot(config),
        run_detector_decide_snapshot(config),
        run_placement_decide_snapshot(config),
        run_wire_roundtrip_snapshot(config),
        run_rs_encode_snapshot(config),
    ] {
        check_one_snapshot(dir, &fresh, &mut report, &mut failures)?;
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!("{report}\n{}", failures.join("\n")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_is_well_formed() {
        let snapshot = BenchSnapshot {
            name: "repair_schedule".to_string(),
            seed: 42,
            rows: vec![
                BenchRow {
                    id: "churn_24h/1000_nodes".to_string(),
                    work_units: 12_345,
                    per_sec: 1_000_000.5,
                },
                BenchRow {
                    id: "churn_24h/10000_nodes".to_string(),
                    work_units: 123_456,
                    per_sec: 900_000.0,
                },
            ],
        };
        let json = snapshot.render_json();
        assert!(json.contains("\"benchmark\": \"repair_schedule\""));
        assert!(json.contains("\"per_sec\": 1000000.5"));
        assert_eq!(json.matches("{ \"id\"").count(), 2);
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn tiny_snapshot_runs_end_to_end() {
        let config = BenchSnapshotConfig {
            node_counts: vec![50],
            seed: 7,
        };
        let repair = run_repair_schedule_snapshot(&config);
        assert_eq!(repair.rows.len(), 1);
        assert!(repair.rows[0].work_units > 0, "engine processed events");
        assert!(repair.rows[0].per_sec > 0.0);
    }

    #[test]
    fn tiny_placement_snapshot_covers_every_strategy() {
        let config = BenchSnapshotConfig {
            node_counts: vec![60],
            seed: 7,
        };
        let snapshot = run_placement_decide_snapshot(&config);
        // plan_chunk + repair_targets per strategy.
        assert_eq!(snapshot.rows.len(), 2 * StrategyKind::ALL.len());
        for row in &snapshot.rows {
            assert!(row.per_sec > 0.0, "{row:?}");
        }
        let json = snapshot.render_json();
        assert!(json.contains("\"benchmark\": \"placement_decide\""));
        assert!(json.contains("plan_chunk/overlay-random/60_nodes"));
    }

    #[test]
    fn wire_roundtrip_snapshot_covers_ping_and_payload_sizes() {
        let config = BenchSnapshotConfig {
            node_counts: vec![50],
            seed: 7,
        };
        let snapshot = run_wire_roundtrip_snapshot(&config);
        assert_eq!(snapshot.name, "wire_roundtrip");
        let ids: Vec<_> = snapshot.rows.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "ping",
                "store_block/1_kib",
                "store_block/16_kib",
                "store_block/256_kib"
            ]
        );
        for row in &snapshot.rows {
            assert!(row.per_sec > 0.0, "{row:?}");
        }
        // Bigger payloads cannot roundtrip more frames per second than the
        // header-only control row.
        assert!(snapshot.rows[0].per_sec >= snapshot.rows[3].per_sec);
    }

    #[test]
    fn rs_encode_snapshot_covers_both_kernels_and_parallel() {
        let config = BenchSnapshotConfig {
            node_counts: vec![50],
            seed: 7,
        };
        let snapshot = run_rs_encode_snapshot(&config);
        assert_eq!(snapshot.name, "rs_encode");
        // 2 geometries × 2 chunk sizes × 3 encode paths.
        assert_eq!(snapshot.rows.len(), 12);
        let ids: Vec<_> = snapshot.rows.iter().map(|r| r.id.as_str()).collect();
        for needle in [
            "rs_5p3/1_mb/serial_scalar",
            "rs_5p3/4_mb/serial_nibble64",
            "rs_8p4/1_mb/parallel",
            "rs_8p4/4_mb/serial_scalar",
        ] {
            assert!(ids.contains(&needle), "missing {needle} in {ids:?}");
        }
        for row in &snapshot.rows {
            assert!(row.per_sec > 0.0, "{row:?}");
        }
    }

    #[test]
    fn check_round_trips_a_written_snapshot() {
        let config = BenchSnapshotConfig {
            node_counts: vec![50],
            seed: 7,
        };
        let dir = std::env::temp_dir().join(format!("bench_check_{}", std::process::id()));
        // A snapshot checked against itself (same machine, moments later)
        // must pass the tolerance.
        write_snapshots(&dir, &config).unwrap();
        let report = check_repair_schedule(&dir, &config).unwrap();
        assert!(report.contains("churn_24h/50_nodes"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn check_snapshots_gates_every_benchmark() {
        let config = BenchSnapshotConfig {
            node_counts: vec![50],
            seed: 7,
        };
        let dir = std::env::temp_dir().join(format!("bench_check_all_{}", std::process::id()));
        write_snapshots(&dir, &config).unwrap();
        let report = check_snapshots(&dir, &config).unwrap();
        for needle in [
            "repair_schedule/churn_24h/50_nodes",
            "detector_decide/",
            "placement_decide/plan_chunk/overlay-random/50_nodes",
            "wire_roundtrip/store_block/256_kib",
            "rs_encode/rs_5p3/1_mb/serial_nibble64",
        ] {
            assert!(report.contains(needle), "missing {needle}:\n{report}");
        }

        // Sabotage one committed baseline: an inflated committed throughput
        // must fail the check and name the regressed row.
        let path = dir.join("BENCH_placement_decide.json");
        // Prefixing digits multiplies every committed throughput ~10^4-fold.
        let inflated = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"per_sec\": ", "\"per_sec\": 9999");
        std::fs::write(&path, inflated).unwrap();
        let err = check_snapshots(&dir, &config).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        assert!(err.contains("placement_decide/"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn check_rejects_a_missing_baseline_dir() {
        let config = BenchSnapshotConfig {
            node_counts: vec![50],
            seed: 7,
        };
        let dir = std::env::temp_dir().join("bench_check_missing_dir_nonexistent");
        assert!(check_repair_schedule(&dir, &config).is_err());
    }
}
