//! `repro ring` — the networked deployment harness.
//!
//! Spawns a localhost ring of real `peerstripe-node` daemon processes,
//! drives the unchanged `PeerStripe` client + placement + erasure stack
//! against them through the TCP gateway, kills one daemon, and verifies the
//! file survives a degraded read and the repair path.  The report carries
//! the gateway's per-RPC counters and latency histograms, so the run doubles
//! as a localhost RPC benchmark.

use crate::Scale;
use peerstripe_core::{CodingPolicy, PeerStripe, PeerStripeConfig};
use peerstripe_net::{node_binary, GatewayConfig, LocalRing, NodeStats, RingGateway};
use peerstripe_overlay::NodeRef;
use peerstripe_sim::{ByteSize, DetRng};
use peerstripe_telemetry::{HistogramExport, RegistryExport};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Parameters of one `repro ring` run.
#[derive(Debug, Clone)]
pub struct RingCmdConfig {
    /// Number of daemon processes to spawn.
    pub nodes: usize,
    /// Contributed capacity per daemon.
    pub node_capacity: ByteSize,
    /// Size of the file stored through the gateway.
    pub file_size: ByteSize,
    /// Seed for the file's deterministic contents.
    pub seed: u64,
}

impl RingCmdConfig {
    /// Ring sizing per scale: enough daemons that a (5, 3) Reed-Solomon
    /// chunk always spreads wider than any single failure.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let (nodes, file_size) = match scale {
            Scale::Small => (8, ByteSize::kb(256)),
            Scale::Medium => (12, ByteSize::mb(1)),
            Scale::Paper => (16, ByteSize::mb(4)),
        };
        RingCmdConfig {
            nodes,
            node_capacity: ByteSize::mb(64),
            file_size,
            seed,
        }
    }
}

/// One operation's aggregated RPC telemetry.
#[derive(Debug, Clone, Serialize)]
pub struct RpcStat {
    /// Wire operation name (`store_block`, `fetch_block`, ...).
    pub op: String,
    /// RPCs issued.
    pub calls: u64,
    /// RPCs that failed (transport or protocol).
    pub errors: u64,
    /// Mean round-trip latency in milliseconds.
    pub mean_ms: f64,
}

/// One daemon's server-side view of the run.
#[derive(Debug, Clone, Serialize)]
pub struct NodeSideStats {
    /// The node's reference.
    pub node: NodeRef,
    /// The node's name under the `node-<i>` convention.
    pub name: String,
    /// The daemon's own stats snapshot — for the killed victim, the last
    /// scrape taken before the SIGKILL; for survivors, a post-repair scrape.
    pub stats: NodeStats,
}

/// Everything one `repro ring` run measured.
#[derive(Debug, Clone, Serialize)]
pub struct RingReport {
    /// Daemons spawned.
    pub nodes: usize,
    /// Bytes stored through the gateway.
    pub file_bytes: u64,
    /// Which daemon was killed.
    pub victim: NodeRef,
    /// Wall-clock milliseconds to store the file.
    pub store_ms: f64,
    /// Wall-clock milliseconds to read it back with all daemons live.
    pub fetch_ms: f64,
    /// Wall-clock milliseconds to read it back with the victim dead.
    pub degraded_fetch_ms: f64,
    /// Wall-clock milliseconds for the repair path.
    pub repair_ms: f64,
    /// Blocks the repair path regenerated.
    pub blocks_regenerated: u64,
    /// Chunks the repair path could not recover (must be 0).
    pub chunks_lost: u64,
    /// Whether every read returned the original bytes.
    pub recovered: bool,
    /// Per-operation RPC counters and mean latencies.
    pub rpc: Vec<RpcStat>,
    /// Full metrics-registry export (counters + latency histograms).
    pub metrics: RegistryExport,
    /// Every daemon's server-side stats (victim scraped pre-kill).
    pub node_stats: Vec<NodeSideStats>,
    /// RPCs the gateway logged (shutdowns excluded by construction).
    pub gateway_rpcs_logged: u64,
    /// Successful gateway RPCs whose request id joins no node op-log entry.
    /// Must be 0: every RPC is attributed either by a node-side log entry or
    /// by its own error kind.
    pub unattributed_rpcs: u64,
}

/// Scrape `nodes` into `snapshots`, overwriting earlier scrapes per node.
fn scrape_into(
    gateway: &RingGateway,
    nodes: impl Iterator<Item = NodeRef>,
    snapshots: &mut BTreeMap<NodeRef, NodeStats>,
) -> Result<(), String> {
    for node in nodes {
        let stats = gateway
            .get_stats(node)
            .map_err(|e| format!("scraping node {node}: {e}"))?;
        snapshots.insert(node, stats);
    }
    Ok(())
}

/// Count successful gateway op-log entries whose request id appears in no
/// node op log — the networked analogue of the unattributed-loss check.
fn unattributed_count(
    gateway_log: &[peerstripe_net::OpLogEntry],
    snapshots: &BTreeMap<NodeRef, NodeStats>,
) -> u64 {
    let node_rids: BTreeSet<u64> = snapshots
        .values()
        .flat_map(|s| s.op_log.iter().filter_map(|e| e.request_id))
        .collect();
    gateway_log
        .iter()
        .filter(|e| e.is_ok())
        .filter(|e| !e.request_id.is_some_and(|r| node_rids.contains(&r)))
        .count() as u64
}

/// Milliseconds elapsed while running `f`, paired with its result.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now(); // lint:allow(wall-clock) -- the ring harness measures real store/fetch latency on live TCP daemons
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1e3)
}

/// Deterministic file contents for `seed`.
fn file_bytes(size: ByteSize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    (0..size.as_u64()).map(|_| rng.next_u64() as u8).collect()
}

/// Aggregate the gateway's registry export into per-op rows.
fn rpc_stats(export: &RegistryExport) -> Vec<RpcStat> {
    let op_of = |labels: &[(String, String)]| {
        labels
            .iter()
            .find(|(k, _)| k == "op")
            .map(|(_, v)| v.clone())
    };
    let hist_for = |op: &str| -> Option<&HistogramExport> {
        export
            .histograms
            .iter()
            .find(|h| h.name == "gateway_rpc_latency_ms" && op_of(&h.labels).as_deref() == Some(op))
    };
    let count_for = |name: &str, op: &str| -> u64 {
        export
            .counters
            .iter()
            .filter(|c| c.name == name && op_of(&c.labels).as_deref() == Some(op))
            .map(|c| c.value)
            .sum()
    };
    let mut ops: Vec<String> = export
        .counters
        .iter()
        .filter(|c| c.name == "gateway_rpc_total")
        .filter_map(|c| op_of(&c.labels))
        .collect();
    ops.sort();
    ops.dedup();
    ops.into_iter()
        .map(|op| {
            let calls = count_for("gateway_rpc_total", &op);
            let mean_ms = hist_for(&op)
                .filter(|h| h.count > 0)
                .map(|h| h.sum / h.count as f64)
                .unwrap_or(0.0);
            RpcStat {
                errors: count_for("gateway_rpc_errors", &op),
                calls,
                mean_ms,
                op,
            }
        })
        .filter(|s| s.calls > 0)
        .collect()
}

/// Run the full store → kill → degraded read → repair → read cycle against
/// a freshly spawned localhost ring.
pub fn run_ring(config: &RingCmdConfig) -> Result<RingReport, String> {
    let bin = node_binary().ok_or_else(|| {
        "peerstripe-node binary not found; build it with \
         `cargo build -p peerstripe-net --bin peerstripe-node` \
         or point PEERSTRIPE_NODE_BIN at it"
            .to_string()
    })?;
    let mut ring = LocalRing::spawn(&bin, config.nodes, config.node_capacity)
        .map_err(|e| format!("spawning {} daemons: {e}", config.nodes))?;
    let gateway = ring.gateway(GatewayConfig::default());
    let mut client = PeerStripe::new(
        gateway,
        PeerStripeConfig {
            coding: CodingPolicy::ReedSolomon { data: 5, parity: 3 },
            ..PeerStripeConfig::default()
        },
    );

    let name = "ring/payload.bin";
    let data = file_bytes(config.file_size, config.seed);

    let (outcome, store_ms) = timed(|| client.store_data(name, &data));
    if !outcome.is_stored() {
        return Err(format!("store failed: {outcome:?}"));
    }
    let (fetched, fetch_ms) = timed(|| client.retrieve_data(name));
    let whole_ok = fetched.as_deref() == Some(&data[..]);

    // Kill a daemon that holds blocks of the file (overlay-random placement
    // need not touch every node).
    let victim = {
        let manifest = client
            .manifest(name)
            .ok_or("manifest tracking is required")?;
        (0..config.nodes)
            .find(|&n| {
                manifest
                    .chunks
                    .iter()
                    .any(|c| c.blocks_on(n).next().is_some())
            })
            .ok_or("no node holds any block")?
    };
    // Scrape every daemon before the kill: the SIGKILL takes the victim's op
    // log and counters with it, so its server-side story must be captured
    // while it is still alive.
    let mut snapshots: BTreeMap<NodeRef, NodeStats> = BTreeMap::new();
    scrape_into(client.backend(), 0..config.nodes, &mut snapshots)?;
    ring.kill(victim).map_err(|e| format!("kill: {e}"))?;

    let (degraded, degraded_fetch_ms) = timed(|| client.retrieve_data(name));
    let degraded_ok = degraded.as_deref() == Some(&data[..]);

    let takeover = client
        .backend_mut()
        .mark_failed(victim)
        .ok_or("victim was not a ring member")?;
    let (report, repair_ms) = timed(|| client.handle_node_failure(victim, &takeover));

    let (reread, _) = timed(|| client.retrieve_data(name));
    let recovered = whole_ok && degraded_ok && reread.as_deref() == Some(&data[..]);

    // Re-scrape the survivors: their logs now also cover the degraded read
    // and repair traffic.  The victim keeps its pre-kill snapshot.
    scrape_into(
        client.backend(),
        (0..config.nodes).filter(|&n| n != victim),
        &mut snapshots,
    )?;

    let export = client.backend().export_metrics();
    let rpc = rpc_stats(&export);
    let gateway_log = client.backend().op_log();
    let unattributed_rpcs = unattributed_count(&gateway_log, &snapshots);
    let node_stats = snapshots
        .into_iter()
        .map(|(node, stats)| NodeSideStats {
            node,
            name: format!("node-{node}"),
            stats,
        })
        .collect();

    // Gracefully shut the survivors down (the ring's Drop kills whatever is
    // left).
    for e in ring.endpoints() {
        if e.node != victim {
            client.backend().shutdown_node(e.node);
        }
    }

    Ok(RingReport {
        nodes: config.nodes,
        file_bytes: config.file_size.as_u64(),
        victim,
        store_ms,
        fetch_ms,
        degraded_fetch_ms,
        repair_ms,
        blocks_regenerated: report.blocks_regenerated,
        chunks_lost: report.chunks_lost,
        recovered,
        rpc,
        metrics: export,
        node_stats,
        gateway_rpcs_logged: gateway_log.len() as u64,
        unattributed_rpcs,
    })
}

/// Human-readable report.
pub fn render_ring_text(report: &RingReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "networked ring: {} daemons, {} file, victim node {}\n",
        report.nodes,
        ByteSize::bytes(report.file_bytes),
        report.victim
    ));
    out.push_str(&format!(
        "  store {:.1} ms | fetch {:.1} ms | degraded fetch {:.1} ms | repair {:.1} ms\n",
        report.store_ms, report.fetch_ms, report.degraded_fetch_ms, report.repair_ms
    ));
    out.push_str(&format!(
        "  regenerated {} blocks, lost {} chunks, recovered: {}\n",
        report.blocks_regenerated, report.chunks_lost, report.recovered
    ));
    out.push_str(&format!(
        "  {} gateway RPCs logged, {} unattributed\n",
        report.gateway_rpcs_logged, report.unattributed_rpcs
    ));
    out.push_str("  op             calls  errors  mean ms\n");
    for stat in &report.rpc {
        out.push_str(&format!(
            "  {:<14} {:>5}  {:>6}  {:>7.3}\n",
            stat.op, stat.calls, stat.errors, stat.mean_ms
        ));
    }
    out.push_str("  node      used / capacity   objects  reqs  errors  slow\n");
    for ns in &report.node_stats {
        let sum_counter = |name: &str| -> u64 {
            ns.stats
                .metrics
                .counters
                .iter()
                .filter(|c| c.name == name)
                .map(|c| c.value)
                .sum()
        };
        out.push_str(&format!(
            "  {:<8} {:>6} / {:>8}  {:>7}  {:>4}  {:>6}  {:>4}\n",
            ns.name,
            ns.stats.used.to_string(),
            ns.stats.capacity.to_string(),
            ns.stats.objects,
            sum_counter("node_requests_total"),
            sum_counter("node_errors_total"),
            sum_counter("node_slow_requests_total"),
        ));
    }
    out
}

/// Machine-readable report (the `--format json` / `--out` artifact).
pub fn render_ring_json(report: &RingReport) -> String {
    serde_json::to_string(report).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ring_stores_and_recovers() {
        if node_binary().is_none() {
            // The daemon binary is built by `cargo build -p peerstripe-net`;
            // without it there is nothing to spawn.
            eprintln!("skipping: peerstripe-node binary not built");
            return;
        }
        let report = run_ring(&RingCmdConfig::at_scale(Scale::Small, 42)).unwrap();
        assert!(report.recovered);
        assert_eq!(report.chunks_lost, 0);
        assert!(report.blocks_regenerated > 0);
        assert!(report
            .rpc
            .iter()
            .any(|s| s.op == "store_block" && s.calls > 0));
        // Server-side stats cover every daemon, and every logged RPC joins a
        // node op-log entry by request id (or failed with an error kind).
        assert_eq!(report.node_stats.len(), report.nodes);
        assert!(report.gateway_rpcs_logged > 0);
        assert_eq!(report.unattributed_rpcs, 0);
        let victim_stats = report
            .node_stats
            .iter()
            .find(|ns| ns.node == report.victim)
            .expect("the victim's pre-kill scrape is in the report");
        assert!(!victim_stats.stats.op_log.is_empty());
        let json = render_ring_json(&report);
        assert!(json.contains("gateway_rpc_latency_ms"), "{json}");
        assert!(json.contains("node_requests_total"), "{json}");
        assert!(!render_ring_text(&report).is_empty());
    }
}
