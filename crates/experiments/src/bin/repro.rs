//! `repro` — regenerate the paper's tables and figures from the command line.
//!
//! ```text
//! repro <experiment> [--scale small|medium|paper] [--seed N]
//!
//! experiments:
//!   fig7 fig8 fig9 table1   file-insertion comparison (PAST vs CFS vs PeerStripe)
//!   fig10                   availability under node failures (coding policies)
//!   table2                  erasure-code cost (Null / XOR / Online / Reed-Solomon)
//!   rs-sweep                Reed-Solomon (n, m) sweep: throughput + minimal-subset recovery
//!   table3                  data lost & regenerated under 10% / 20% churn
//!   repair-sweep            continuous churn: repair policy × timeout × bandwidth
//!   placement-sweep         grouped churn: placement strategy × domain size × outage rate
//!   fig11 fig12             Bullet/RanSub replica dissemination
//!   table4                  Condor bigCopy case study
//!   all                     everything above
//! ```

use peerstripe_experiments::cli::run_experiment_with;
use peerstripe_experiments::Scale;
use std::io::Write as _;

struct Args {
    experiment: String,
    scale: Scale,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = None;
    let mut scale = Scale::Medium;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&value).ok_or(format!("unknown scale '{value}'"))?;
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                seed = value.parse().map_err(|_| format!("bad seed '{value}'"))?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if experiment.is_none() => experiment = Some(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'\n{}", usage())),
        }
    }
    Ok(Args {
        experiment: experiment.unwrap_or_else(|| "all".to_string()),
        scale,
        seed,
    })
}

fn usage() -> String {
    format!(
        "usage: repro <{}|all> [--scale small|medium|paper] [--seed N]",
        peerstripe_experiments::cli::EXPERIMENTS.join("|")
    )
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    println!(
        "# PeerStripe reproduction — experiment '{}' at scale '{}' (seed {})\n",
        args.experiment, args.scale, args.seed
    );
    // Stream each section as its experiment finishes (an `all --scale paper`
    // run takes hours; buffering would hide every result until the end).
    let mut emit = |section: &str| {
        print!("{section}");
        let _ = std::io::stdout().flush();
    };
    if !run_experiment_with(&args.experiment, args.scale, args.seed, &mut emit) {
        eprintln!("unknown experiment '{}'\n{}", args.experiment, usage());
        std::process::exit(2);
    }
}
