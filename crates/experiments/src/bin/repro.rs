//! `repro` — regenerate the paper's tables and figures from the command line.
//!
//! ```text
//! repro <experiment> [--scale small|medium|paper] [--seed N]
//!
//! experiments:
//!   fig7 fig8 fig9 table1   file-insertion comparison (PAST vs CFS vs PeerStripe)
//!   fig10                   availability under node failures (coding policies)
//!   table2                  erasure-code cost (Null / XOR / Online)
//!   table3                  data lost & regenerated under 10% / 20% churn
//!   fig11 fig12             Bullet/RanSub replica dissemination
//!   table4                  Condor bigCopy case study
//!   all                     everything above
//! ```

use peerstripe_experiments::availability::{run_availability, run_regeneration, ChurnConfig};
use peerstripe_experiments::coding::{run_table2, CodingConfig};
use peerstripe_experiments::condor::{run_table4, CondorConfig};
use peerstripe_experiments::multicast_fig::{run_ransub_sweep, run_spread, MulticastConfig};
use peerstripe_experiments::report;
use peerstripe_experiments::storesim::{run_store_comparison, StoreSimConfig};
use peerstripe_experiments::Scale;

struct Args {
    experiment: String,
    scale: Scale,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = None;
    let mut scale = Scale::Medium;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&value).ok_or(format!("unknown scale '{value}'"))?;
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                seed = value.parse().map_err(|_| format!("bad seed '{value}'"))?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if experiment.is_none() => experiment = Some(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'\n{}", usage())),
        }
    }
    Ok(Args {
        experiment: experiment.unwrap_or_else(|| "all".to_string()),
        scale,
        seed,
    })
}

fn usage() -> String {
    "usage: repro <fig7|fig8|fig9|fig10|fig11|fig12|table1|table2|table3|table4|all> \
     [--scale small|medium|paper] [--seed N]"
        .to_string()
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    println!(
        "# PeerStripe reproduction — experiment '{}' at scale '{}' (seed {})\n",
        args.experiment, args.scale, args.seed
    );
    let exp = args.experiment.as_str();
    let mut matched = false;

    if matches!(exp, "fig7" | "fig8" | "fig9" | "table1" | "all") {
        matched = true;
        let cmp = run_store_comparison(&StoreSimConfig::at_scale(args.scale, args.seed));
        match exp {
            "fig7" => println!("{}", report::render_figure(&cmp.figure7())),
            "fig8" => println!("{}", report::render_figure(&cmp.figure8())),
            "fig9" => println!("{}", report::render_figure(&cmp.figure9())),
            "table1" => println!("{}", report::render_table1(&cmp)),
            _ => println!("{}", report::render_store_comparison(&cmp)),
        }
    }
    if matches!(exp, "fig10" | "all") {
        matched = true;
        let result = run_availability(&ChurnConfig::at_scale(args.scale, args.seed));
        println!("{}", report::render_figure10(&result));
    }
    if matches!(exp, "table2" | "all") {
        matched = true;
        let t2 = run_table2(&CodingConfig::at_scale(args.scale, args.seed));
        println!("{}", report::render_table2(&t2));
    }
    if matches!(exp, "table3" | "all") {
        matched = true;
        let rows = run_regeneration(&ChurnConfig::at_scale(args.scale, args.seed));
        println!("{}", report::render_table3(&rows));
    }
    if matches!(exp, "fig11" | "all") {
        matched = true;
        let sweep = run_ransub_sweep(&MulticastConfig::at_scale(args.scale, args.seed));
        println!("{}", report::render_figure11(&sweep));
    }
    if matches!(exp, "fig12" | "all") {
        matched = true;
        let spread = run_spread(&MulticastConfig::at_scale(args.scale, args.seed));
        println!("{}", report::render_figure12(&spread));
    }
    if matches!(exp, "table4" | "all") {
        matched = true;
        let rows = run_table4(&CondorConfig::at_scale(args.scale, args.seed));
        println!("{}", report::render_table4(&rows));
    }

    if !matched {
        eprintln!("unknown experiment '{exp}'\n{}", usage());
        std::process::exit(2);
    }
}
