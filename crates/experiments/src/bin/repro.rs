//! `repro` — regenerate the paper's tables and figures from the command line.
//!
//! ```text
//! repro <experiment> [--scale small|medium|paper] [--seed N]
//! repro lint [--format text|json]
//! repro bench-snapshot [--out DIR] [--scale small|medium|paper] [--seed N]
//! repro trace [--scenario NAME] [--scale ...] [--seed N] [--profile] [--out DIR]
//! repro trace-summary FILE [--format text|json]
//!
//! experiments:
//!   fig7 fig8 fig9 table1   file-insertion comparison (PAST vs CFS vs PeerStripe)
//!   fig10                   availability under node failures (coding policies)
//!   table2                  erasure-code cost (Null / XOR / Online / Reed-Solomon)
//!   rs-sweep                Reed-Solomon (n, m) sweep: throughput + minimal-subset recovery
//!   table3                  data lost & regenerated under 10% / 20% churn
//!   repair-sweep            continuous churn: repair policy × timeout × bandwidth
//!   placement-sweep         grouped churn: placement strategy × domain size × outage rate
//!   fig11 fig12             Bullet/RanSub replica dissemination
//!   table4                  Condor bigCopy case study
//!   all                     everything above
//!
//! tooling:
//!   lint                    run the workspace determinism & panic-safety linter
//!   bench-snapshot          capture BENCH_*.json perf snapshots under benchmarks/
//!   trace                   run a named scenario with the JSONL tracer attached
//!   trace-summary           digest a .jsonl trace into causal loss breakdowns
//!   ring                    spawn localhost peerstripe-node daemons, store and
//!                           recover a file through a real node kill
//!   monitor                 scrape a localhost ring's node stats for N rounds
//!                           and emit a cluster-health report
//!   rs-check                GF(256) kernel-consistency gate: encode with the
//!                           scalar and nibble64 kernels (serial, parallel,
//!                           stripe pipeline), fail on any block mismatch or
//!                           minimal-subset recovery failure
//! ```

use peerstripe_experiments::cli::run_experiment_with;
use peerstripe_experiments::Scale;
use std::io::Write as _;

struct Args {
    experiment: String,
    scale: Scale,
    seed: u64,
    /// `repro lint --format json`
    json: bool,
    /// `repro bench-snapshot --out DIR` / `repro trace --out DIR`
    out_dir: Option<std::path::PathBuf>,
    /// `repro trace --scenario NAME`
    scenario: String,
    /// `repro trace --profile`
    profile: bool,
    /// `repro bench-snapshot --check`
    check: bool,
    /// `repro trace-summary FILE`: the trailing positional path.
    path: Option<std::path::PathBuf>,
    /// `repro monitor --rounds N`
    rounds: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut experiment: Option<String> = None;
    let mut scale = Scale::Medium;
    let mut seed = 42u64;
    let mut json = false;
    let mut out_dir = None;
    let mut scenario = "placement-outage".to_string();
    let mut profile = false;
    let mut check = false;
    let mut path = None;
    let mut rounds = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&value).ok_or(format!("unknown scale '{value}'"))?;
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                seed = value.parse().map_err(|_| format!("bad seed '{value}'"))?;
            }
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => return Err(format!("--format must be text or json, got {other:?}")),
            },
            "--out" => {
                let value = args.next().ok_or("--out needs a directory")?;
                out_dir = Some(std::path::PathBuf::from(value));
            }
            "--scenario" => {
                scenario = args.next().ok_or("--scenario needs a value")?;
            }
            "--profile" => profile = true,
            "--check" => check = true,
            "--rounds" => {
                let value = args.next().ok_or("--rounds needs a value")?;
                rounds = value
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or(format!("bad round count '{value}'"))?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if experiment.is_none() => experiment = Some(other.to_string()),
            other if experiment.as_deref() == Some("trace-summary") && path.is_none() => {
                path = Some(std::path::PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument '{other}'\n{}", usage())),
        }
    }
    Ok(Args {
        experiment: experiment.unwrap_or_else(|| "all".to_string()),
        scale,
        seed,
        json,
        out_dir,
        scenario,
        profile,
        check,
        path,
        rounds,
    })
}

fn usage() -> String {
    format!(
        "usage: repro <{}|all> [--scale small|medium|paper] [--seed N]\n\
                repro lint [--format text|json]\n\
                repro bench-snapshot [--out DIR] [--scale small|medium|paper] [--seed N] [--check]\n\
                repro trace [--scenario <{}>] [--scale small|medium|paper] [--seed N] [--profile] [--out DIR]\n\
                repro trace-summary FILE [--format text|json]\n\
                repro ring [--scale small|medium|paper] [--seed N] [--format text|json] [--out DIR]\n\
                repro monitor [--rounds N] [--scale small|medium|paper] [--seed N] [--format text|json] [--out DIR]\n\
                repro rs-check [--scale small|medium|paper] [--seed N]",
        peerstripe_experiments::cli::EXPERIMENTS.join("|"),
        peerstripe_experiments::trace_cmd::SCENARIOS.join("|"),
    )
}

/// The workspace root: walk up from the current directory, falling back to
/// the location this crate was compiled from (covers `cargo run` from
/// anywhere inside the tree and from the target dir).
fn workspace_root() -> Result<std::path::PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    if let Some(root) = peerstripe_lint::find_workspace_root(&cwd) {
        return Ok(root);
    }
    let compiled_from = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    peerstripe_lint::find_workspace_root(compiled_from)
        .ok_or_else(|| format!("no workspace root found above {}", cwd.display()))
}

/// `repro lint`: run the workspace linter; exit 0 only when clean.
fn run_lint(json: bool) -> ! {
    let root = match workspace_root() {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("repro lint: {msg}");
            std::process::exit(2);
        }
    };
    match peerstripe_lint::run_workspace(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_text(false));
            }
            std::process::exit(if report.is_clean() { 0 } else { 1 });
        }
        Err(msg) => {
            eprintln!("repro lint: {msg}");
            std::process::exit(2);
        }
    }
}

/// `repro bench-snapshot`: write BENCH_*.json under `<root>/benchmarks/`.
fn run_bench_snapshot(args: &Args) -> ! {
    let dir = match &args.out_dir {
        Some(dir) => dir.clone(),
        None => match workspace_root() {
            Ok(root) => root.join("benchmarks"),
            Err(msg) => {
                eprintln!("repro bench-snapshot: {msg}");
                std::process::exit(2);
            }
        },
    };
    let config = peerstripe_experiments::bench_snapshot::BenchSnapshotConfig::at_scale(
        args.scale, args.seed,
    );
    if args.check {
        // Regression check: re-measure all three snapshot hot paths (repair
        // engine, detector decide, placement decide) and compare against the
        // committed snapshots instead of overwriting them.
        match peerstripe_experiments::bench_snapshot::check_snapshots(&dir, &config) {
            Ok(report) => {
                print!("{report}");
                println!("bench-snapshot check passed");
                std::process::exit(0);
            }
            Err(msg) => {
                eprintln!("repro bench-snapshot --check: {msg}");
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "# capturing perf snapshots at {:?} nodes (seed {}) into {}",
        config.node_counts,
        config.seed,
        dir.display()
    );
    match peerstripe_experiments::bench_snapshot::write_snapshots(&dir, &config) {
        Ok(paths) => {
            for path in paths {
                println!("wrote {}", path.display());
            }
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("repro bench-snapshot: {msg}");
            std::process::exit(2);
        }
    }
}

/// `repro trace`: run a scenario with the JSONL tracer and write the trace,
/// its summary, and the metrics-registry export next to each other.
fn run_trace(args: &Args) -> ! {
    let dir = match &args.out_dir {
        Some(dir) => dir.clone(),
        None => match workspace_root() {
            Ok(root) => root.join("target").join("traces"),
            Err(msg) => {
                eprintln!("repro trace: {msg}");
                std::process::exit(2);
            }
        },
    };
    let config = peerstripe_experiments::trace_cmd::TraceCmdConfig {
        scenario: args.scenario.clone(),
        scale: args.scale,
        seed: args.seed,
        profile: args.profile,
    };
    let artifacts = match peerstripe_experiments::trace_cmd::run_trace(&config) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("repro trace: {msg}");
            std::process::exit(2);
        }
    };
    let summary = match peerstripe_experiments::trace_cmd::summarize(&artifacts.jsonl) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("repro trace: {msg}");
            std::process::exit(2);
        }
    };
    let stem = format!("trace_{}_{}_seed{}", args.scenario, args.scale, args.seed);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("repro trace: create {}: {e}", dir.display());
        std::process::exit(2);
    }
    let writes = [
        (dir.join(format!("{stem}.jsonl")), artifacts.jsonl.clone()),
        (
            dir.join(format!("{stem}.summary.json")),
            peerstripe_experiments::trace_cmd::render_summary_json(&summary),
        ),
        (
            dir.join(format!("{stem}.metrics.json")),
            artifacts.metrics_json.clone(),
        ),
    ];
    for (file, contents) in &writes {
        if let Err(e) = std::fs::write(file, contents) {
            eprintln!("repro trace: write {}: {e}", file.display());
            std::process::exit(2);
        }
        println!("wrote {}", file.display());
    }
    print!(
        "\n{}",
        peerstripe_experiments::trace_cmd::render_summary_text(&summary)
    );
    if let Some(profile) = &artifacts.profile_text {
        print!("\nper-phase wall-clock profile:\n{profile}");
    }
    std::process::exit(0);
}

/// `repro ring`: spawn a localhost ring of real daemons, store a file
/// through the gateway, kill one daemon, and verify degraded read + repair.
/// Writes the JSON report (with per-RPC latency telemetry) when `--out` is
/// given.
fn run_ring(args: &Args) -> ! {
    let config = peerstripe_experiments::ring_cmd::RingCmdConfig::at_scale(args.scale, args.seed);
    eprintln!(
        "# spawning {} localhost daemons, storing {} through the gateway",
        config.nodes, config.file_size
    );
    let report = match peerstripe_experiments::ring_cmd::run_ring(&config) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("repro ring: {msg}");
            std::process::exit(2);
        }
    };
    if args.json {
        println!(
            "{}",
            peerstripe_experiments::ring_cmd::render_ring_json(&report)
        );
    } else {
        print!(
            "{}",
            peerstripe_experiments::ring_cmd::render_ring_text(&report)
        );
    }
    if let Some(dir) = &args.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("repro ring: create {}: {e}", dir.display());
            std::process::exit(2);
        }
        let file = dir.join(format!("ring_{}_seed{}.json", args.scale, args.seed));
        if let Err(e) = std::fs::write(
            &file,
            peerstripe_experiments::ring_cmd::render_ring_json(&report),
        ) {
            eprintln!("repro ring: write {}: {e}", file.display());
            std::process::exit(2);
        }
        eprintln!("wrote {}", file.display());
    }
    if report.unattributed_rpcs > 0 {
        eprintln!(
            "repro ring: {} of {} gateway RPCs unattributed (no node op-log entry joins their request id)",
            report.unattributed_rpcs, report.gateway_rpcs_logged
        );
    }
    std::process::exit(
        if report.recovered && report.chunks_lost == 0 && report.unattributed_rpcs == 0 {
            0
        } else {
            1
        },
    );
}

/// `repro monitor`: spawn a localhost ring, run a small workload, scrape
/// every daemon's stats for N rounds, and emit the cluster-health report.
/// Exits nonzero when any node was unreachable in every round.
fn run_monitor(args: &Args) -> ! {
    let mut config =
        peerstripe_experiments::monitor_cmd::MonitorCmdConfig::at_scale(args.scale, args.seed);
    config.rounds = args.rounds;
    eprintln!(
        "# spawning {} localhost daemons, scraping stats for {} rounds",
        config.nodes, config.rounds
    );
    let report = match peerstripe_experiments::monitor_cmd::run_monitor(&config) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("repro monitor: {msg}");
            std::process::exit(2);
        }
    };
    if args.json {
        println!(
            "{}",
            peerstripe_experiments::monitor_cmd::render_monitor_json(&report)
        );
    } else {
        print!(
            "{}",
            peerstripe_experiments::monitor_cmd::render_monitor_text(&report)
        );
    }
    if let Some(dir) = &args.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("repro monitor: create {}: {e}", dir.display());
            std::process::exit(2);
        }
        let file = dir.join(format!(
            "cluster_health_{}_seed{}.json",
            args.scale, args.seed
        ));
        if let Err(e) = std::fs::write(
            &file,
            peerstripe_experiments::monitor_cmd::render_monitor_json(&report),
        ) {
            eprintln!("repro monitor: write {}: {e}", file.display());
            std::process::exit(2);
        }
        eprintln!("wrote {}", file.display());
    }
    if !report.unreachable.is_empty() {
        eprintln!(
            "repro monitor: unreachable nodes: {}",
            report.unreachable.join(" ")
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `repro rs-check`: the GF(256) kernel-consistency gate (run in CI at
/// `--scale small`).  Exit 0 only when every encode path agrees byte for
/// byte and every minimal-subset decode recovers under both kernels.
fn run_rs_check(args: &Args) -> ! {
    match peerstripe_experiments::coding::run_rs_check(args.scale, args.seed) {
        Ok(summary) => {
            println!("{summary}");
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("repro rs-check: {msg}");
            std::process::exit(1);
        }
    }
}

/// `repro trace-summary FILE`: digest an existing trace.
fn run_trace_summary(args: &Args) -> ! {
    let Some(path) = &args.path else {
        eprintln!("repro trace-summary: a trace file is required\n{}", usage());
        std::process::exit(2);
    };
    let jsonl = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("repro trace-summary: read {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    match peerstripe_experiments::trace_cmd::summarize(&jsonl) {
        Ok(summary) => {
            if args.json {
                println!(
                    "{}",
                    peerstripe_experiments::trace_cmd::render_summary_json(&summary)
                );
            } else {
                print!(
                    "{}",
                    peerstripe_experiments::trace_cmd::render_summary_text(&summary)
                );
            }
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("repro trace-summary: {msg}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match args.experiment.as_str() {
        "lint" => run_lint(args.json),
        "bench-snapshot" => run_bench_snapshot(&args),
        "trace" => run_trace(&args),
        "trace-summary" => run_trace_summary(&args),
        "ring" => run_ring(&args),
        "monitor" => run_monitor(&args),
        "rs-check" => run_rs_check(&args),
        _ => {}
    }
    println!(
        "# PeerStripe reproduction — experiment '{}' at scale '{}' (seed {})\n",
        args.experiment, args.scale, args.seed
    );
    // Stream each section as its experiment finishes (an `all --scale paper`
    // run takes hours; buffering would hide every result until the end).
    let mut emit = |section: &str| {
        print!("{section}");
        let _ = std::io::stdout().flush();
    };
    if !run_experiment_with(&args.experiment, args.scale, args.seed, &mut emit) {
        eprintln!("unknown experiment '{}'\n{}", args.experiment, usage());
        std::process::exit(2);
    }
}
