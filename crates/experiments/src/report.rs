//! Plain-text rendering of every experiment result, in the paper's layout.
//!
//! The `repro` binary prints these renderings; EXPERIMENTS.md embeds them.

use crate::availability::{AvailabilityResult, Table3Row};
use crate::coding::{RsSweep, Table2};
use crate::multicast_fig::{RanSubSweep, SpreadResult};
use crate::placement_sweep::PlacementSweep;
use crate::repair_sweep::RepairSweep;
use crate::storesim::StoreComparison;
use peerstripe_gridsim::Table4Row;
use peerstripe_sim::stats::Figure;
use peerstripe_sim::TableBuilder;
use std::fmt::Write as _;

/// Render a figure: the headline (final/extreme values per series) plus the CSV
/// of the full curves.
pub fn render_figure(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", fig.title);
    for s in &fig.series {
        if let Some(y) = s.last_y() {
            let _ = writeln!(out, "  {:<22} final {} = {:.2}", s.name, fig.y_label, y);
        }
    }
    let _ = writeln!(out, "--- curve data (CSV) ---");
    out.push_str(&fig.to_csv());
    out
}

/// Render Figures 7–9 and Table 1 from a store comparison.
pub fn render_store_comparison(cmp: &StoreComparison) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Inserted {} files ({}) into {} of contributed capacity (offered load {:.1}%)\n",
        cmp.files_offered,
        cmp.bytes_offered,
        cmp.capacity,
        100.0 * cmp.bytes_offered.as_u64() as f64 / cmp.capacity.as_u64() as f64,
    );
    out.push_str(&render_figure(&cmp.figure7()));
    out.push('\n');
    out.push_str(&render_figure(&cmp.figure8()));
    out.push('\n');
    out.push_str(&render_figure(&cmp.figure9()));
    out.push('\n');
    out.push_str(&render_table1(cmp));
    out
}

/// Render Table 1.
pub fn render_table1(cmp: &StoreComparison) -> String {
    let t1 = cmp.table1();
    let mut t = TableBuilder::new(
        "Table 1: number and size of chunks created",
        &[
            "Scheme",
            "Chunks (avg)",
            "Chunks (sd)",
            "Size (avg)",
            "Size (sd)",
        ],
    );
    for (scheme, c_mean, c_sd, s_mean, s_sd) in &t1.rows {
        t.row(&[
            scheme.clone(),
            format!("{c_mean:.2}"),
            format!("{c_sd:.2}"),
            format!("{s_mean}"),
            format!("{s_sd}"),
        ]);
    }
    t.render()
}

/// Render Table 2.
pub fn render_table2(t2: &Table2) -> String {
    let mut t = TableBuilder::new(
        format!(
            "Table 2: encoding cost for a {} chunk ({} blocks; ReedSolomon row at its \
             GF(256) cap, RS({}, {}))",
            t2.chunk_size,
            t2.blocks,
            t2.rs_data,
            t2.rs_data + t2.rs_parity
        ),
        &[
            "Erasure code",
            "Encoded size",
            "Size ovrhd.",
            "Encode (ms)",
            "Encode ovrhd.",
            "Decode (ms)",
            "Min-decode (ms)",
            "Min-subset ok",
        ],
    );
    for row in &t2.rows {
        t.row(&[
            row.code.to_string(),
            format!("{}", row.encoded_size),
            format!("{:.0}%", row.size_overhead_pct),
            format!("{:.1}", row.encode_ms),
            format!("{:.0}%", row.encode_overhead_pct),
            format!("{:.1}", row.decode_ms),
            format!("{:.1}", row.decode_min_ms),
            format!("{:.0}%", row.min_recovery_pct),
        ]);
    }
    t.render()
}

/// Render the Reed–Solomon (data, parity) sweep.
pub fn render_rs_sweep(sweep: &RsSweep) -> String {
    let mut t = TableBuilder::new(
        "ReedSolomon sweep: serial/vectorized/parallel encode, decode, recovery",
        &[
            "RS(n, m)",
            "Chunk",
            "Scalar (MB/s)",
            "Nibble64 (MB/s)",
            "Par. encode (MB/s)",
            "Min-decode (MB/s)",
            "Recovery",
        ],
    );
    for row in &sweep.rows {
        t.row(&[
            format!("RS({}, {})", row.data, row.data + row.parity),
            format!("{}", row.chunk_size),
            format!("{:.0}", row.scalar_mb_s),
            format!("{:.0}", row.encode_mb_s),
            format!("{:.0}", row.parallel_encode_mb_s),
            format!("{:.0}", row.decode_mb_s),
            format!("{:.0}%", row.recovery_pct),
        ]);
    }
    t.render()
}

/// Render Figure 10.
pub fn render_figure10(result: &AvailabilityResult) -> String {
    render_figure(&result.figure10())
}

/// Render Table 3.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut t = TableBuilder::new(
        "Table 3: data lost and regenerated after failing 10% / 20% of the nodes",
        &[
            "Nodes failed",
            "Data lost",
            "Data regenerated",
            "Regen/failure (avg)",
            "Regen/failure (sd)",
            "Total data",
        ],
    );
    for row in rows {
        t.row(&[
            format!(
                "{:.0}% ({} nodes)",
                row.failed_fraction * 100.0,
                row.nodes_failed
            ),
            format!("{}", row.data_lost),
            format!("{}", row.data_regenerated),
            format!("{}", row.regen_per_failure_mean),
            format!("{}", row.regen_per_failure_sd),
            format!("{}", row.total_data),
        ]);
    }
    t.render()
}

/// Render the continuous-churn repair-policy sweep.
pub fn render_repair_sweep(sweep: &RepairSweep) -> String {
    let mut t = TableBuilder::new(
        format!(
            "Repair sweep: {} nodes, {} files ({}), {:.0} h of churn per configuration",
            sweep.nodes, sweep.files_total, sweep.useful_bytes, sweep.sim_hours
        ),
        &[
            "Policy",
            "Timeout",
            "Node bw",
            "Lost files",
            "Avail (mean)",
            "Avail (min)",
            "Repair traffic",
            "Repair/useful",
            "False decl.",
            "Node deaths",
            "Events",
        ],
    );
    for row in &sweep.rows {
        t.row(&[
            row.policy.label(),
            format!("{:.0}h", row.timeout_hours),
            format!("{}/s", row.bandwidth),
            format!("{}", row.files_lost),
            format!("{:.1}%", row.availability_mean_pct),
            format!("{:.1}%", row.availability_min_pct),
            format!("{}", row.repair_bytes),
            format!("{:.4}", row.repair_per_useful_byte),
            format!("{}", row.false_declarations),
            format!("{}", row.permanent_failures),
            format!("{}", row.events),
        ]);
    }
    let mut out = t.render();
    // Headline the policy trade-off at every matched configuration.
    for (e, l) in sweep.matched_pairs() {
        let eager = &sweep.rows[e];
        let lazy = &sweep.rows[l];
        let ratio = if eager.repair_per_useful_byte > 0.0 {
            lazy.repair_per_useful_byte / eager.repair_per_useful_byte
        } else {
            1.0
        };
        let _ = writeln!(
            out,
            "{} vs eager @ timeout {:.0}h, {}/s: {:.2}x repair bytes, {} vs {} lost files",
            lazy.policy.label(),
            lazy.timeout_hours,
            lazy.bandwidth,
            ratio,
            lazy.files_lost,
            eager.files_lost,
        );
    }
    out
}

/// Render the grouped-churn placement-strategy sweep.
pub fn render_placement_sweep(sweep: &PlacementSweep) -> String {
    let mut t = TableBuilder::new(
        format!(
            "Placement sweep: {} nodes ({} useful), {:.0} h of grouped churn per \
             configuration, domain cap {} blocks/chunk",
            sweep.nodes, sweep.useful_bytes, sweep.sim_hours, sweep.domain_cap
        ),
        &[
            "Strategy",
            "Group",
            "Outage every",
            "Files",
            "Lost",
            "Avail (mean)",
            "Avail (min)",
            "Repair traffic",
            "Repair/useful",
            "Max blk/dom",
            "Cap viol.",
            "Domains/chunk",
            "Outages",
        ],
    );
    for row in &sweep.rows {
        t.row(&[
            row.strategy.label().to_string(),
            format!("{}", row.group_size),
            format!("{:.0}h", row.outage_interval_hours),
            format!("{}", row.files_total),
            format!("{}", row.files_lost),
            format!("{:.1}%", row.availability_mean_pct),
            format!("{:.1}%", row.availability_min_pct),
            format!("{}", row.repair_bytes),
            format!("{:.4}", row.repair_per_useful_byte),
            format!("{}", row.max_in_one_domain),
            format!("{}", row.cap_violations),
            format!("{:.1}", row.mean_distinct_domains),
            format!("{}", row.group_outages),
        ]);
    }
    let mut out = t.render();
    // Headline the durability delta at every matched configuration.
    for (o, d) in sweep.matched_pairs() {
        let oblivious = &sweep.rows[o];
        let spread = &sweep.rows[d];
        let _ = writeln!(
            out,
            "domain-spread vs overlay-random @ group {}, outage ~{:.0}h: {} vs {} files lost, \
             {:.1}% vs {:.1}% mean availability, {} vs {} over-concentrated chunks",
            spread.group_size,
            spread.outage_interval_hours,
            spread.files_lost,
            oblivious.files_lost,
            spread.availability_mean_pct,
            oblivious.availability_mean_pct,
            spread.cap_violations,
            oblivious.cap_violations,
        );
    }
    let pairs = sweep.matched_pairs();
    if !pairs.is_empty() {
        let total = |pick: fn(&(usize, usize)) -> usize| -> u64 {
            pairs.iter().map(|p| sweep.rows[pick(p)].files_lost).sum()
        };
        let _ = writeln!(
            out,
            "total over matched configurations: domain-spread loses {} files vs overlay-random's {}",
            total(|&(_, d)| d),
            total(|&(o, _)| o),
        );
    }
    if !sweep.detector_rows.is_empty() {
        out.push('\n');
        out.push_str(&render_detector_axis(sweep));
    }
    out
}

/// Render the placement sweep's detector axis: detection policy × grouped
/// topology at fixed domain-spread placement.
fn render_detector_axis(sweep: &PlacementSweep) -> String {
    let mut t = TableBuilder::new(
        "Detector sweep: per-node vs outage-aware detection under grouped churn \
         (domain-spread placement, equal bandwidth)"
            .to_string(),
        &[
            "Detector",
            "Topology",
            "Files",
            "Lost",
            "Avail (mean)",
            "Repair traffic",
            "Repair/useful",
            "Wasted",
            "Wasted%",
            "False decl.",
            "Held",
            "Cancelled",
            "Outages",
        ],
    );
    for row in &sweep.detector_rows {
        t.row(&[
            row.detector.clone(),
            row.topology.clone(),
            format!("{}", row.files_total),
            format!("{}", row.files_lost),
            format!("{:.1}%", row.availability_mean_pct),
            format!("{}", row.repair_bytes),
            format!("{:.4}", row.repair_per_useful_byte),
            format!("{}", row.wasted_repair_bytes),
            format!("{:.1}%", row.wasted_pct),
            format!("{}", row.false_declarations),
            format!("{}", row.declarations_held),
            format!("{}", row.held_cancelled),
            format!("{}", row.group_outages),
        ]);
    }
    let mut out = t.render();
    // Headline the repair-bill delta at every matched pairing.
    for (base, aware) in sweep.detector_pairs() {
        let b = &sweep.detector_rows[base];
        let a = &sweep.detector_rows[aware];
        let ratio = if a.repair_bytes.is_zero() {
            f64::INFINITY
        } else {
            b.repair_bytes.as_u64() as f64 / a.repair_bytes.as_u64() as f64
        };
        let _ = writeln!(
            out,
            "{} vs per-node @ {}: {:.4} vs {:.4} repair/useful ({:.1}x less), \
             {} vs {} files lost, wasted {:.1}% vs {:.1}%, {} held / {} cancelled",
            a.detector,
            a.topology,
            a.repair_per_useful_byte,
            b.repair_per_useful_byte,
            ratio,
            a.files_lost,
            b.files_lost,
            a.wasted_pct,
            b.wasted_pct,
            a.declarations_held,
            a.held_cancelled,
        );
    }
    out
}

/// Render Figure 11.
pub fn render_figure11(sweep: &RanSubSweep) -> String {
    let mut out = render_figure(&sweep.figure);
    let _ = writeln!(
        out,
        "completion epochs (3% .. 16%): {:?}",
        sweep.completion_epochs
    );
    out
}

/// Render Figure 12.
pub fn render_figure12(spread: &SpreadResult) -> String {
    let mut out = render_figure(&spread.figure);
    if let Some(done) = spread.completed_at {
        let _ = writeln!(out, "dissemination completed at epoch {done}");
    }
    out
}

/// Render Table 4.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut t = TableBuilder::new(
        "Table 4: Condor bigCopy time (seconds); overheads are relative to the whole-file scheme",
        &[
            "File size",
            "Whole file (s)",
            "Fixed chunks (s)",
            "(overhead)",
            "Varying chunks (s)",
            "(overhead)",
        ],
    );
    for row in rows {
        let whole = if row.whole.succeeded {
            format!("{:.1}", row.whole.elapsed_secs)
        } else {
            "N/A".to_string()
        };
        let fixed_ov = row
            .fixed_overhead_pct()
            .map(|p| format!("{p:.1}%"))
            .unwrap_or_else(|| "N/A".to_string());
        let varying_ov = row
            .varying_overhead_pct()
            .map(|p| format!("{p:.1}%"))
            .unwrap_or_else(|| "N/A".to_string());
        t.row(&[
            format!("{}", row.size),
            whole,
            format!("{:.1}", row.fixed.elapsed_secs),
            fixed_ov,
            format!("{:.1}", row.varying.elapsed_secs),
            varying_ov,
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::{run_table2, CodingConfig};
    use peerstripe_sim::ByteSize;

    #[test]
    fn table2_rendering_contains_all_codes() {
        let t2 = run_table2(&CodingConfig {
            chunk_size: ByteSize::kb(128),
            blocks: 128,
            runs: 1,
            seed: 1,
        });
        let text = render_table2(&t2);
        assert!(text.contains("Null"));
        assert!(text.contains("XOR"));
        assert!(text.contains("Online"));
        assert!(text.contains("ReedSolomon"));
        assert!(text.contains("Table 2"));
        assert!(text.contains("Min-decode"));
    }

    #[test]
    fn rs_sweep_rendering_lists_every_geometry() {
        use crate::coding::{run_rs_sweep, RsSweepConfig};
        let sweep = run_rs_sweep(&RsSweepConfig {
            geometries: vec![(4, 2), (8, 4)],
            chunk_sizes: vec![ByteSize::kb(64)],
            runs: 1,
            subset_trials: 2,
            seed: 2,
        });
        let text = render_rs_sweep(&sweep);
        assert!(text.contains("ReedSolomon"));
        assert!(text.contains("RS(4, 6)"));
        assert!(text.contains("RS(8, 12)"));
        assert!(text.contains("Scalar (MB/s)"));
        assert!(text.contains("Nibble64 (MB/s)"));
        assert!(text.contains("100%"));
    }

    #[test]
    fn figure_rendering_includes_csv() {
        let mut fig = Figure::new("Test figure", "x", "y");
        let mut s = peerstripe_sim::Series::new("A");
        s.push(1.0, 2.0);
        fig.push_series(s);
        let text = render_figure(&fig);
        assert!(text.contains("Test figure"));
        assert!(text.contains("curve data"));
        assert!(text.contains("A"));
    }
}
