//! The `placement-sweep` experiment: domain-aware vs. oblivious placement
//! under correlated grouped churn.
//!
//! Desktop grids fail in groups — a lab powers down, a switch dies, a
//! building loses power over a weekend — and uniform DHT placement happily
//! concentrates several blocks of one chunk in a single lab.  This sweep
//! quantifies what that concentration costs: for every placement strategy ×
//! failure-domain size × outage rate, it deploys the same trace, measures the
//! achieved spread, drives the maintenance engine through grouped churn with
//! an aggressive permanence timeout (so an outage longer than the timeout
//! becomes a domain-wide declaration wave), and reports durability (files
//! lost), availability over time, and the repair bill — all at equal repair
//! bandwidth.  The headline: `domain-spread` caps every chunk at its
//! tolerable losses per domain, so a whole-domain outage can never push a
//! chunk below its decode threshold, while `overlay-random` loses files at
//! exactly the chunks its placement over-concentrated.

use crate::scale::Scale;
use peerstripe_core::{
    ClusterConfig, CodingPolicy, ManifestStore, PeerStripe, PeerStripeConfig, StorageSystem,
};
use peerstripe_placement::{SpreadReport, StrategyKind, Topology};
use peerstripe_repair::{
    BandwidthBudget, ChurnProcess, DetectionKind, DetectorConfig, GroupedChurn, MaintenanceEngine,
    OutageAwareConfig, RepairConfig, RepairPolicy, SessionModel,
};
use peerstripe_sim::{ByteSize, DetRng, SimTime};
use peerstripe_telemetry::{MetricsRegistry, RegistryExport, RunManifest};
use peerstripe_trace::{SessionTrace, TraceConfig};
use serde::Serialize;

/// Configuration of the placement sweep.
#[derive(Debug, Clone)]
pub struct PlacementSweepConfig {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// Number of files distributed before churn starts.
    pub files: usize,
    /// Virtual hours of churn to simulate per configuration.
    pub sim_hours: f64,
    /// Failure-domain sizes to sweep (nodes per lab/rack).
    pub group_sizes: Vec<usize>,
    /// Mean intervals between outages per domain, hours (the
    /// correlated-departure rate axis; smaller = more correlated churn).
    pub outage_interval_hours: Vec<f64>,
    /// Mean outage duration, hours.
    pub outage_downtime_hours: f64,
    /// Mean individual node session length, hours.
    pub mean_session_hours: f64,
    /// Mean individual node downtime, hours.
    pub mean_downtime_hours: f64,
    /// Probability an individual departure is permanent.
    pub permanent_fraction: f64,
    /// Failure-detector permanence timeout, hours.  Set *below* the outage
    /// duration, as an operator tuning for quick repair would: the detector
    /// cannot tell a lab outage from real loss, so every long outage becomes
    /// a domain-wide declaration wave — the regime that punishes placement
    /// concentration.
    pub timeout_hours: f64,
    /// Symmetric per-node repair bandwidth (identical across strategies).
    pub bandwidth: ByteSize,
    /// Placement strategies to compare.
    pub strategies: Vec<StrategyKind>,
    /// Domain-absence thresholds (θ) for the outage-aware detector on the
    /// detector axis; the per-node baseline always runs.  Empty disables the
    /// detector axis.
    pub detector_thetas: Vec<f64>,
    /// Domains per machine class for the trace-derived
    /// [`Topology::from_sessions`] topology the detector axis adds next to
    /// the synthetic grouped one.
    pub session_domains_per_class: usize,
    /// Base random seed.
    pub seed: u64,
}

impl PlacementSweepConfig {
    /// Configuration for a given scale: labs of ~1/10th and ~1/5th of the
    /// population (where oblivious placement measurably over-concentrates an
    /// 8-block chunk), outages every ~2 and ~4 days per lab (mostly
    /// non-overlapping, so the single-domain loss the cap guards against
    /// dominates), 12 h outages against a 4 h permanence timeout, light
    /// independent churn.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let nodes = scale.nodes();
        PlacementSweepConfig {
            nodes,
            files: nodes * 6,
            sim_hours: match scale {
                Scale::Small => 60.0,
                Scale::Medium => 72.0,
                Scale::Paper => 96.0,
            },
            group_sizes: vec![nodes.div_ceil(10), nodes.div_ceil(5)],
            outage_interval_hours: vec![48.0, 96.0],
            outage_downtime_hours: 12.0,
            mean_session_hours: 24.0,
            mean_downtime_hours: 2.0,
            permanent_fraction: 0.002,
            timeout_hours: 4.0,
            bandwidth: ByteSize::mb(4),
            strategies: StrategyKind::ALL.to_vec(),
            // θ = 0.5 classifies every whole-domain outage; θ = 0.9 is the
            // strict end, where members individually down at outage start can
            // push the clustered fraction below quorum.
            detector_thetas: vec![0.5, 0.9],
            session_domains_per_class: 3,
            seed,
        }
    }
}

/// The redundancy the sweep deploys with: 8 placed blocks per chunk of which
/// any 4 recover it, i.e. 4 tolerable losses — so the domain cap is 4 and a
/// domain-spread chunk survives any single-domain outage by construction.
fn sweep_coding() -> CodingPolicy {
    CodingPolicy::Online {
        placed: 8,
        tolerable: 4,
        overhead: 1.03,
    }
}

/// One swept configuration's outcome.
#[derive(Debug, Clone)]
pub struct PlacementSweepRow {
    /// Placement strategy.
    pub strategy: StrategyKind,
    /// Nodes per failure domain.
    pub group_size: usize,
    /// Mean hours between outages per domain.
    pub outage_interval_hours: f64,
    /// Files the deployment stored (strategies may fail different stores).
    pub files_total: u64,
    /// Files permanently lost over the run.
    pub files_lost: u64,
    /// Mean sampled availability percentage.
    pub availability_mean_pct: f64,
    /// Lowest sampled availability percentage.
    pub availability_min_pct: f64,
    /// Total repair traffic.
    pub repair_bytes: ByteSize,
    /// Repair traffic per useful byte protected.
    pub repair_per_useful_byte: f64,
    /// Whole-domain outages the run drew.
    pub group_outages: u64,
    /// Worst per-domain block concentration of any chunk at deploy time.
    pub max_in_one_domain: usize,
    /// Chunks whose placement exceeded the domain cap — each one is a chunk a
    /// single outage can make unrecoverable.
    pub cap_violations: u64,
    /// Mean distinct domains per chunk at deploy time.
    pub mean_distinct_domains: f64,
}

/// One detector-axis configuration's outcome: a detection policy driven over
/// a grouped topology at fixed (domain-spread) placement.
#[derive(Debug, Clone)]
pub struct DetectorSweepRow {
    /// Detection policy label (`per-node` or `outage-aware(θ=…)`).
    pub detector: String,
    /// Topology label (`groups(n)` synthetic or `sessions(n)` trace-derived).
    pub topology: String,
    /// Files the deployment stored.
    pub files_total: u64,
    /// Files permanently lost over the run.
    pub files_lost: u64,
    /// Mean sampled availability percentage.
    pub availability_mean_pct: f64,
    /// Total repair traffic.
    pub repair_bytes: ByteSize,
    /// Repair traffic per useful byte protected.
    pub repair_per_useful_byte: f64,
    /// Repair traffic spent regenerating blocks of nodes that later returned.
    pub wasted_repair_bytes: ByteSize,
    /// Wasted repair traffic as a percentage of all repair traffic.
    pub wasted_pct: f64,
    /// Nodes declared dead that later returned.
    pub false_declarations: u64,
    /// Down periods held at least once by the outage classifier.
    pub declarations_held: u64,
    /// Held declarations cancelled by the node returning.
    pub held_cancelled: u64,
    /// Whole-domain outages the run drew.
    pub group_outages: u64,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct PlacementSweep {
    /// One row per swept configuration (group-size-major, then outage rate,
    /// then strategy in [`StrategyKind::ALL`] order).
    pub rows: Vec<PlacementSweepRow>,
    /// The detector axis: per grouped topology (synthetic and trace-derived),
    /// the per-node baseline followed by every outage-aware θ, at fixed
    /// domain-spread placement and equal repair bandwidth.
    pub detector_rows: Vec<DetectorSweepRow>,
    /// Nodes in the deployment.
    pub nodes: usize,
    /// User bytes under maintenance (oblivious deployment's, for reference).
    pub useful_bytes: ByteSize,
    /// Virtual hours simulated per configuration.
    pub sim_hours: f64,
    /// The per-domain block cap domain-aware strategies enforced.
    pub domain_cap: usize,
    /// The effective configuration, emitted as the header of the JSON export.
    pub manifest: RunManifest,
    /// Every cell's maintenance counters on the shared telemetry registry:
    /// main-axis cells labelled by `strategy`/`group_size`/`interval_h`,
    /// detector-axis cells by `detector`/`topology`.
    pub registry: MetricsRegistry,
}

impl PlacementSweep {
    /// JSON export: the [`RunManifest`] header followed by the labelled
    /// metrics-registry contents.
    pub fn render_json(&self) -> String {
        #[derive(Serialize)]
        struct Export {
            manifest: RunManifest,
            metrics: RegistryExport,
        }
        serde_json::to_string(&Export {
            manifest: self.manifest.clone(),
            metrics: self.registry.export(),
        })
        .unwrap_or_default()
    }

    /// Matched `(oblivious, domain-spread)` row index pairs at the same group
    /// size and outage rate.
    pub fn matched_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for (i, a) in self.rows.iter().enumerate() {
            if a.strategy != StrategyKind::OverlayRandom {
                continue;
            }
            for (j, b) in self.rows.iter().enumerate() {
                if b.strategy == StrategyKind::DomainSpread
                    && b.group_size == a.group_size
                    && b.outage_interval_hours == a.outage_interval_hours
                {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    /// True if `domain-spread` beats `overlay-random` across the matched
    /// configurations: strictly fewer files lost in total (or, with losses
    /// tied, strictly less unavailable time) at equal repair bandwidth — the
    /// claim the sweep exists to demonstrate.  Aggregated over the pairs so a
    /// zero-outage control row's noise cannot mask the outage-regime deltas.
    pub fn domain_spread_beats_oblivious(&self) -> bool {
        let pairs = self.matched_pairs();
        if pairs.is_empty() {
            return false;
        }
        let (mut lost_o, mut lost_d) = (0u64, 0u64);
        let (mut unavail_o, mut unavail_d) = (0.0f64, 0.0f64);
        for &(o, d) in &pairs {
            lost_o += self.rows[o].files_lost;
            lost_d += self.rows[d].files_lost;
            unavail_o += 100.0 - self.rows[o].availability_mean_pct;
            unavail_d += 100.0 - self.rows[d].availability_mean_pct;
        }
        lost_d < lost_o || (lost_d == lost_o && unavail_d < unavail_o)
    }

    /// Matched `(per-node, outage-aware)` detector-row index pairs on the
    /// same topology.
    pub fn detector_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for (i, base) in self.detector_rows.iter().enumerate() {
            if base.detector != "per-node" {
                continue;
            }
            for (j, aware) in self.detector_rows.iter().enumerate() {
                if aware.detector.starts_with("outage-aware") && aware.topology == base.topology {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    /// True if outage-aware detection demonstrably pays for itself: on
    /// *every* swept topology some θ cuts total repair bytes at least in half
    /// versus the per-node baseline while losing no additional files — the
    /// claim the detector axis exists to demonstrate.
    pub fn outage_aware_beats_per_node(&self) -> bool {
        let pairs = self.detector_pairs();
        if pairs.is_empty() {
            return false;
        }
        let mut topologies: Vec<&str> = Vec::new();
        for &(base, _) in &pairs {
            let t = self.detector_rows[base].topology.as_str();
            if !topologies.contains(&t) {
                topologies.push(t);
            }
        }
        topologies.iter().all(|topology| {
            pairs.iter().any(|&(base, aware)| {
                let (b, a) = (&self.detector_rows[base], &self.detector_rows[aware]);
                b.topology == *topology
                    && a.repair_bytes.as_u64().saturating_mul(2) <= b.repair_bytes.as_u64()
                    && a.files_lost <= b.files_lost
            })
        })
    }
}

/// Measure the spread a deployment achieved, chunk by chunk, from the domains
/// recorded in its manifests.
fn measure_spread(manifests: &ManifestStore, cap: usize) -> SpreadReport {
    let mut spread = SpreadReport::new(cap);
    for manifest in manifests.iter() {
        for chunk in manifest.chunks.iter().filter(|c| !c.size.is_zero()) {
            spread.record_chunk(chunk.blocks.iter().map(|b| b.domain));
        }
    }
    spread
}

/// Run the detector axis: per grouped topology — the synthetic uniform
/// grouping and a trace-derived [`Topology::from_sessions`] one — deploy once
/// with domain-spread placement, then drive the identical deployment and
/// churn schedule through every detection policy.  Placement and bandwidth
/// are held fixed so the only variable is *when the detector declares*, and
/// the repair bill (total and wasted) isolates what correlated-absence
/// awareness saves.
fn run_detector_axis(
    config: &PlacementSweepConfig,
    trace: &peerstripe_trace::Trace,
    registry: &mut MetricsRegistry,
) -> Vec<DetectorSweepRow> {
    if config.detector_thetas.is_empty() {
        return Vec::new();
    }
    let group_size = config.group_sizes.first().copied().unwrap_or(25);
    let session_trace = SessionTrace::synthetic_desktop_grid(config.nodes, config.seed ^ 0x5e55);
    let session_topology =
        Topology::from_sessions(&session_trace, config.session_domains_per_class);
    // Two grouped-topology shapes under the sweep's synthetic individual
    // churn: the uniform synthetic grouping, and the trace-derived
    // from_sessions one (machine classes inferred from observed
    // session/downtime lengths — unequal domain sizes, class-correlated
    // outages) that ROADMAP calls out.  The individual-churn model is held
    // fixed so the detector comparison stays outage-dominated on both.
    let sessions = SessionModel::Synthetic {
        mean_session_secs: config.mean_session_hours * 3_600.0,
        mean_downtime_secs: config.mean_downtime_hours * 3_600.0,
    };
    let topologies: Vec<(String, Topology)> = vec![
        (
            format!("groups({group_size})"),
            Topology::uniform_groups(config.nodes, group_size),
        ),
        (
            format!("sessions({})", session_topology.domain_count()),
            session_topology,
        ),
    ];
    let mut detectors = vec![DetectionKind::PerNodeTimeout];
    for &theta in &config.detector_thetas {
        detectors.push(DetectionKind::OutageAware(
            OutageAwareConfig::default_desktop_grid().with_threshold(theta),
        ));
    }
    let interval_hours = config
        .outage_interval_hours
        .first()
        .copied()
        .unwrap_or(48.0);

    let mut rows = Vec::new();
    for (label, topology) in topologies {
        // One domain-spread deployment per topology, shared by every detector.
        let mut rng = DetRng::new(config.seed);
        let cluster = ClusterConfig::scaled(config.nodes).build(&mut rng);
        let mut ps = PeerStripe::with_placement(
            cluster,
            PeerStripeConfig::default().with_coding(sweep_coding()),
            StrategyKind::DomainSpread.build(config.seed),
            Some(topology.clone()),
        );
        for file in &trace.files {
            let _ = ps.store_file(file);
        }
        let manifests = ps.manifests().clone();
        let base_cluster = ps.into_cluster();

        for detection in &detectors {
            let churn = ChurnProcess {
                sessions: sessions.clone(),
                permanent_fraction: config.permanent_fraction,
                grouped: Some(GroupedChurn::new(
                    topology.clone(),
                    interval_hours,
                    config.outage_downtime_hours,
                )),
            };
            let repair = RepairConfig {
                policy: RepairPolicy::Eager,
                detector: DetectorConfig::default_desktop_grid()
                    .with_timeout(config.timeout_hours * 3_600.0),
                detection: *detection,
                bandwidth: BandwidthBudget::symmetric(config.bandwidth),
                sample_period_secs: 1_800.0,
            };
            let mut engine = MaintenanceEngine::new(
                base_cluster.clone(),
                &manifests,
                churn,
                repair,
                config.seed,
            )
            .with_placement(
                StrategyKind::DomainSpread.build(config.seed),
                Some(topology.clone()),
            );
            engine.run_for(SimTime::from_secs_f64(config.sim_hours * 3_600.0));
            let report = engine.report();
            let cell = [
                ("detector".to_string(), report.detector.clone()),
                ("topology".to_string(), label.clone()),
            ];
            let labels: Vec<(&str, &str)> =
                cell.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            engine.metrics().fill_registry(registry, &labels);
            rows.push(DetectorSweepRow {
                detector: report.detector.clone(),
                topology: label.clone(),
                files_total: report.files_total,
                files_lost: report.files_lost,
                availability_mean_pct: report.availability_mean_pct,
                repair_bytes: report.repair_bytes,
                repair_per_useful_byte: report.repair_per_useful_byte,
                wasted_repair_bytes: report.wasted_repair_bytes,
                wasted_pct: 100.0 * report.wasted_repair_fraction(),
                false_declarations: report.false_declarations,
                declarations_held: report.declarations_held,
                held_cancelled: report.held_cancelled,
                group_outages: report.group_outages,
            });
        }
    }
    rows
}

/// Run the sweep.  Per group size and strategy the trace is deployed once;
/// per outage rate the maintenance engine runs over a clone of that
/// deployment, seeded identically across strategies so every configuration
/// faces the same outage schedule and the same independent churn.
pub fn run_placement_sweep(config: &PlacementSweepConfig) -> PlacementSweep {
    let cap = sweep_coding().tolerable_losses();
    let trace = TraceConfig::scaled(config.files).generate(config.seed ^ 0xd0a7);
    let mut rows = Vec::new();
    let mut useful_bytes = ByteSize::ZERO;
    let mut manifest = RunManifest::new(
        "placement-sweep",
        config.seed,
        &format!("{} nodes", config.nodes),
    );
    manifest.push("files", config.files.to_string());
    manifest.push("sim_hours", format!("{}", config.sim_hours));
    {
        // The effective repair/detector configuration every cell runs with;
        // only the grouped-churn topology axis varies below.
        let representative = RepairConfig {
            policy: RepairPolicy::Eager,
            detector: DetectorConfig::default_desktop_grid()
                .with_timeout(config.timeout_hours * 3_600.0),
            detection: DetectionKind::PerNodeTimeout,
            bandwidth: BandwidthBudget::symmetric(config.bandwidth),
            sample_period_secs: 1_800.0,
        };
        manifest.extend(representative.manifest_entries());
    }
    let strategies: Vec<&str> = config.strategies.iter().map(|k| k.label()).collect();
    manifest.push("sweep.strategies", strategies.join(","));
    let group_sizes: Vec<String> = config.group_sizes.iter().map(|g| g.to_string()).collect();
    manifest.push("sweep.group_sizes", group_sizes.join(","));
    let intervals: Vec<String> = config
        .outage_interval_hours
        .iter()
        .map(|h| format!("{h}"))
        .collect();
    manifest.push("sweep.outage_interval_hours", intervals.join(","));
    let thetas: Vec<String> = config
        .detector_thetas
        .iter()
        .map(|t| format!("{t}"))
        .collect();
    manifest.push("sweep.detector_thetas", thetas.join(","));
    let mut registry = MetricsRegistry::new();

    for &group_size in &config.group_sizes {
        let topology = Topology::uniform_groups(config.nodes, group_size);
        for &kind in &config.strategies {
            // Deploy: same cluster build and same trace per strategy; only
            // the placement decisions differ.
            let mut rng = DetRng::new(config.seed);
            let cluster = ClusterConfig::scaled(config.nodes).build(&mut rng);
            let mut ps = PeerStripe::with_placement(
                cluster,
                PeerStripeConfig::default().with_coding(sweep_coding()),
                kind.build(config.seed),
                Some(topology.clone()),
            );
            for file in &trace.files {
                let _ = ps.store_file(file);
            }
            let manifests = ps.manifests().clone();
            let base_cluster = ps.into_cluster();
            let spread = measure_spread(&manifests, cap);
            if kind == StrategyKind::OverlayRandom {
                useful_bytes = manifests.iter().map(|m| m.size).sum();
            }

            for &interval_hours in &config.outage_interval_hours {
                let churn = ChurnProcess {
                    sessions: SessionModel::Synthetic {
                        mean_session_secs: config.mean_session_hours * 3_600.0,
                        mean_downtime_secs: config.mean_downtime_hours * 3_600.0,
                    },
                    permanent_fraction: config.permanent_fraction,
                    grouped: Some(GroupedChurn::new(
                        topology.clone(),
                        interval_hours,
                        config.outage_downtime_hours,
                    )),
                };
                let repair = RepairConfig {
                    policy: RepairPolicy::Eager,
                    detector: DetectorConfig::default_desktop_grid()
                        .with_timeout(config.timeout_hours * 3_600.0),
                    detection: DetectionKind::PerNodeTimeout,
                    bandwidth: BandwidthBudget::symmetric(config.bandwidth),
                    sample_period_secs: 1_800.0,
                };
                // Repair re-placement goes through the same strategy that
                // deployed the data, over the same topology.
                let mut engine = MaintenanceEngine::new(
                    base_cluster.clone(),
                    &manifests,
                    churn,
                    repair,
                    config.seed,
                )
                .with_placement(kind.build(config.seed), Some(topology.clone()));
                engine.run_for(SimTime::from_secs_f64(config.sim_hours * 3_600.0));
                let report = engine.report();
                let cell = [
                    ("strategy".to_string(), kind.label().to_string()),
                    ("group_size".to_string(), group_size.to_string()),
                    ("interval_h".to_string(), format!("{interval_hours}")),
                ];
                let labels: Vec<(&str, &str)> =
                    cell.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                engine.metrics().fill_registry(&mut registry, &labels);
                rows.push(PlacementSweepRow {
                    strategy: kind,
                    group_size,
                    outage_interval_hours: interval_hours,
                    files_total: report.files_total,
                    files_lost: report.files_lost,
                    availability_mean_pct: report.availability_mean_pct,
                    availability_min_pct: report.availability_min_pct,
                    repair_bytes: report.repair_bytes,
                    repair_per_useful_byte: report.repair_per_useful_byte,
                    group_outages: report.group_outages,
                    max_in_one_domain: spread.max_in_one_domain,
                    cap_violations: spread.cap_violations,
                    mean_distinct_domains: spread.mean_distinct_domains(),
                });
            }
        }
    }
    // Rows were produced strategy-major per group size; re-order to
    // group-size → rate → strategy for the rendered table.
    rows.sort_by(|a, b| {
        a.group_size
            .cmp(&b.group_size)
            .then(a.outage_interval_hours.total_cmp(&b.outage_interval_hours))
            .then(
                StrategyKind::ALL
                    .iter()
                    .position(|k| *k == a.strategy)
                    .cmp(&StrategyKind::ALL.iter().position(|k| *k == b.strategy)),
            )
    });
    PlacementSweep {
        rows,
        detector_rows: run_detector_axis(config, &trace, &mut registry),
        nodes: config.nodes,
        useful_bytes,
        sim_hours: config.sim_hours,
        domain_cap: cap,
        manifest,
        registry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> PlacementSweepConfig {
        PlacementSweepConfig {
            nodes: 150,
            files: 750,
            sim_hours: 60.0,
            group_sizes: vec![30],
            outage_interval_hours: vec![48.0],
            outage_downtime_hours: 12.0,
            mean_session_hours: 24.0,
            mean_downtime_hours: 2.0,
            permanent_fraction: 0.002,
            timeout_hours: 4.0,
            bandwidth: ByteSize::mb(4),
            strategies: StrategyKind::ALL.to_vec(),
            detector_thetas: Vec::new(),
            session_domains_per_class: 3,
            seed: 11,
        }
    }

    #[test]
    fn domain_spread_beats_oblivious_under_grouped_churn() {
        let sweep = run_placement_sweep(&small_config());
        assert_eq!(sweep.rows.len(), 3);
        let by_kind = |k: StrategyKind| {
            sweep
                .rows
                .iter()
                .find(|r| r.strategy == k)
                .unwrap_or_else(|| panic!("{} row missing", k.label()))
        };
        let oblivious = by_kind(StrategyKind::OverlayRandom);
        let spread = by_kind(StrategyKind::DomainSpread);
        // The causal chain: oblivious placement concentrates blocks beyond
        // the cap somewhere, domain-spread never does...
        assert!(oblivious.cap_violations > 0, "{oblivious:?}");
        assert_eq!(spread.cap_violations, 0, "{spread:?}");
        assert!(spread.max_in_one_domain <= sweep.domain_cap);
        // ...and under whole-domain outages with an aggressive timeout that
        // concentration is exactly what loses files.
        assert!(oblivious.group_outages > 0);
        assert!(
            sweep.domain_spread_beats_oblivious(),
            "domain-spread must not lose more than oblivious: {:#?}",
            sweep.rows
        );
        for row in &sweep.rows {
            assert!(row.files_total > 0);
            assert!((0.0..=100.0).contains(&row.availability_mean_pct));
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let mut config = small_config();
        config.files = 300;
        config.sim_hours = 24.0;
        config.detector_thetas = vec![0.5];
        let a = run_placement_sweep(&config);
        let b = run_placement_sweep(&config);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.strategy, rb.strategy);
            assert_eq!(ra.files_lost, rb.files_lost);
            assert_eq!(ra.repair_bytes, rb.repair_bytes);
            assert_eq!(ra.group_outages, rb.group_outages);
            assert_eq!(ra.cap_violations, rb.cap_violations);
        }
        for (ra, rb) in a.detector_rows.iter().zip(&b.detector_rows) {
            assert_eq!(ra.detector, rb.detector);
            assert_eq!(ra.repair_bytes, rb.repair_bytes);
            assert_eq!(ra.wasted_repair_bytes, rb.wasted_repair_bytes);
            assert_eq!(ra.files_lost, rb.files_lost);
        }
        assert_eq!(a.registry.export(), b.registry.export());
        assert_eq!(a.render_json(), b.render_json());
    }

    #[test]
    fn registry_carries_both_axes_and_balances_with_rows() {
        let mut config = small_config();
        config.detector_thetas = vec![0.5];
        let sweep = run_placement_sweep(&config);
        for row in &sweep.rows {
            let (group, interval) = (
                row.group_size.to_string(),
                format!("{}", row.outage_interval_hours),
            );
            let labels: [(&str, &str); 3] = [
                ("strategy", row.strategy.label()),
                ("group_size", group.as_str()),
                ("interval_h", interval.as_str()),
            ];
            assert_eq!(
                sweep
                    .registry
                    .find_counter("maintenance_files_lost_total", &labels),
                Some(row.files_lost),
                "{labels:?}"
            );
            assert_eq!(
                sweep
                    .registry
                    .find_counter("maintenance_group_outages_total", &labels),
                Some(row.group_outages),
                "{labels:?}"
            );
        }
        for row in &sweep.detector_rows {
            let labels: [(&str, &str); 2] = [
                ("detector", row.detector.as_str()),
                ("topology", row.topology.as_str()),
            ];
            assert_eq!(
                sweep
                    .registry
                    .find_counter("maintenance_wasted_repair_bytes_total", &labels),
                Some(row.wasted_repair_bytes.as_u64()),
                "{labels:?}"
            );
        }
        let json = sweep.render_json();
        assert!(json.starts_with("{\"manifest\""), "{}", &json[..40]);
        assert_eq!(sweep.manifest.get("repair.policy"), Some("eager"));
        assert!(sweep.manifest.get("sweep.strategies").is_some());
    }

    #[test]
    fn outage_awareness_halves_the_repair_bill_on_both_topology_kinds() {
        let mut config = small_config();
        config.detector_thetas = vec![0.5];
        let sweep = run_placement_sweep(&config);
        // per-node + one θ, over a synthetic and a trace-derived topology.
        assert_eq!(sweep.detector_rows.len(), 4, "{:#?}", sweep.detector_rows);
        assert!(
            sweep
                .detector_rows
                .iter()
                .any(|r| r.topology.starts_with("sessions(")),
            "the trace-derived from_sessions topology must be swept"
        );
        for row in &sweep.detector_rows {
            assert!(row.group_outages > 0, "outages must fire: {row:?}");
        }
        let per_node = &sweep.detector_rows[0];
        assert_eq!(per_node.detector, "per-node");
        assert!(
            per_node.wasted_repair_bytes > ByteSize::ZERO,
            "the aggressive timeout must waste traffic: {per_node:?}"
        );
        assert!(
            sweep.outage_aware_beats_per_node(),
            "outage awareness must at least halve repair bytes at equal \
             durability on every topology: {:#?}",
            sweep.detector_rows
        );
    }
}
