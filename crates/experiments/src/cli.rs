//! The `repro` sub-command dispatcher, shared between the binary and the
//! integration tests so the exact code path the CLI runs stays testable.

use crate::availability::{run_availability, run_regeneration, ChurnConfig};
use crate::coding::{run_rs_sweep, run_table2, CodingConfig, RsSweepConfig};
use crate::condor::{run_table4, CondorConfig};
use crate::multicast_fig::{run_ransub_sweep, run_spread, MulticastConfig};
use crate::placement_sweep::{run_placement_sweep, PlacementSweepConfig};
use crate::repair_sweep::{run_repair_sweep, RepairSweepConfig};
use crate::report;
use crate::scale::Scale;
use crate::storesim::{run_store_comparison, StoreSimConfig};

/// Every experiment name `repro` understands, in `all` execution order.
pub const EXPERIMENTS: &[&str] = &[
    "fig7",
    "fig8",
    "fig9",
    "table1",
    "fig10",
    "table2",
    "rs-sweep",
    "table3",
    "repair-sweep",
    "placement-sweep",
    "fig11",
    "fig12",
    "table4",
];

/// Run the named experiment (or `all`), handing each finished section to
/// `emit` as soon as it is ready — so an hours-long `all --scale paper` run
/// streams its reports incrementally instead of buffering them to the end.
/// Returns whether the name matched any experiment.
pub fn run_experiment_with(exp: &str, scale: Scale, seed: u64, emit: &mut dyn FnMut(&str)) -> bool {
    let mut matched = false;

    if matches!(exp, "fig7" | "fig8" | "fig9" | "table1" | "all") {
        matched = true;
        let cmp = run_store_comparison(&StoreSimConfig::at_scale(scale, seed));
        let section = match exp {
            "fig7" => report::render_figure(&cmp.figure7()),
            "fig8" => report::render_figure(&cmp.figure8()),
            "fig9" => report::render_figure(&cmp.figure9()),
            "table1" => report::render_table1(&cmp),
            _ => report::render_store_comparison(&cmp),
        };
        emit(&section);
        emit("\n");
    }
    if matches!(exp, "fig10" | "all") {
        matched = true;
        let result = run_availability(&ChurnConfig::at_scale(scale, seed));
        emit(&report::render_figure10(&result));
        emit("\n");
    }
    if matches!(exp, "table2" | "all") {
        matched = true;
        let t2 = run_table2(&CodingConfig::at_scale(scale, seed));
        emit(&report::render_table2(&t2));
        emit("\n");
    }
    if matches!(exp, "rs-sweep" | "all") {
        matched = true;
        let sweep = run_rs_sweep(&RsSweepConfig::at_scale(scale, seed));
        emit(&report::render_rs_sweep(&sweep));
        emit("\n");
    }
    if matches!(exp, "table3" | "all") {
        matched = true;
        let rows = run_regeneration(&ChurnConfig::at_scale(scale, seed));
        emit(&report::render_table3(&rows));
        emit("\n");
    }
    if matches!(exp, "repair-sweep" | "all") {
        matched = true;
        let sweep = run_repair_sweep(&RepairSweepConfig::at_scale(scale, seed));
        emit(&report::render_repair_sweep(&sweep));
        emit("\n");
    }
    if matches!(exp, "placement-sweep" | "all") {
        matched = true;
        let sweep = run_placement_sweep(&PlacementSweepConfig::at_scale(scale, seed));
        emit(&report::render_placement_sweep(&sweep));
        emit("\n");
    }
    if matches!(exp, "fig11" | "all") {
        matched = true;
        let sweep = run_ransub_sweep(&MulticastConfig::at_scale(scale, seed));
        emit(&report::render_figure11(&sweep));
        emit("\n");
    }
    if matches!(exp, "fig12" | "all") {
        matched = true;
        let spread = run_spread(&MulticastConfig::at_scale(scale, seed));
        emit(&report::render_figure12(&spread));
        emit("\n");
    }
    if matches!(exp, "table4" | "all") {
        matched = true;
        let rows = run_table4(&CondorConfig::at_scale(scale, seed));
        emit(&report::render_table4(&rows));
        emit("\n");
    }

    matched
}

/// Run the named experiment (or `all`) and return its full rendered report,
/// or `None` when the name is unknown.  Buffered convenience wrapper around
/// [`run_experiment_with`] for tests and library callers.
pub fn run_experiment(exp: &str, scale: Scale, seed: u64) -> Option<String> {
    let mut out = String::new();
    run_experiment_with(exp, scale, seed, &mut |s| out.push_str(s)).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_rejected() {
        assert!(run_experiment("bogus", Scale::Small, 1).is_none());
    }

    #[test]
    fn rs_sweep_is_a_known_experiment() {
        assert!(EXPERIMENTS.contains(&"rs-sweep"));
        let out = run_experiment("rs-sweep", Scale::Small, 1).unwrap();
        assert!(out.contains("ReedSolomon"));
    }
}
