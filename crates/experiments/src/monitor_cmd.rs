//! `repro monitor` — the cluster-health scrape loop.
//!
//! Spawns a localhost ring of real `peerstripe-node` daemons, pushes a small
//! deterministic workload through the TCP gateway so the scrape has
//! something to see, then runs a [`ClusterMonitor`] for N rounds and renders
//! a cluster-health report: per-node reachability, store occupancy, and
//! per-op request counts with p50/p99 latencies from *both* sides of the
//! wire — the gateway's client-side histograms and each node's server-side
//! ones.  Report ordering is deterministic (node order, then op order), so
//! two reports over identical traffic differ only in measured latencies.

use crate::Scale;
use peerstripe_core::{CodingPolicy, PeerStripe, PeerStripeConfig};
use peerstripe_net::{
    node_binary, ClusterMonitor, GatewayConfig, LocalRing, MonitorConfig, NodeHealth,
};
use peerstripe_sim::{ByteSize, DetRng};
use peerstripe_telemetry::{HistogramExport, RegistryExport};
use serde::Serialize;

/// Parameters of one `repro monitor` run.
#[derive(Debug, Clone)]
pub struct MonitorCmdConfig {
    /// Number of daemon processes to spawn.
    pub nodes: usize,
    /// Contributed capacity per daemon.
    pub node_capacity: ByteSize,
    /// Size of the warm-up file stored through the gateway.
    pub file_size: ByteSize,
    /// Scrape rounds to run (1 = one-shot).
    pub rounds: usize,
    /// Seed for the warm-up file's contents.
    pub seed: u64,
}

impl MonitorCmdConfig {
    /// Ring sizing per scale, matching `repro ring` so the two harnesses
    /// observe comparable clusters.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let (nodes, file_size) = match scale {
            Scale::Small => (8, ByteSize::kb(256)),
            Scale::Medium => (12, ByteSize::mb(1)),
            Scale::Paper => (16, ByteSize::mb(4)),
        };
        MonitorCmdConfig {
            nodes,
            node_capacity: ByteSize::mb(64),
            file_size,
            rounds: 2,
            seed,
        }
    }
}

/// One operation's request count and latency quantiles from one vantage.
#[derive(Debug, Clone, Serialize)]
pub struct OpLatency {
    /// Wire operation name.
    pub op: String,
    /// Requests observed.
    pub requests: u64,
    /// Estimated median latency in milliseconds (bucket upper edge).
    pub p50_ms: f64,
    /// Estimated 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
}

/// One node's health and server-side op stats.
#[derive(Debug, Clone, Serialize)]
pub struct NodeHealthRow {
    /// Scrape health (live / unreachable / stale, scrape count).
    pub health: NodeHealth,
    /// Store occupancy in bytes, from the latest snapshot.
    pub used_bytes: u64,
    /// Contributed capacity in bytes.
    pub capacity_bytes: u64,
    /// Objects held.
    pub objects: u64,
    /// Server-side per-op request counts and latency quantiles.
    pub ops: Vec<OpLatency>,
}

/// Everything one `repro monitor` run observed.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterHealthReport {
    /// Daemons spawned.
    pub nodes: usize,
    /// Scrape rounds run.
    pub rounds: u64,
    /// Nodes the final round reached.
    pub reached: usize,
    /// Names of nodes no round ever reached (nonzero exit).
    pub unreachable: Vec<String>,
    /// Names of nodes that answered before but failed their latest scrape.
    pub stale: Vec<String>,
    /// Client-side (gateway) per-op latencies over the warm-up workload.
    pub gateway_ops: Vec<OpLatency>,
    /// Per-node health and server-side op stats, in node order.
    pub node_health: Vec<NodeHealthRow>,
    /// The monitor's merged node-labelled registry export.
    pub merged_metrics: RegistryExport,
}

/// Deterministic file contents for `seed`.
fn file_bytes(size: ByteSize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    (0..size.as_u64()).map(|_| rng.next_u64() as u8).collect()
}

/// Per-op latency rows from a registry export's histograms under `name`,
/// in op order, empty ops dropped.
fn op_latencies(export: &RegistryExport, name: &str) -> Vec<OpLatency> {
    let mut rows: Vec<OpLatency> = export
        .histograms
        .iter()
        .filter(|h| h.name == name && h.count > 0)
        .filter_map(|h| {
            let op = h.labels.iter().find(|(k, _)| k == "op")?.1.clone();
            Some(OpLatency {
                op,
                requests: h.count,
                p50_ms: HistogramExport::quantile(h, 0.5),
                p99_ms: HistogramExport::quantile(h, 0.99),
            })
        })
        .collect();
    rows.sort_by(|a, b| a.op.cmp(&b.op));
    rows
}

/// Spawn a ring, run the warm-up workload, scrape it for `rounds`, and
/// assemble the health report.  Daemons are shut down before returning.
pub fn run_monitor(config: &MonitorCmdConfig) -> Result<ClusterHealthReport, String> {
    let bin = node_binary().ok_or_else(|| {
        "peerstripe-node binary not found; build it with \
         `cargo build -p peerstripe-net --bin peerstripe-node` \
         or point PEERSTRIPE_NODE_BIN at it"
            .to_string()
    })?;
    let ring = LocalRing::spawn(&bin, config.nodes, config.node_capacity)
        .map_err(|e| format!("spawning {} daemons: {e}", config.nodes))?;
    let gateway = ring.gateway(GatewayConfig::default());
    let mut client = PeerStripe::new(
        gateway,
        PeerStripeConfig {
            coding: CodingPolicy::ReedSolomon { data: 5, parity: 3 },
            ..PeerStripeConfig::default()
        },
    );

    // Warm-up workload: one store + one fetch, so every scrape shows real
    // per-op traffic instead of an all-zero ring.
    let name = "monitor/warmup.bin";
    let data = file_bytes(config.file_size, config.seed);
    if !client.store_data(name, &data).is_stored() {
        return Err("warm-up store failed".to_string());
    }
    if client.retrieve_data(name).as_deref() != Some(&data[..]) {
        return Err("warm-up fetch returned wrong bytes".to_string());
    }

    let mut monitor = ClusterMonitor::new(&ring.endpoints(), MonitorConfig::default());
    let mut reached = 0;
    for _ in 0..config.rounds.max(1) {
        reached = monitor.scrape_round();
    }

    let node_health = monitor
        .health()
        .into_iter()
        .map(|health| {
            let (used_bytes, capacity_bytes, objects, ops) = match monitor.latest(health.node) {
                Some(stats) => (
                    stats.used.as_u64(),
                    stats.capacity.as_u64(),
                    stats.objects,
                    op_latencies(&stats.metrics, "node_request_latency_ms"),
                ),
                None => (0, 0, 0, Vec::new()),
            };
            NodeHealthRow {
                health,
                used_bytes,
                capacity_bytes,
                objects,
                ops,
            }
        })
        .collect();

    let report = ClusterHealthReport {
        nodes: config.nodes,
        rounds: monitor.rounds(),
        reached,
        unreachable: monitor
            .unreachable()
            .into_iter()
            .map(|n| format!("node-{n}"))
            .collect(),
        stale: monitor
            .stale()
            .into_iter()
            .map(|n| format!("node-{n}"))
            .collect(),
        gateway_ops: op_latencies(&client.backend().export_metrics(), "gateway_rpc_latency_ms"),
        node_health,
        merged_metrics: monitor.merged_registry().export(),
    };

    for e in ring.endpoints() {
        client.backend().shutdown_node(e.node);
    }
    Ok(report)
}

/// Human-readable report.
pub fn render_monitor_text(report: &ClusterHealthReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "cluster monitor: {} daemons, {} rounds, {} reached last round\n",
        report.nodes, report.rounds, report.reached
    ));
    if !report.unreachable.is_empty() {
        out.push_str(&format!(
            "  UNREACHABLE: {}\n",
            report.unreachable.join(" ")
        ));
    }
    if !report.stale.is_empty() {
        out.push_str(&format!("  stale: {}\n", report.stale.join(" ")));
    }
    out.push_str("  gateway side:   op             reqs   p50 ms   p99 ms\n");
    for row in &report.gateway_ops {
        out.push_str(&format!(
            "                  {:<14} {:>4}  {:>7.3}  {:>7.3}\n",
            row.op, row.requests, row.p50_ms, row.p99_ms
        ));
    }
    for node in &report.node_health {
        let status = if node.health.unreachable {
            "unreachable"
        } else if node.health.stale {
            "stale"
        } else {
            "live"
        };
        out.push_str(&format!(
            "  {} [{status}] {} / {} used, {} objects\n",
            node.health.name,
            ByteSize::bytes(node.used_bytes),
            ByteSize::bytes(node.capacity_bytes),
            node.objects
        ));
        for row in &node.ops {
            out.push_str(&format!(
                "      {:<14} {:>4}  {:>7.3}  {:>7.3}\n",
                row.op, row.requests, row.p50_ms, row.p99_ms
            ));
        }
    }
    out
}

/// Machine-readable report (the CI artifact).
pub fn render_monitor_json(report: &ClusterHealthReport) -> String {
    serde_json::to_string(report).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_run_reaches_every_node_and_reports_both_sides() {
        if node_binary().is_none() {
            eprintln!("skipping: peerstripe-node binary not built");
            return;
        }
        let mut config = MonitorCmdConfig::at_scale(Scale::Small, 42);
        config.rounds = 2;
        let report = run_monitor(&config).unwrap();
        assert_eq!(report.reached, config.nodes);
        assert!(report.unreachable.is_empty());
        assert!(report.stale.is_empty());
        assert_eq!(report.rounds, 2);
        assert_eq!(report.node_health.len(), config.nodes);
        // Both sides saw the warm-up stores.
        assert!(report
            .gateway_ops
            .iter()
            .any(|r| r.op == "store_block" && r.requests > 0));
        assert!(report.node_health.iter().any(|n| n
            .ops
            .iter()
            .any(|r| r.op == "store_block" && r.requests > 0)));
        // Quantile estimates come from the shared bucket edges.
        for row in &report.gateway_ops {
            assert!(row.p50_ms <= row.p99_ms);
        }
        let json = render_monitor_json(&report);
        assert!(json.contains("merged_metrics"), "{json}");
        assert!(!render_monitor_text(&report).is_empty());
    }
}
