//! Experiment drivers reproducing every table and figure of the paper's
//! evaluation (Section 6).
//!
//! | Paper artefact | Driver | `repro` sub-command |
//! |---|---|---|
//! | Figure 7 (failed stores)       | [`storesim::run_store_comparison`] | `fig7` |
//! | Figure 8 (failed data)         | [`storesim::run_store_comparison`] | `fig8` |
//! | Figure 9 (utilization)         | [`storesim::run_store_comparison`] | `fig9` |
//! | Table 1 (chunk statistics)     | [`storesim::StoreComparison::table1`] | `table1` |
//! | Figure 10 (availability)       | [`availability::run_availability`] | `fig10` |
//! | Table 2 (erasure-code cost)    | [`coding::run_table2`] | `table2` |
//! | RS (n, m) sweep (optimal code) | [`coding::run_rs_sweep`] | `rs-sweep` |
//! | Table 3 (churn regeneration)   | [`availability::run_regeneration`] | `table3` |
//! | Continuous churn & repair policies | [`repair_sweep::run_repair_sweep`] | `repair-sweep` |
//! | Grouped churn & placement strategies | [`placement_sweep::run_placement_sweep`] | `placement-sweep` |
//! | Figure 11 (RanSub sweep)       | [`multicast_fig::run_ransub_sweep`] | `fig11` |
//! | Figure 12 (packet spread)      | [`multicast_fig::run_spread`] | `fig12` |
//! | Table 4 (Condor bigCopy)       | [`condor::run_table4`] | `table4` |
//!
//! Every driver is parameterised by [`scale::Scale`]: `small` for tests and
//! benches, `medium` for the default `repro` run, `paper` for the published
//! parameters (10 000 nodes, 1.2 M files).
//!
//! Beyond the paper's figures, [`ring_cmd`] (`repro ring`) drives the same
//! client/placement/erasure stack against a localhost ring of real
//! `peerstripe-node` daemon processes over TCP.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod availability;
pub mod bench_snapshot;
pub mod cli;
pub mod coding;
pub mod condor;
pub mod monitor_cmd;
pub mod multicast_fig;
pub mod placement_sweep;
pub mod repair_sweep;
pub mod report;
pub mod ring_cmd;
pub mod scale;
pub mod storesim;
pub mod trace_cmd;

pub use scale::Scale;
