//! Experiment scales.
//!
//! The paper's simulations use 10 000 nodes and a 1.2 M-file trace.  Running at
//! that scale takes minutes and a few gigabytes of memory, which is fine for the
//! `repro` binary but not for `cargo test` / `cargo bench`.  [`Scale`] selects a
//! consistent set of population sizes: the capacity and file-size distributions
//! are identical at every scale, and the ratio of offered data to total capacity
//! (the quantity that drives the failure and utilization curves) is preserved,
//! so the qualitative shape of every figure is scale-invariant.

use serde::{Deserialize, Serialize};

/// Predefined experiment scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny runs for unit tests and Criterion benches (hundreds of nodes).
    Small,
    /// Medium runs for the default `repro` invocation (a thousand nodes).
    Medium,
    /// The paper's published parameters (10 000 nodes, 1.2 M files).
    Paper,
}

impl Scale {
    /// Parse a command-line scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Number of overlay nodes.
    pub fn nodes(&self) -> usize {
        match self {
            Scale::Small => 250,
            Scale::Medium => 1_000,
            Scale::Paper => 10_000,
        }
    }

    /// Number of files inserted in the store experiments (Figures 7–9, Table 1).
    ///
    /// The paper inserts 1.2 M files into 10 000 nodes — 120 files per node,
    /// which corresponds to an offered load of ~64 % of the total capacity;
    /// the smaller scales keep the same per-node ratio.
    pub fn trace_files(&self) -> usize {
        self.nodes() * 120
    }

    /// Number of files stored before the churn experiments (Figure 10, Table 3).
    ///
    /// Availability experiments track per-block placement, so they use a lighter
    /// load (about a quarter of the store-experiment load) to bound memory while
    /// still distributing files over every node.
    pub fn churn_files(&self) -> usize {
        self.nodes() * 30
    }

    /// Number of nodes failed one-by-one in the Figure 10 sweep (10 % of nodes,
    /// matching the paper's 1 000 failures out of 10 000 nodes).
    pub fn availability_failures(&self) -> usize {
        self.nodes() / 10
    }

    /// Number of measurement points sampled along an insertion sweep.
    pub fn sample_points(&self) -> usize {
        match self {
            Scale::Small => 12,
            Scale::Medium => 24,
            Scale::Paper => 60,
        }
    }

    /// Packets per chunk in the multicast experiments (the paper uses 1 000).
    pub fn multicast_packets(&self) -> usize {
        match self {
            Scale::Small => 250,
            Scale::Medium => 500,
            Scale::Paper => 1_000,
        }
    }

    /// Chunk size for the erasure-code measurements of Table 2.
    pub fn erasure_chunk(&self) -> peerstripe_sim::ByteSize {
        match self {
            Scale::Small => peerstripe_sim::ByteSize::kb(256),
            Scale::Medium => peerstripe_sim::ByteSize::mb(1),
            Scale::Paper => peerstripe_sim::ByteSize::mb(4),
        }
    }

    /// Number of source blocks per chunk for Table 2 (the paper uses 4 096).
    pub fn erasure_blocks(&self) -> usize {
        match self {
            Scale::Small => 512,
            Scale::Medium => 1_024,
            Scale::Paper => 4_096,
        }
    }

    /// Number of repetitions for timing measurements (the paper averages 10 runs).
    pub fn timing_runs(&self) -> usize {
        match self {
            Scale::Small => 2,
            Scale::Medium => 5,
            Scale::Paper => 10,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scale::Small => write!(f, "small"),
            Scale::Medium => write!(f, "medium"),
            Scale::Paper => write!(f, "paper"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in [Scale::Small, Scale::Medium, Scale::Paper] {
            assert_eq!(Scale::parse(&s.to_string()), Some(s));
        }
        assert_eq!(Scale::parse("FULL"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn paper_scale_matches_published_parameters() {
        assert_eq!(Scale::Paper.nodes(), 10_000);
        assert_eq!(Scale::Paper.trace_files(), 1_200_000);
        assert_eq!(Scale::Paper.availability_failures(), 1_000);
        assert_eq!(Scale::Paper.erasure_blocks(), 4_096);
        assert_eq!(Scale::Paper.multicast_packets(), 1_000);
        assert_eq!(Scale::Paper.timing_runs(), 10);
    }

    #[test]
    fn offered_load_ratio_is_scale_invariant() {
        // files/node identical at every scale.
        let ratio = |s: Scale| s.trace_files() as f64 / s.nodes() as f64;
        assert_eq!(ratio(Scale::Small), ratio(Scale::Paper));
        assert_eq!(ratio(Scale::Medium), ratio(Scale::Paper));
    }
}
