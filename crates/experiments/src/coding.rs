//! Erasure-code cost measurements: Table 2 and the Reed–Solomon sweep.
//!
//! Table 2 stores a 4 MB chunk (4 096 blocks) under the NULL, XOR, and online
//! codes and reports the encoded size and the encoding time, each with its
//! overhead relative to NULL.  [`run_table2`] performs the same measurement with
//! the real codecs from `peerstripe-erasure`, and adds the *optimal* GF(256)
//! Reed–Solomon code the paper's Section 4.2 trade-off discussion compares the
//! online code against, plus a decode-from-minimal-subset column that
//! separates optimal from sub-optimal codecs.
//!
//! [`run_rs_sweep`] sweeps Reed–Solomon (data, parity) geometries over chunk
//! sizes and reports scalar-serial / vectorized-serial / parallel encode
//! throughput side by side (the `scalar` reference kernel vs the wide-lane
//! `nibble64` kernel vs the column-stripe threaded path), minimal-subset
//! decode throughput, and minimal-subset recovery rates (always 100 % — the
//! optimality property the sub-optimal codecs cannot offer).  Every sweep
//! point also cross-checks that all three encode paths emit byte-identical
//! blocks; [`run_rs_check`] packages that cross-check (plus recovery) as a
//! pass/fail gate for CI.

use crate::scale::Scale;
use peerstripe_erasure::{
    measure_code, CodeCost, ErasureCode, Gf256Kernel, NullCode, OnlineCode, ReedSolomonCode,
    XorCode,
};
use peerstripe_sim::{ByteSize, DetRng};
use std::time::Instant;

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Codec name.
    pub code: &'static str,
    /// Total encoded size.
    pub encoded_size: ByteSize,
    /// Size overhead relative to the chunk, percent.
    pub size_overhead_pct: f64,
    /// Mean encoding time, milliseconds.
    pub encode_ms: f64,
    /// Encoding-time overhead relative to the NULL code, percent.
    pub encode_overhead_pct: f64,
    /// Mean decoding time, milliseconds.
    pub decode_ms: f64,
    /// Mean decoding time from an exactly minimal block subset, milliseconds.
    pub decode_min_ms: f64,
    /// Share of minimal-subset decode attempts that recovered the chunk,
    /// percent (100 for optimal codes, probabilistic for the online code).
    pub min_recovery_pct: f64,
}

/// Result of the Table 2 measurement.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Chunk size measured.
    pub chunk_size: ByteSize,
    /// Number of source blocks per chunk (Null, XOR and online rows).
    pub blocks: usize,
    /// Data blocks of the ReedSolomon row — GF(256) caps the code at 256
    /// blocks total, so it cannot run at the paper's 4096-block geometry and
    /// its row is measured at [`table2_rs_code`]'s (data, parity) instead.
    pub rs_data: usize,
    /// Parity blocks of the ReedSolomon row.
    pub rs_parity: usize,
    /// Rows in `[Null, XOR, Online, ReedSolomon]` order.
    pub rows: Vec<Table2Row>,
}

/// Configuration of the Table 2 measurement.
#[derive(Debug, Clone, Copy)]
pub struct CodingConfig {
    /// Chunk size to encode.
    pub chunk_size: ByteSize,
    /// Number of source blocks per chunk.
    pub blocks: usize,
    /// Number of timing repetitions.
    pub runs: usize,
    /// Random seed for the chunk contents.
    pub seed: u64,
}

impl CodingConfig {
    /// Configuration for a given scale (paper scale: 4 MB chunks, 4 096 blocks,
    /// 10 runs).
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        CodingConfig {
            chunk_size: scale.erasure_chunk(),
            blocks: scale.erasure_blocks(),
            runs: scale.timing_runs(),
            seed,
        }
    }
}

/// The Reed–Solomon configuration measured against the paper's codecs in
/// Table 2: as many data blocks as GF(256) allows (223, the classic RS(255)
/// data width) up to the configured block count, with ~3 % parity to match
/// the online code's storage overhead.
pub fn table2_rs_code(blocks: usize) -> ReedSolomonCode {
    let data = blocks.min(223);
    let parity = (data * 3).div_ceil(100).max(2);
    ReedSolomonCode::new(data, parity)
}

/// Run the Table 2 measurement.
pub fn run_table2(config: &CodingConfig) -> Table2 {
    let null = NullCode::new(config.blocks);
    let xor = XorCode::new(2, config.blocks);
    // q = 3, ε = 0.01 as in the paper; ~3 % extra check blocks at the paper's
    // 4 096-block configuration.  Small-scale runs use fewer blocks, where the
    // asymptotic (1 + ε) decode bound needs a proportionally larger safety
    // margin, hence the 8-block cushion.
    let overhead = 1.03 + 8.0 / config.blocks as f64;
    let online = OnlineCode::with_overhead(config.blocks, 0.01, 3, overhead);
    let rs = table2_rs_code(config.blocks);

    let codes: Vec<&dyn ErasureCode> = vec![&null, &xor, &online, &rs];
    let costs: Vec<CodeCost> = codes
        .iter()
        .map(|c| measure_code(*c, config.chunk_size, config.runs, config.seed))
        .collect();
    let baseline_encode = costs[0].encode_ms;

    let rows = costs
        .iter()
        .map(|c| Table2Row {
            code: c.name,
            encoded_size: c.encoded_size,
            size_overhead_pct: c.size_overhead_pct(),
            encode_ms: c.encode_ms,
            encode_overhead_pct: if baseline_encode > 0.0 {
                100.0 * (c.encode_ms / baseline_encode - 1.0)
            } else {
                0.0
            },
            decode_ms: c.decode_ms,
            decode_min_ms: c.decode_min_ms,
            min_recovery_pct: c.min_subset_recovery_pct(),
        })
        .collect();

    Table2 {
        chunk_size: config.chunk_size,
        blocks: config.blocks,
        rs_data: rs.data(),
        rs_parity: rs.parity(),
        rows,
    }
}

/// One measured (data, parity) × chunk-size point of the Reed–Solomon sweep.
#[derive(Debug, Clone)]
pub struct RsSweepRow {
    /// Number of data blocks.
    pub data: usize,
    /// Number of parity blocks.
    pub parity: usize,
    /// Chunk size encoded.
    pub chunk_size: ByteSize,
    /// Serial encode throughput with the `scalar` reference kernel, MB/s of
    /// source data — the pre-vectorization baseline.
    pub scalar_mb_s: f64,
    /// Serial encode throughput with the wide-lane `nibble64` kernel, MB/s.
    pub encode_mb_s: f64,
    /// Parallel (column-stripe) encode throughput, `nibble64` kernel, MB/s.
    pub parallel_encode_mb_s: f64,
    /// Decode throughput from exactly-minimal random subsets, MB/s.
    pub decode_mb_s: f64,
    /// Share of minimal-subset decodes that recovered the chunk, percent.
    pub recovery_pct: f64,
}

/// Result of the Reed–Solomon sweep.
#[derive(Debug, Clone)]
pub struct RsSweep {
    /// One row per (geometry, chunk size) pair.
    pub rows: Vec<RsSweepRow>,
}

/// Configuration of the Reed–Solomon sweep.
#[derive(Debug, Clone)]
pub struct RsSweepConfig {
    /// (data, parity) geometries to measure.
    pub geometries: Vec<(usize, usize)>,
    /// Chunk sizes to encode under each geometry.
    pub chunk_sizes: Vec<ByteSize>,
    /// Timing repetitions per point.
    pub runs: usize,
    /// Random exactly-minimal subsets decoded per point.
    pub subset_trials: usize,
    /// Random seed for chunk contents and subset choices.
    pub seed: u64,
}

impl RsSweepConfig {
    /// Sweep parameters for a given scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let (geometries, chunk_sizes, runs, subset_trials) = match scale {
            Scale::Small => (
                vec![(4, 2), (8, 4), (16, 8)],
                vec![ByteSize::kb(64), ByteSize::kb(256)],
                1,
                4,
            ),
            Scale::Medium => (
                vec![(4, 2), (16, 8), (32, 16), (64, 32)],
                vec![ByteSize::mb(1), ByteSize::mb(2)],
                3,
                8,
            ),
            Scale::Paper => (
                vec![(4, 2), (16, 8), (32, 16), (64, 32), (128, 64), (223, 32)],
                vec![ByteSize::mb(1), ByteSize::mb(4)],
                5,
                16,
            ),
        };
        RsSweepConfig {
            geometries,
            chunk_sizes,
            runs,
            subset_trials,
            seed,
        }
    }
}

/// Run the Reed–Solomon (data, parity) sweep.
///
/// Every point encodes with the scalar reference kernel, the wide-lane
/// `nibble64` kernel, and the column-stripe parallel path, and asserts all
/// three emit byte-identical blocks before any throughput is reported.
pub fn run_rs_sweep(config: &RsSweepConfig) -> RsSweep {
    let mut rng = DetRng::new(config.seed);
    let mut rows = Vec::new();
    for &(data, parity) in &config.geometries {
        let scalar_code = ReedSolomonCode::new(data, parity).with_kernel(Gf256Kernel::Scalar);
        let code = ReedSolomonCode::new(data, parity).with_kernel(Gf256Kernel::Nibble64);
        for &chunk_size in &config.chunk_sizes {
            let chunk: Vec<u8> = (0..chunk_size.as_u64())
                .map(|_| rng.next_u32() as u8)
                .collect();
            let mb = chunk.len() as f64 / (1 << 20) as f64;

            let mut scalar_s = f64::INFINITY;
            let mut serial_s = f64::INFINITY;
            let mut parallel_s = f64::INFINITY;
            let mut blocks = Vec::new();
            for _ in 0..config.runs.max(1) {
                let start = Instant::now();
                let scalar_blocks = scalar_code.encode_serial(&chunk);
                scalar_s = scalar_s.min(start.elapsed().as_secs_f64());
                let start = Instant::now();
                blocks = code.encode_serial(&chunk);
                serial_s = serial_s.min(start.elapsed().as_secs_f64());
                let start = Instant::now();
                let par = code.parallel_encode(&chunk);
                parallel_s = parallel_s.min(start.elapsed().as_secs_f64());
                assert_eq!(scalar_blocks, blocks, "scalar vs nibble64 kernel mismatch");
                assert_eq!(par, blocks, "parallel vs serial encode mismatch");
            }

            let mut recovered = 0usize;
            let mut decode_s_total = 0.0;
            for _ in 0..config.subset_trials.max(1) {
                let subset: Vec<_> = rng
                    .sample_indices(blocks.len(), code.min_decode_blocks())
                    .into_iter()
                    .map(|i| blocks[i].clone())
                    .collect();
                let start = Instant::now();
                let outcome = code.decode(&subset, chunk.len());
                decode_s_total += start.elapsed().as_secs_f64();
                if outcome.map(|d| d == chunk).unwrap_or(false) {
                    recovered += 1;
                }
            }
            let decode_s = decode_s_total / config.subset_trials.max(1) as f64;

            rows.push(RsSweepRow {
                data,
                parity,
                chunk_size,
                scalar_mb_s: mb / scalar_s.max(1e-9),
                encode_mb_s: mb / serial_s.max(1e-9),
                parallel_encode_mb_s: mb / parallel_s.max(1e-9),
                decode_mb_s: mb / decode_s.max(1e-9),
                recovery_pct: 100.0 * recovered as f64 / config.subset_trials.max(1) as f64,
            });
        }
    }
    RsSweep { rows }
}

/// The CI kernel-consistency gate behind `repro rs-check`.
///
/// For every geometry × chunk size of the scale's sweep, encode with the
/// `scalar` kernel (serial), the `nibble64` kernel (serial and parallel), and
/// the streaming stripe pipeline, require all four block sets byte-identical,
/// then decode exactly-minimal random subsets under *both* kernels and
/// require 100 % recovery.  `Ok` carries a human-readable summary; `Err`
/// names the first failing point.
pub fn run_rs_check(scale: Scale, seed: u64) -> Result<String, String> {
    let config = RsSweepConfig::at_scale(scale, seed);
    let mut rng = DetRng::new(seed ^ 0x5eed_c0de);
    let mut points = 0usize;
    let mut decodes = 0usize;
    for &(data, parity) in &config.geometries {
        let scalar_code = ReedSolomonCode::new(data, parity).with_kernel(Gf256Kernel::Scalar);
        let fast_code = ReedSolomonCode::new(data, parity).with_kernel(Gf256Kernel::Nibble64);
        for &chunk_size in &config.chunk_sizes {
            let label = format!("RS({data},{parity}) @ {chunk_size}");
            let chunk: Vec<u8> = (0..chunk_size.as_u64())
                .map(|_| rng.next_u32() as u8)
                .collect();
            let reference = scalar_code.encode_serial(&chunk);
            let fast = fast_code.encode_serial(&chunk);
            if fast != reference {
                return Err(format!("{label}: scalar vs nibble64 blocks differ"));
            }
            let parallel = fast_code.encode_with_workers(&chunk, 4);
            if parallel != reference {
                return Err(format!("{label}: parallel encode differs from serial"));
            }
            let striped = fast_code.encode_via_stripes(&chunk, 1 << 14, 3);
            if striped != reference {
                return Err(format!("{label}: stripe pipeline differs from serial"));
            }
            for trial in 0..config.subset_trials.max(1) {
                let subset: Vec<_> = rng
                    .sample_indices(reference.len(), fast_code.min_decode_blocks())
                    .into_iter()
                    .map(|i| reference[i].clone())
                    .collect();
                for code in [&scalar_code, &fast_code] {
                    let kernel = code.kernel();
                    match code.decode(&subset, chunk.len()) {
                        Ok(decoded) if decoded == chunk => decodes += 1,
                        Ok(_) => {
                            return Err(format!(
                                "{label}: {kernel} decode trial {trial} returned wrong bytes"
                            ));
                        }
                        Err(e) => {
                            return Err(format!(
                                "{label}: {kernel} decode trial {trial} failed: {e}"
                            ));
                        }
                    }
                }
            }
            points += 1;
        }
    }
    Ok(format!(
        "rs-check ok: {points} points × 4 encode paths byte-identical, \
         {decodes} minimal-subset decodes recovered (scalar + nibble64, lane {})",
        Gf256Kernel::Nibble64.lane_label()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Table2 {
        run_table2(&CodingConfig {
            chunk_size: ByteSize::kb(256),
            blocks: 256,
            runs: 1,
            seed: 3,
        })
    }

    #[test]
    fn table2_shape_matches_paper() {
        let t = small();
        assert_eq!(t.rows.len(), 4);
        let null = &t.rows[0];
        let xor = &t.rows[1];
        let online = &t.rows[2];
        let rs = &t.rows[3];
        assert_eq!(null.code, "Null");
        assert_eq!(xor.code, "XOR");
        assert_eq!(online.code, "Online");
        assert_eq!(rs.code, "ReedSolomon");
        // Size overheads: NULL ~0%, XOR ~50%, online and RS a few percent.
        assert!(null.size_overhead_pct.abs() < 1.0);
        assert!((xor.size_overhead_pct - 50.0).abs() < 2.0);
        assert!(online.size_overhead_pct > 1.0 && online.size_overhead_pct < 15.0);
        assert!(rs.size_overhead_pct > 1.0 && rs.size_overhead_pct < 15.0);
        // Time overheads: both codes cost more than NULL, online more than XOR.
        assert!(xor.encode_overhead_pct > 0.0);
        assert!(online.encode_overhead_pct > xor.encode_overhead_pct);
        assert!(online.decode_ms >= xor.decode_ms);
        // NULL's own overhead relative to itself is zero.
        assert_eq!(null.encode_overhead_pct, 0.0);
        // Optimal codecs recover from any minimal subset, with certainty.
        assert_eq!(null.min_recovery_pct, 100.0);
        assert_eq!(xor.min_recovery_pct, 100.0);
        assert_eq!(rs.min_recovery_pct, 100.0);
        assert!(online.min_recovery_pct <= 100.0);
    }

    #[test]
    fn encoded_sizes_scale_with_chunk() {
        let t = small();
        for row in &t.rows {
            assert!(row.encoded_size >= ByteSize::kb(250));
            assert!(row.encoded_size <= ByteSize::kb(420));
        }
    }

    #[test]
    fn table2_rs_geometry_respects_field_cap() {
        for blocks in [16, 256, 512, 4096] {
            let rs = table2_rs_code(blocks);
            assert!(rs.data() + rs.parity() <= 256, "blocks = {blocks}");
            assert_eq!(rs.data(), blocks.min(223));
            let overhead = rs.parity() as f64 / rs.data() as f64;
            assert!(overhead < 0.16, "blocks = {blocks}: {overhead}");
        }
    }

    #[test]
    fn rs_sweep_reports_full_recovery() {
        let sweep = run_rs_sweep(&RsSweepConfig {
            geometries: vec![(4, 2), (8, 4)],
            chunk_sizes: vec![ByteSize::kb(64)],
            runs: 1,
            subset_trials: 3,
            seed: 11,
        });
        assert_eq!(sweep.rows.len(), 2);
        for row in &sweep.rows {
            assert_eq!(row.recovery_pct, 100.0, "RS({},{})", row.data, row.parity);
            assert!(row.scalar_mb_s > 0.0);
            assert!(row.encode_mb_s > 0.0);
            assert!(row.parallel_encode_mb_s > 0.0);
            assert!(row.decode_mb_s > 0.0);
        }
    }

    #[test]
    fn rs_check_passes_at_small_scale() {
        let summary = run_rs_check(Scale::Small, 7).expect("kernel consistency gate");
        assert!(summary.contains("rs-check ok"), "{summary}");
        assert!(summary.contains("byte-identical"), "{summary}");
    }

    #[test]
    fn rs_sweep_scale_configs_are_valid_geometries() {
        for scale in [Scale::Small, Scale::Medium, Scale::Paper] {
            let config = RsSweepConfig::at_scale(scale, 1);
            for (data, parity) in config.geometries {
                assert!(data + parity <= 256, "{scale}: ({data},{parity})");
            }
            assert!(!config.chunk_sizes.is_empty());
        }
    }
}
