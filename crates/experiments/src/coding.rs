//! Erasure-code cost measurements: Table 2.
//!
//! Table 2 stores a 4 MB chunk (4 096 blocks) under the NULL, XOR, and online
//! codes and reports the encoded size and the encoding time, each with its
//! overhead relative to NULL.  [`run_table2`] performs the same measurement with
//! the real codecs from `peerstripe-erasure`.

use crate::scale::Scale;
use peerstripe_erasure::{measure_code, CodeCost, ErasureCode, NullCode, OnlineCode, XorCode};
use peerstripe_sim::ByteSize;

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Codec name.
    pub code: &'static str,
    /// Total encoded size.
    pub encoded_size: ByteSize,
    /// Size overhead relative to the chunk, percent.
    pub size_overhead_pct: f64,
    /// Mean encoding time, milliseconds.
    pub encode_ms: f64,
    /// Encoding-time overhead relative to the NULL code, percent.
    pub encode_overhead_pct: f64,
    /// Mean decoding time, milliseconds.
    pub decode_ms: f64,
}

/// Result of the Table 2 measurement.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Chunk size measured.
    pub chunk_size: ByteSize,
    /// Number of source blocks per chunk.
    pub blocks: usize,
    /// Rows in `[Null, XOR, Online]` order.
    pub rows: Vec<Table2Row>,
}

/// Configuration of the Table 2 measurement.
#[derive(Debug, Clone, Copy)]
pub struct CodingConfig {
    /// Chunk size to encode.
    pub chunk_size: ByteSize,
    /// Number of source blocks per chunk.
    pub blocks: usize,
    /// Number of timing repetitions.
    pub runs: usize,
    /// Random seed for the chunk contents.
    pub seed: u64,
}

impl CodingConfig {
    /// Configuration for a given scale (paper scale: 4 MB chunks, 4 096 blocks,
    /// 10 runs).
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        CodingConfig {
            chunk_size: scale.erasure_chunk(),
            blocks: scale.erasure_blocks(),
            runs: scale.timing_runs(),
            seed,
        }
    }
}

/// Run the Table 2 measurement.
pub fn run_table2(config: &CodingConfig) -> Table2 {
    let null = NullCode::new(config.blocks);
    let xor = XorCode::new(2, config.blocks);
    // q = 3, ε = 0.01 as in the paper; ~3 % extra check blocks at the paper's
    // 4 096-block configuration.  Small-scale runs use fewer blocks, where the
    // asymptotic (1 + ε) decode bound needs a proportionally larger safety
    // margin, hence the 8-block cushion.
    let overhead = 1.03 + 8.0 / config.blocks as f64;
    let online = OnlineCode::with_overhead(config.blocks, 0.01, 3, overhead);

    let codes: Vec<&dyn ErasureCode> = vec![&null, &xor, &online];
    let costs: Vec<CodeCost> = codes
        .iter()
        .map(|c| measure_code(*c, config.chunk_size, config.runs, config.seed))
        .collect();
    let baseline_encode = costs[0].encode_ms;

    let rows = costs
        .iter()
        .map(|c| Table2Row {
            code: c.name,
            encoded_size: c.encoded_size,
            size_overhead_pct: c.size_overhead_pct(),
            encode_ms: c.encode_ms,
            encode_overhead_pct: if baseline_encode > 0.0 {
                100.0 * (c.encode_ms / baseline_encode - 1.0)
            } else {
                0.0
            },
            decode_ms: c.decode_ms,
        })
        .collect();

    Table2 {
        chunk_size: config.chunk_size,
        blocks: config.blocks,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Table2 {
        run_table2(&CodingConfig {
            chunk_size: ByteSize::kb(256),
            blocks: 256,
            runs: 1,
            seed: 3,
        })
    }

    #[test]
    fn table2_shape_matches_paper() {
        let t = small();
        assert_eq!(t.rows.len(), 3);
        let null = &t.rows[0];
        let xor = &t.rows[1];
        let online = &t.rows[2];
        assert_eq!(null.code, "Null");
        assert_eq!(xor.code, "XOR");
        assert_eq!(online.code, "Online");
        // Size overheads: NULL ~0%, XOR ~50%, online a few percent.
        assert!(null.size_overhead_pct.abs() < 1.0);
        assert!((xor.size_overhead_pct - 50.0).abs() < 2.0);
        assert!(online.size_overhead_pct > 1.0 && online.size_overhead_pct < 15.0);
        // Time overheads: both codes cost more than NULL, online more than XOR.
        assert!(xor.encode_overhead_pct > 0.0);
        assert!(online.encode_overhead_pct > xor.encode_overhead_pct);
        assert!(online.decode_ms >= xor.decode_ms);
        // NULL's own overhead relative to itself is zero.
        assert_eq!(null.encode_overhead_pct, 0.0);
    }

    #[test]
    fn encoded_sizes_scale_with_chunk() {
        let t = small();
        for row in &t.rows {
            assert!(row.encoded_size >= ByteSize::kb(250));
            assert!(row.encoded_size <= ByteSize::kb(420));
        }
    }
}
