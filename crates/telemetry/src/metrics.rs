//! A deterministic metrics registry: counters, gauges and fixed-bucket
//! histograms keyed by `(name, ordered label set)`.
//!
//! Registration is the slow path: the key map is a `BTreeMap`, so lookups are
//! `O(log n)` and iteration order — hence JSON export order — is stable across
//! runs and platforms.  The hot path never touches the map: registration
//! returns a copyable handle that indexes straight into a slot vector, so an
//! increment is a bounds-checked array write.  Handles from one registry used
//! against another (or against the wrong metric kind) are silently ignored
//! rather than panicking — the engine must never die for its instruments.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Handle to a registered counter; an index, cheap to copy and store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeHandle(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramHandle(usize);

/// A fixed-bucket histogram: `bounds` are inclusive upper edges, plus an
/// implicit overflow bucket, so `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bucket edges (must be
    /// sorted ascending; an unsorted slice still counts totals correctly but
    /// buckets observations at the first edge that fits).
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.count += 1;
        self.sum += value;
    }

    /// Fold `other` into `self`.  Fails (leaving `self` untouched) when the
    /// bucket edges differ — merging histograms of different shapes would
    /// silently misbucket.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "histogram bucket edges differ: {:?} vs {:?}",
                self.bounds, other.bounds
            ));
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        Ok(())
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The inclusive upper bucket edges.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Metric kinds share one namespace map; the discriminant keeps a counter and
/// a gauge of the same name from colliding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
    kind: Kind,
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// The registry: `BTreeMap` for deterministic registration/export order, a
/// slot vector for handle-indexed hot-path updates.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    index: BTreeMap<MetricKey, usize>,
    slots: Vec<(MetricKey, Slot)>,
}

/// Canonicalise a label set: sorted by key, so `[("a","1"),("b","2")]` and
/// `[("b","2"),("a","1")]` name the same metric.
fn canon_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&mut self, key: MetricKey, slot: Slot) -> usize {
        if let Some(&idx) = self.index.get(&key) {
            return idx;
        }
        let idx = self.slots.len();
        self.index.insert(key.clone(), idx);
        self.slots.push((key, slot));
        idx
    }

    /// Get or create the counter `(name, labels)`.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)]) -> CounterHandle {
        let key = MetricKey {
            name: name.to_string(),
            labels: canon_labels(labels),
            kind: Kind::Counter,
        };
        CounterHandle(self.register(key, Slot::Counter(0)))
    }

    /// Get or create the gauge `(name, labels)`.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> GaugeHandle {
        let key = MetricKey {
            name: name.to_string(),
            labels: canon_labels(labels),
            kind: Kind::Gauge,
        };
        GaugeHandle(self.register(key, Slot::Gauge(0.0)))
    }

    /// Get or create the histogram `(name, labels)` with the given bucket
    /// edges (ignored if the histogram already exists).
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> HistogramHandle {
        let key = MetricKey {
            name: name.to_string(),
            labels: canon_labels(labels),
            kind: Kind::Histogram,
        };
        HistogramHandle(self.register(key, Slot::Histogram(Histogram::new(bounds))))
    }

    /// Add `by` to a counter.
    pub fn inc(&mut self, handle: CounterHandle, by: u64) {
        if let Some((_, Slot::Counter(v))) = self.slots.get_mut(handle.0) {
            *v += by;
        }
    }

    /// Set a gauge.
    pub fn set(&mut self, handle: GaugeHandle, value: f64) {
        if let Some((_, Slot::Gauge(v))) = self.slots.get_mut(handle.0) {
            *v = value;
        }
    }

    /// Record one histogram observation.
    pub fn observe(&mut self, handle: HistogramHandle, value: f64) {
        if let Some((_, Slot::Histogram(h))) = self.slots.get_mut(handle.0) {
            h.observe(value);
        }
    }

    /// Current value of a counter (0 for a foreign handle).
    pub fn counter_value(&self, handle: CounterHandle) -> u64 {
        match self.slots.get(handle.0) {
            Some((_, Slot::Counter(v))) => *v,
            _ => 0,
        }
    }

    /// Current value of a gauge (0 for a foreign handle).
    pub fn gauge_value(&self, handle: GaugeHandle) -> f64 {
        match self.slots.get(handle.0) {
            Some((_, Slot::Gauge(v))) => *v,
            _ => 0.0,
        }
    }

    /// The histogram behind a handle, if any.
    pub fn histogram_value(&self, handle: HistogramHandle) -> Option<&Histogram> {
        match self.slots.get(handle.0) {
            Some((_, Slot::Histogram(h))) => Some(h),
            _ => None,
        }
    }

    /// Look a counter up by name/labels without registering it.
    pub fn find_counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey {
            name: name.to_string(),
            labels: canon_labels(labels),
            kind: Kind::Counter,
        };
        match self.index.get(&key).and_then(|&i| self.slots.get(i)) {
            Some((_, Slot::Counter(v))) => Some(*v),
            _ => None,
        }
    }

    /// Look a gauge up by name/labels without registering it.
    pub fn find_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = MetricKey {
            name: name.to_string(),
            labels: canon_labels(labels),
            kind: Kind::Gauge,
        };
        match self.index.get(&key).and_then(|&i| self.slots.get(i)) {
            Some((_, Slot::Gauge(v))) => Some(*v),
            _ => None,
        }
    }

    /// Look a histogram up by name/labels without registering it.
    pub fn find_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        let key = MetricKey {
            name: name.to_string(),
            labels: canon_labels(labels),
            kind: Kind::Histogram,
        };
        match self.index.get(&key).and_then(|&i| self.slots.get(i)) {
            Some((_, Slot::Histogram(h))) => Some(h),
            _ => None,
        }
    }

    /// Registered metrics of all kinds.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Fold `other` into `self`: counters add, gauges take `other`'s value
    /// (last write wins), histograms merge when their bucket edges agree and
    /// are skipped otherwise.  Merging is associative and commutative for
    /// counters and compatible histograms, which the property tests rely on.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (key, slot) in &other.slots {
            match slot {
                Slot::Counter(v) => {
                    let idx = self.register(key.clone(), Slot::Counter(0));
                    if let Some((_, Slot::Counter(mine))) = self.slots.get_mut(idx) {
                        *mine += v;
                    }
                }
                Slot::Gauge(v) => {
                    let idx = self.register(key.clone(), Slot::Gauge(0.0));
                    if let Some((_, Slot::Gauge(mine))) = self.slots.get_mut(idx) {
                        *mine = *v;
                    }
                }
                Slot::Histogram(h) => {
                    let idx =
                        self.register(key.clone(), Slot::Histogram(Histogram::new(h.bounds())));
                    if let Some((_, Slot::Histogram(mine))) = self.slots.get_mut(idx) {
                        let _ = mine.merge(h);
                    }
                }
            }
        }
    }

    /// Fold an exported snapshot into `self`, adding `extra` labels to every
    /// metric — how a monitor merges per-node exports into one registry whose
    /// series carry a `("node", name)` label.  Counters add, gauges take the
    /// export's value, histograms merge when bucket edges agree (and are
    /// skipped otherwise), exactly like [`MetricsRegistry::merge`].
    pub fn absorb_export(&mut self, export: &RegistryExport, extra: &[(&str, &str)]) {
        let with_extra = |labels: &[(String, String)]| -> Vec<(String, String)> {
            let mut out: Vec<(String, String)> = labels.to_vec();
            out.extend(extra.iter().map(|(k, v)| (k.to_string(), v.to_string())));
            out.sort();
            out
        };
        for c in &export.counters {
            let key = MetricKey {
                name: c.name.clone(),
                labels: with_extra(&c.labels),
                kind: Kind::Counter,
            };
            let idx = self.register(key, Slot::Counter(0));
            if let Some((_, Slot::Counter(mine))) = self.slots.get_mut(idx) {
                *mine += c.value;
            }
        }
        for g in &export.gauges {
            let key = MetricKey {
                name: g.name.clone(),
                labels: with_extra(&g.labels),
                kind: Kind::Gauge,
            };
            let idx = self.register(key, Slot::Gauge(0.0));
            if let Some((_, Slot::Gauge(mine))) = self.slots.get_mut(idx) {
                *mine = g.value;
            }
        }
        for h in &export.histograms {
            let key = MetricKey {
                name: h.name.clone(),
                labels: with_extra(&h.labels),
                kind: Kind::Histogram,
            };
            let incoming = Histogram {
                bounds: h.bounds.clone(),
                counts: h.bucket_counts.clone(),
                count: h.count,
                sum: h.sum,
            };
            let idx = self.register(key, Slot::Histogram(Histogram::new(&h.bounds)));
            if let Some((_, Slot::Histogram(mine))) = self.slots.get_mut(idx) {
                let _ = mine.merge(&incoming);
            }
        }
    }

    /// Snapshot the registry into serializable export records, in key order.
    pub fn export(&self) -> RegistryExport {
        let mut export = RegistryExport::default();
        for (key, &idx) in &self.index {
            let Some((_, slot)) = self.slots.get(idx) else {
                continue;
            };
            let labels = key.labels.clone();
            match slot {
                Slot::Counter(v) => export.counters.push(CounterExport {
                    name: key.name.clone(),
                    labels,
                    value: *v,
                }),
                Slot::Gauge(v) => export.gauges.push(GaugeExport {
                    name: key.name.clone(),
                    labels,
                    value: *v,
                }),
                Slot::Histogram(h) => export.histograms.push(HistogramExport {
                    name: key.name.clone(),
                    labels,
                    count: h.count,
                    sum: h.sum,
                    bounds: h.bounds.clone(),
                    bucket_counts: h.counts.clone(),
                }),
            }
        }
        export
    }

    /// The export as one line of deterministic JSON.
    pub fn render_json(&self) -> String {
        serde_json::to_string(&self.export()).unwrap_or_default()
    }
}

/// Exported counter state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterExport {
    /// Metric name.
    pub name: String,
    /// Canonicalised (sorted) label set.
    pub labels: Vec<(String, String)>,
    /// Accumulated count.
    pub value: u64,
}

/// Exported gauge state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeExport {
    /// Metric name.
    pub name: String,
    /// Canonicalised (sorted) label set.
    pub labels: Vec<(String, String)>,
    /// Last set value.
    pub value: f64,
}

/// Exported histogram state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramExport {
    /// Metric name.
    pub name: String,
    /// Canonicalised (sorted) label set.
    pub labels: Vec<(String, String)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Inclusive upper bucket edges.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the last entry is the overflow bucket.
    pub bucket_counts: Vec<u64>,
}

impl HistogramExport {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts: the
    /// inclusive upper edge of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`.  Observations in the overflow bucket report the last
    /// finite edge (the estimate saturates rather than inventing a value).
    /// Returns 0 for an empty histogram.  Upper-edge reporting is coarse but
    /// deterministic — exactly what a reproducible health report needs.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.bucket_counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let edge = self.bounds.get(i).or_else(|| self.bounds.last());
                return edge.copied().unwrap_or(0.0);
            }
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

/// A whole-registry snapshot, serializable via the vendored serde.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistryExport {
    /// All counters, in `(name, labels)` order.
    pub counters: Vec<CounterExport>,
    /// All gauges, in `(name, labels)` order.
    pub gauges: Vec<GaugeExport>,
    /// All histograms, in `(name, labels)` order.
    pub histograms: Vec<HistogramExport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip_through_handles() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("events_total", &[("kind", "depart")]);
        let g = reg.gauge("files_unavailable", &[]);
        reg.inc(c, 3);
        reg.inc(c, 2);
        reg.set(g, 7.0);
        assert_eq!(reg.counter_value(c), 5);
        assert_eq!(reg.gauge_value(g), 7.0);
        // Re-registration returns the same slot.
        let c2 = reg.counter("events_total", &[("kind", "depart")]);
        assert_eq!(c, c2);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("m", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("m", &[("b", "2"), ("a", "1")]);
        assert_eq!(a, b);
        reg.inc(a, 1);
        assert_eq!(reg.find_counter("m", &[("b", "2"), ("a", "1")]), Some(1));
    }

    #[test]
    fn kinds_do_not_collide_and_foreign_handles_are_ignored() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("x", &[]);
        let g = reg.gauge("x", &[]);
        reg.inc(c, 1);
        reg.set(g, 2.0);
        assert_eq!(reg.counter_value(c), 1);
        assert_eq!(reg.gauge_value(g), 2.0);

        let mut other = MetricsRegistry::new();
        let h = other.histogram("h", &[], &[1.0]);
        // `h` indexes slot 0 of `other`; in `reg` slot 0 is a counter.
        reg.observe(h, 5.0);
        assert_eq!(reg.counter_value(c), 1, "wrong-kind write is a no-op");
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(1.0); // inclusive upper edge
        h.observe(5.0);
        h.observe(100.0);
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.5).abs() < 1e-9);
        assert!((h.mean() - 26.625).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_requires_matching_bounds() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let mut b = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        b.observe(1.5);
        assert!(a.merge(&b).is_ok());
        assert_eq!(a.count(), 2);
        assert_eq!(a.bucket_counts(), &[1, 1, 0]);
        let c = Histogram::new(&[1.0]);
        assert!(a.merge(&c).is_err());
        assert_eq!(a.count(), 2, "failed merge leaves self untouched");
    }

    #[test]
    fn registry_merge_adds_counters_and_merges_histograms() {
        let mut a = MetricsRegistry::new();
        let ca = a.counter("n", &[("x", "1")]);
        a.inc(ca, 2);
        let ha = a.histogram("h", &[], &[10.0]);
        a.observe(ha, 3.0);

        let mut b = MetricsRegistry::new();
        let cb = b.counter("n", &[("x", "1")]);
        b.inc(cb, 5);
        let hb = b.histogram("h", &[], &[10.0]);
        b.observe(hb, 30.0);
        let only_b = b.gauge("g", &[]);
        b.set(only_b, 4.0);

        a.merge(&b);
        assert_eq!(a.find_counter("n", &[("x", "1")]), Some(7));
        assert_eq!(a.find_gauge("g", &[]), Some(4.0));
        let h = a
            .find_histogram("h", &[])
            .map(|h| (h.count(), h.bucket_counts().to_vec()));
        assert_eq!(h, Some((2, vec![1, 1])));
    }

    #[test]
    fn export_is_deterministic_and_round_trips() {
        let mut reg = MetricsRegistry::new();
        // Register in one order...
        let z = reg.counter("z_last", &[]);
        let a = reg.counter("a_first", &[]);
        reg.inc(z, 1);
        reg.inc(a, 2);
        let json = reg.render_json();
        // ...export comes out in key order regardless.
        assert!(json.find("a_first").unwrap() < json.find("z_last").unwrap());

        let back: RegistryExport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reg.export());
    }

    #[test]
    fn absorb_export_adds_the_extra_labels_and_accumulates() {
        let mut node = MetricsRegistry::new();
        let c = node.counter("reqs", &[("op", "ping")]);
        node.inc(c, 3);
        let h = node.histogram("lat", &[], &[1.0, 10.0]);
        node.observe(h, 0.5);
        node.observe(h, 5.0);
        let g = node.gauge("occ", &[]);
        node.set(g, 42.0);
        let export = node.export();

        let mut merged = MetricsRegistry::new();
        merged.absorb_export(&export, &[("node", "node-0")]);
        merged.absorb_export(&export, &[("node", "node-0")]);
        assert_eq!(
            merged.find_counter("reqs", &[("op", "ping"), ("node", "node-0")]),
            Some(6)
        );
        assert_eq!(merged.find_gauge("occ", &[("node", "node-0")]), Some(42.0));
        let hist = merged
            .find_histogram("lat", &[("node", "node-0")])
            .map(|h| (h.count(), h.bucket_counts().to_vec()));
        assert_eq!(hist, Some((4, vec![2, 2, 0])));
        // The unlabelled originals were not created.
        assert_eq!(merged.find_counter("reqs", &[("op", "ping")]), None);
    }

    #[test]
    fn histogram_export_quantiles_report_bucket_upper_edges() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for _ in 0..90 {
            h.observe(0.5);
        }
        for _ in 0..9 {
            h.observe(5.0);
        }
        h.observe(50.0);
        let he = HistogramExport {
            name: "h".into(),
            labels: vec![],
            count: h.count(),
            sum: h.sum(),
            bounds: h.bounds().to_vec(),
            bucket_counts: h.bucket_counts().to_vec(),
        };
        assert_eq!(he.quantile(0.5), 1.0);
        assert_eq!(he.quantile(0.99), 10.0);
        assert_eq!(he.quantile(1.0), 100.0);

        let empty = HistogramExport {
            name: "e".into(),
            labels: vec![],
            count: 0,
            sum: 0.0,
            bounds: vec![1.0],
            bucket_counts: vec![0, 0],
        };
        assert_eq!(empty.quantile(0.99), 0.0);

        // Overflow observations saturate at the last finite edge.
        let overflow = HistogramExport {
            name: "o".into(),
            labels: vec![],
            count: 1,
            sum: 500.0,
            bounds: vec![1.0],
            bucket_counts: vec![0, 1],
        };
        assert_eq!(overflow.quantile(0.5), 1.0);
    }
}
