//! `peerstripe-telemetry` — the workspace's shared observability substrate.
//!
//! Every sim-facing crate may depend on this one; it depends only on the
//! vendored serde.  Three pillars:
//!
//! * [`metrics`] — a deterministic [`MetricsRegistry`] of counters, gauges and
//!   fixed-bucket histograms keyed by `(name, ordered label set)`.  Handles
//!   are plain indices, so hot-path increments are an array write; the key map
//!   is `BTreeMap`-backed so JSON exports are byte-stable across runs.
//! * [`trace`] — sim-time structured event tracing.  Engines emit typed
//!   [`TraceRecord`]s through a [`Tracer`]; [`NullTracer`] is the zero-cost
//!   default (`enabled()` is `false`, so call sites skip record construction
//!   entirely), [`JsonlTracer`] renders one JSON line per event, and
//!   [`RingBufferTracer`] keeps a bounded tail for huge runs.
//! * [`profile`] — per-phase wall-clock profiling.  The *only* module in the
//!   sim-facing tree sanctioned to read the host clock (`repro lint` exempts
//!   `crates/telemetry/src/profile.rs` the same way it exempts
//!   `bench_snapshot`); everything else merely carries the opaque tokens it
//!   hands out.
//!
//! Nothing in this crate touches simulation state: a registry, tracer or
//! profiler can be bolted onto any engine without changing its results, and
//! the determinism tests assert exactly that.

pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{
    CounterExport, CounterHandle, GaugeHandle, Histogram, HistogramExport, HistogramHandle,
    MetricsRegistry, RegistryExport,
};
pub use profile::{Phase, PhaseProfiler, ProfToken};
pub use trace::{
    JsonlTracer, NullTracer, RingBufferTracer, RunManifest, TraceEvent, TraceOutput, TraceRecord,
    Tracer,
};
