//! Sim-time structured event tracing.
//!
//! Engines emit typed [`TraceRecord`]s stamped with the simulation clock
//! through a boxed [`Tracer`].  [`NullTracer`] is the zero-cost default — its
//! `enabled()` returns `false`, and every emission site checks that flag
//! before even constructing the record, so an untraced run does no extra
//! work.  [`JsonlTracer`] buffers one JSON line per event (file IO stays in
//! the CLI, keeping the engine deterministic and side-effect free);
//! [`RingBufferTracer`] keeps only the most recent events for huge runs where
//! a full trace would not fit in memory.
//!
//! Records use plain integer ids (node, chunk, file, domain, outage) rather
//! than the workspace's newtypes: this crate sits below every sim crate, and
//! the flat encoding is what `repro trace-summary` parses back.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The effective configuration of a run, emitted as the first record of every
/// trace (and embedded in sweep JSON) so outputs are self-describing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Scenario or experiment name.
    pub scenario: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Scale label ("small", "medium", "paper", or a custom tag).
    pub scale: String,
    /// Flattened `key = value` configuration entries, in emission order.
    pub config: Vec<(String, String)>,
}

impl RunManifest {
    /// A manifest with no configuration entries yet.
    pub fn new(scenario: &str, seed: u64, scale: &str) -> Self {
        RunManifest {
            scenario: scenario.to_string(),
            seed,
            scale: scale.to_string(),
            config: Vec::new(),
        }
    }

    /// Append one `key = value` entry.
    pub fn push(&mut self, key: &str, value: String) {
        self.config.push((key.to_string(), value));
    }

    /// Append many entries.
    pub fn extend(&mut self, entries: Vec<(String, String)>) {
        self.config.extend(entries);
    }

    /// Look an entry up by key (first match).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.config
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One typed trace record.  Times inside records (`done_at_ns`) are sim-clock
/// nanoseconds, like the [`TraceEvent`] stamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// Header record: the run's effective configuration.
    Manifest(RunManifest),
    /// A node left the overlay.  `outage` links group departures to their
    /// [`TraceRecord::OutageStart`]; individual departures carry `None`.
    NodeDown {
        /// The departed node.
        node: usize,
        /// The node's failure domain, when a topology is in play.
        domain: Option<u32>,
        /// The outage that took the node down, for group departures.
        outage: Option<u64>,
        /// True when the churn process drew a permanent failure.
        permanent: bool,
    },
    /// A down node returned.
    NodeReturn {
        /// The returning node.
        node: usize,
        /// True when the node had already been declared dead — the
        /// declaration is now known to have been false.
        false_declaration: bool,
    },
    /// A whole failure domain went down at once.
    OutageStart {
        /// Unique outage id, referenced by `NodeDown` / verdict records.
        outage: u64,
        /// The affected topology domain.
        group: u32,
        /// Members the outage took down.
        members: usize,
    },
    /// A group outage ended.
    OutageEnd {
        /// The outage id from the matching `OutageStart`.
        outage: u64,
        /// The affected topology domain.
        group: u32,
    },
    /// The detection policy ruled on a due declaration.
    DeclarationVerdict {
        /// The absent node.
        node: usize,
        /// The down generation the declaration belongs to.
        generation: u64,
        /// "declare", "hold" or "cancel".
        verdict: String,
        /// The outage the node's current down period belongs to, if any.
        outage: Option<u64>,
    },
    /// A held declaration was released: `declared` tells whether it went
    /// through (hold cap expired) or was cancelled by the node returning.
    HoldReleased {
        /// The node whose declaration was held.
        node: usize,
        /// True when the release was a declaration, false for a cancellation.
        declared: bool,
    },
    /// A declaration deregistered blocks of a chunk.
    BlocksWrittenOff {
        /// The damaged chunk.
        chunk: u32,
        /// The declared node that held the blocks.
        node: usize,
        /// How many blocks the declaration wrote off.
        blocks: usize,
    },
    /// A chunk fell below its decode threshold with its blocks written off:
    /// the data is permanently gone.
    ChunkLost {
        /// The lost chunk.
        chunk: u32,
        /// The file the chunk belongs to.
        file: u32,
        /// The declared node whose write-off pushed the chunk under.
        cause_node: usize,
        /// The outage the causing declaration belongs to, if any.
        outage: Option<u64>,
    },
    /// A file lost its first chunk — the file is permanently damaged.
    FileLost {
        /// The damaged file.
        file: u32,
        /// The first lost chunk.
        chunk: u32,
        /// The declared node whose write-off caused the loss.
        cause_node: usize,
        /// The outage the causing declaration belongs to, if any.
        outage: Option<u64>,
    },
    /// The placement strategy chose repair targets for a chunk.
    PlacementDecision {
        /// The chunk under repair.
        chunk: u32,
        /// The strategy's label.
        strategy: String,
        /// Blocks the repair policy asked for.
        want: usize,
        /// Targets the strategy produced.
        got: usize,
    },
    /// A regeneration was scheduled.
    RepairScheduled {
        /// The chunk under repair.
        chunk: u32,
        /// Blocks being rebuilt.
        blocks: usize,
        /// Network bytes the repair will move.
        traffic: u64,
        /// Sim-clock nanoseconds at which the transfers finish.
        done_at_ns: u64,
    },
    /// A scheduled regeneration finished its transfers.
    RepairCompleted {
        /// The repaired chunk.
        chunk: u32,
        /// Blocks that landed on live targets.
        placed: u64,
        /// Blocks dropped (target died, or the chunk was lost meanwhile).
        dropped: u64,
        /// Network bytes the repair moved.
        traffic: u64,
    },
    /// Periodic availability/durability sample.
    Sample {
        /// Files currently unavailable.
        files_unavailable: u64,
        /// Files permanently lost so far.
        files_lost: u64,
        /// Cumulative repair traffic, bytes.
        repair_bytes: u64,
        /// Repairs in flight.
        repairs_in_flight: u64,
    },
}

/// A record stamped with the sim clock (nanoseconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Sim-clock nanoseconds.
    pub t_ns: u64,
    /// The typed record.
    pub record: TraceRecord,
}

impl TraceEvent {
    /// Render as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }
}

/// What a tracer hands back when a run finishes.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOutput {
    /// Nothing was recorded ([`NullTracer`]).
    None,
    /// The full trace as JSONL text.
    Jsonl(String),
    /// The retained tail of events, plus how many were dropped.
    Ring {
        /// The retained most-recent events, oldest first.
        events: Vec<TraceEvent>,
        /// Events dropped because the buffer was full.
        dropped: u64,
    },
}

/// The sink engines emit trace events into.
pub trait Tracer {
    /// False for the null tracer: emission sites check this before even
    /// constructing a record, so untraced runs pay (almost) nothing.
    fn enabled(&self) -> bool;

    /// Record one event.  Events arrive in sim-time order (the engine's event
    /// queue is ordered), so backends need not sort.
    fn record(&mut self, event: TraceEvent);

    /// Consume the tracer and hand back whatever it accumulated.
    fn finish(self: Box<Self>) -> TraceOutput;
}

/// The zero-cost default tracer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}

    fn finish(self: Box<Self>) -> TraceOutput {
        TraceOutput::None
    }
}

/// Buffers the whole trace as JSONL text.  No file IO: the engine stays free
/// of side effects, and the CLI decides where the bytes go.
#[derive(Debug, Clone, Default)]
pub struct JsonlTracer {
    lines: String,
    records: u64,
}

impl JsonlTracer {
    /// An empty JSONL tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records buffered so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

impl Tracer for JsonlTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        self.lines.push_str(&event.to_jsonl());
        self.lines.push('\n');
        self.records += 1;
    }

    fn finish(self: Box<Self>) -> TraceOutput {
        TraceOutput::Jsonl(self.lines)
    }
}

/// Keeps only the most recent `capacity` events — bounded memory for runs
/// whose full trace would not fit.
#[derive(Debug, Clone)]
pub struct RingBufferTracer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingBufferTracer {
    /// A ring buffer retaining at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferTracer {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Events dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Tracer for RingBufferTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    fn finish(self: Box<Self>) -> TraceOutput {
        TraceOutput::Ring {
            events: self.events.into_iter().collect(),
            dropped: self.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event(t_ns: u64) -> TraceEvent {
        TraceEvent {
            t_ns,
            record: TraceRecord::NodeDown {
                node: 3,
                domain: Some(1),
                outage: None,
                permanent: false,
            },
        }
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let events = vec![
            TraceEvent {
                t_ns: 0,
                record: TraceRecord::Manifest(RunManifest::new("repair-mini", 42, "small")),
            },
            sample_event(1_000_000_000),
            TraceEvent {
                t_ns: 2_000_000_000,
                record: TraceRecord::FileLost {
                    file: 7,
                    chunk: 19,
                    cause_node: 3,
                    outage: Some(2),
                },
            },
        ];
        for event in events {
            let line = event.to_jsonl();
            let back: TraceEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn null_tracer_is_disabled_and_empty() {
        let tracer = NullTracer;
        assert!(!tracer.enabled());
        let mut boxed: Box<dyn Tracer> = Box::new(tracer);
        boxed.record(sample_event(1));
        assert_eq!(boxed.finish(), TraceOutput::None);
    }

    #[test]
    fn jsonl_tracer_emits_one_line_per_event() {
        let mut tracer = JsonlTracer::new();
        tracer.record(sample_event(1));
        tracer.record(sample_event(2));
        assert_eq!(tracer.records(), 2);
        let TraceOutput::Jsonl(text) = Box::new(tracer).finish() else {
            panic!("expected jsonl output");
        };
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let _: TraceEvent = serde_json::from_str(line).unwrap();
        }
    }

    #[test]
    fn ring_buffer_keeps_the_tail() {
        let mut tracer = RingBufferTracer::new(2);
        tracer.record(sample_event(1));
        tracer.record(sample_event(2));
        tracer.record(sample_event(3));
        assert_eq!(tracer.dropped(), 1);
        let TraceOutput::Ring { events, dropped } = Box::new(tracer).finish() else {
            panic!("expected ring output");
        };
        assert_eq!(dropped, 1);
        assert_eq!(events.iter().map(|e| e.t_ns).collect::<Vec<_>>(), [2, 3]);
    }

    #[test]
    fn manifest_lookup_finds_entries() {
        let mut manifest = RunManifest::new("s", 1, "small");
        manifest.push("policy", "eager".to_string());
        manifest.extend(vec![("nodes".to_string(), "250".to_string())]);
        assert_eq!(manifest.get("policy"), Some("eager"));
        assert_eq!(manifest.get("nodes"), Some("250"));
        assert_eq!(manifest.get("missing"), None);
    }
}
