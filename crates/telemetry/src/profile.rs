//! Per-phase wall-clock profiling.
//!
//! This module is the *only* sim-facing code sanctioned to read the host
//! clock: `repro lint` exempts `crates/telemetry/src/profile.rs` from the
//! `wall-clock` rule exactly as it exempts `bench_snapshot.rs`.  Everything
//! else merely carries the opaque [`ProfToken`]s handed out here — passing an
//! `Instant` around is legal under the rule; *creating* one is not.
//!
//! Wall time never feeds simulation state: the profiler accumulates
//! per-[`Phase`] elapsed nanoseconds off to the side, and a disabled profiler
//! (the default) hands out empty tokens so instrumented code pays only a
//! branch.

use crate::metrics::MetricsRegistry;
use std::time::Instant;

/// The engine phases the profiler attributes wall time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The maintenance event loop's dispatch (everything not broken out below).
    EventDispatch,
    /// Detection-policy verdicts (`DetectionPolicy::decide`).
    DetectorDecide,
    /// Repair-transfer scheduling (`RepairScheduler::schedule`).
    Scheduler,
    /// Placement-target selection (`PlacementStrategy::repair_targets`).
    Placement,
    /// Erasure encode/decode work.
    Codec,
}

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; 5] = [
        Phase::EventDispatch,
        Phase::DetectorDecide,
        Phase::Scheduler,
        Phase::Placement,
        Phase::Codec,
    ];

    /// Stable label for reports and metric labels.
    pub fn label(self) -> &'static str {
        match self {
            Phase::EventDispatch => "event_dispatch",
            Phase::DetectorDecide => "detector_decide",
            Phase::Scheduler => "scheduler",
            Phase::Placement => "placement",
            Phase::Codec => "codec",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// An opaque scope token: holds the start instant when profiling is on,
/// nothing when it is off.  Produced by [`PhaseProfiler::begin`], consumed by
/// [`PhaseProfiler::end`].
#[derive(Debug)]
pub struct ProfToken(Option<Instant>);

/// Accumulates per-phase wall-clock nanoseconds and call counts.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    enabled: bool,
    nanos: [u64; 5],
    calls: [u64; 5],
}

impl PhaseProfiler {
    /// A profiler; disabled profilers hand out empty tokens and never read
    /// the clock.
    pub fn new(enabled: bool) -> Self {
        PhaseProfiler {
            enabled,
            ..Self::default()
        }
    }

    /// Whether timings are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a scope.  Cheap when disabled: no clock read, just a `None`.
    pub fn begin(&self) -> ProfToken {
        ProfToken(if self.enabled {
            Some(Instant::now())
        } else {
            None
        })
    }

    /// Close a scope, attributing its elapsed time to `phase`.
    pub fn end(&mut self, phase: Phase, token: ProfToken) {
        if let Some(start) = token.0 {
            let i = phase.index();
            if let (Some(n), Some(c)) = (self.nanos.get_mut(i), self.calls.get_mut(i)) {
                *n += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                *c += 1;
            }
        }
    }

    /// Accumulated nanoseconds for a phase.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.nanos.get(phase.index()).copied().unwrap_or(0)
    }

    /// Closed scopes for a phase.
    pub fn phase_calls(&self, phase: Phase) -> u64 {
        self.calls.get(phase.index()).copied().unwrap_or(0)
    }

    /// Fold another profiler's accumulations into this one.
    pub fn merge(&mut self, other: &PhaseProfiler) {
        for (mine, theirs) in self.nanos.iter_mut().zip(&other.nanos) {
            *mine += theirs;
        }
        for (mine, theirs) in self.calls.iter_mut().zip(&other.calls) {
            *mine += theirs;
        }
    }

    /// Export the accumulated timings as gauges
    /// (`profile_phase_ms{phase=...}`, `profile_phase_calls{phase=...}`).
    pub fn fill_registry(&self, registry: &mut MetricsRegistry) {
        for phase in Phase::ALL {
            let labels = [("phase", phase.label())];
            let ms = registry.gauge("profile_phase_ms", &labels);
            registry.set(ms, self.phase_nanos(phase) as f64 / 1e6);
            let calls = registry.gauge("profile_phase_calls", &labels);
            registry.set(calls, self.phase_calls(phase) as f64);
        }
    }

    /// Human-readable per-phase breakdown, one line per phase.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for phase in Phase::ALL {
            let nanos = self.phase_nanos(phase);
            let calls = self.phase_calls(phase);
            let mean_us = if calls == 0 {
                0.0
            } else {
                nanos as f64 / calls as f64 / 1e3
            };
            out.push_str(&format!(
                "{:<16} {:>12.3} ms {:>12} calls {:>10.3} us/call\n",
                phase.label(),
                nanos as f64 / 1e6,
                calls,
                mean_us,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_accumulates_nothing() {
        let mut prof = PhaseProfiler::new(false);
        let token = prof.begin();
        prof.end(Phase::Scheduler, token);
        assert_eq!(prof.phase_calls(Phase::Scheduler), 0);
        assert_eq!(prof.phase_nanos(Phase::Scheduler), 0);
    }

    #[test]
    fn enabled_profiler_counts_scopes() {
        let mut prof = PhaseProfiler::new(true);
        for _ in 0..3 {
            let token = prof.begin();
            prof.end(Phase::Placement, token);
        }
        assert_eq!(prof.phase_calls(Phase::Placement), 3);
        assert_eq!(prof.phase_calls(Phase::Codec), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = PhaseProfiler::new(true);
        let t = a.begin();
        a.end(Phase::Codec, t);
        let mut b = PhaseProfiler::new(true);
        let t = b.begin();
        b.end(Phase::Codec, t);
        a.merge(&b);
        assert_eq!(a.phase_calls(Phase::Codec), 2);
    }

    #[test]
    fn registry_export_covers_every_phase() {
        let mut prof = PhaseProfiler::new(true);
        let t = prof.begin();
        prof.end(Phase::EventDispatch, t);
        let mut reg = MetricsRegistry::new();
        prof.fill_registry(&mut reg);
        assert_eq!(
            reg.find_gauge("profile_phase_calls", &[("phase", "event_dispatch")]),
            Some(1.0)
        );
        for phase in Phase::ALL {
            assert!(reg
                .find_gauge("profile_phase_ms", &[("phase", phase.label())])
                .is_some());
        }
        let text = prof.render_text();
        assert_eq!(text.lines().count(), Phase::ALL.len());
    }
}
