//! Simulation substrate shared by every PeerStripe crate.
//!
//! The paper evaluates the proposed contributory-storage system entirely through
//! simulation (a 10 000-node Pastry simulator driven by a file-system trace) plus a
//! small Condor case study.  This crate provides the building blocks those
//! simulations need and that the rest of the workspace builds on:
//!
//! * [`rng::DetRng`] — a deterministic, forkable random-number generator so every
//!   experiment is exactly reproducible from a single seed.
//! * [`dist`] — the statistical distributions used to synthesise workloads
//!   (normal, truncated normal, uniform, Zipf, exponential).
//! * [`bytesize::ByteSize`] — saturating byte-size arithmetic with human-readable
//!   formatting, used for every capacity, file size, and transfer amount.
//! * [`event`] — a discrete-event queue with virtual time, used by the multicast
//!   and desktop-grid simulators.
//! * [`rate`] — FIFO bandwidth budgets over virtual time, used by the repair
//!   subsystem to make concurrent regenerations queue and interfere.
//! * [`stats`] — online statistics (Welford), histograms, x/y series and formatted
//!   tables used to report the paper's figures and tables.
//!
//! Nothing in this crate knows about storage or overlays; it is a pure substrate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bytesize;
pub mod dist;
pub mod event;
pub mod rate;
pub mod rng;
pub mod stats;

pub use bytesize::ByteSize;
pub use event::{EventQueue, SimTime};
pub use rate::{RateLimiter, Reservation};
pub use rng::DetRng;
pub use stats::{OnlineStats, Series, TableBuilder};
