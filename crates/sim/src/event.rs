//! Discrete-event simulation core.
//!
//! The multicast experiments (Figures 11 and 12) advance in *epochs* and the
//! Condor case study (Table 4) models transfer and lookup latencies; both are
//! driven by a simple discrete-event queue with a virtual clock.  Events are
//! ordered by `(time, sequence-number)` so simultaneous events fire in insertion
//! order, which keeps the simulation deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Virtual simulation time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (clamped at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events of type `E` are scheduled at absolute or relative virtual times and
/// popped in non-decreasing time order; ties are broken by insertion order.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule an event at an absolute virtual time.
    ///
    /// Scheduling in the past is clamped to `now` (the event fires immediately);
    /// this matches the usual discrete-event convention and avoids time warps.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        let time = time.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Schedule an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing the virtual clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let next = self.heap.pop()?;
        self.now = next.time;
        self.processed += 1;
        Some((next.time, next.event))
    }

    /// Peek at the time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Drive the queue to completion, calling `handler` for each event.
    ///
    /// The handler receives a mutable reference to the queue so it can schedule
    /// follow-up events.  Returns the final virtual time.
    pub fn run<F>(&mut self, mut handler: F) -> SimTime
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        while let Some((t, e)) = self.pop() {
            handler(self, t, e);
        }
        self.now
    }

    /// Drive the queue until the virtual clock would exceed `deadline`.
    ///
    /// Events scheduled at exactly `deadline` are processed.  Returns the number
    /// of events processed by this call.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        let start = self.processed;
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            let (t, e) = self.pop().expect("peeked event must pop"); // lint:allow(panic) -- pop follows a successful peek on the same queue
            handler(self, t, e);
        }
        self.processed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_conversions() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.000s");
        assert_eq!(format!("{}", SimTime::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimTime::from_nanos(30)), "30ns");
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), "later");
        q.pop();
        q.schedule_at(SimTime::from_secs(1), "past");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "past");
        assert_eq!(t, SimTime::from_secs(5));
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), 0u32);
        let mut fired = Vec::new();
        q.run(|q, t, depth| {
            fired.push((t, depth));
            if depth < 3 {
                q.schedule_after(SimTime::from_secs(1), depth + 1);
            }
        });
        assert_eq!(fired.len(), 4);
        assert_eq!(fired.last().unwrap().0, SimTime::from_secs(4));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut q = EventQueue::new();
        for s in 1..=10u64 {
            q.schedule_at(SimTime::from_secs(s), s);
        }
        let mut seen = Vec::new();
        let n = q.run_until(SimTime::from_secs(4), |_, _, e| seen.push(e));
        assert_eq!(n, 4);
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.now(), SimTime::ZERO);
    }
}
