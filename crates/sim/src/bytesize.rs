//! Byte-size arithmetic used for every capacity, file size, and transfer amount.
//!
//! The paper's experiments juggle quantities from 8 KB CFS blocks up to a 439.1 TB
//! aggregate system capacity.  [`ByteSize`] keeps those quantities in a dedicated
//! newtype with saturating arithmetic (a simulation must degrade gracefully rather
//! than overflow) and human-readable formatting matching the units used in the
//! paper (KB/MB/GB/TB as powers of two, the convention of the original evaluation).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A quantity of bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ByteSize(pub u64);

/// One kibibyte (the paper writes "KB" but uses powers of two throughout).
pub const KB: u64 = 1024;
/// One mebibyte.
pub const MB: u64 = 1024 * KB;
/// One gibibyte.
pub const GB: u64 = 1024 * MB;
/// One tebibyte.
pub const TB: u64 = 1024 * GB;

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from raw bytes.
    #[inline]
    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// Construct from kibibytes.
    #[inline]
    pub const fn kb(n: u64) -> Self {
        ByteSize(n * KB)
    }

    /// Construct from mebibytes.
    #[inline]
    pub const fn mb(n: u64) -> Self {
        ByteSize(n * MB)
    }

    /// Construct from gibibytes.
    #[inline]
    pub const fn gb(n: u64) -> Self {
        ByteSize(n * GB)
    }

    /// Construct from tebibytes.
    #[inline]
    pub const fn tb(n: u64) -> Self {
        ByteSize(n * TB)
    }

    /// Construct from a fractional number of mebibytes (clamped at zero).
    pub fn mb_f64(mb: f64) -> Self {
        ByteSize((mb.max(0.0) * MB as f64).round() as u64)
    }

    /// Construct from a fractional number of gibibytes (clamped at zero).
    pub fn gb_f64(gb: f64) -> Self {
        ByteSize((gb.max(0.0) * GB as f64).round() as u64)
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Value in mebibytes as a float.
    #[inline]
    pub fn as_mb(self) -> f64 {
        self.0 as f64 / MB as f64
    }

    /// Value in gibibytes as a float.
    #[inline]
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / GB as f64
    }

    /// Value in tebibytes as a float.
    #[inline]
    pub fn as_tb(self) -> f64 {
        self.0 as f64 / TB as f64
    }

    /// True if this is exactly zero bytes.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, rhs: ByteSize) -> Option<ByteSize> {
        self.0.checked_sub(rhs.0).map(ByteSize)
    }

    /// The smaller of two sizes.
    #[inline]
    pub fn min(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.min(rhs.0))
    }

    /// The larger of two sizes.
    #[inline]
    pub fn max(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.max(rhs.0))
    }

    /// Multiply by a non-negative float (used for "report only a fraction of free
    /// space per `getCapacity`" policies), rounding down, saturating.
    pub fn scale(self, factor: f64) -> ByteSize {
        debug_assert!(factor >= 0.0);
        let scaled = (self.0 as f64 * factor).floor();
        if scaled >= u64::MAX as f64 {
            ByteSize(u64::MAX)
        } else {
            ByteSize(scaled as u64)
        }
    }

    /// Integer division rounding up: how many `unit`-sized pieces cover `self`.
    pub fn div_ceil(self, unit: ByteSize) -> u64 {
        assert!(!unit.is_zero(), "division by zero-sized unit");
        self.0.div_ceil(unit.0)
    }

    /// Fraction `self / total` in `[0, 1]` (0 when `total` is zero).
    pub fn fraction_of(self, total: ByteSize) -> f64 {
        if total.is_zero() {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= TB {
            write!(f, "{:.2} TB", self.as_tb())
        } else if b >= GB {
            write!(f, "{:.2} GB", self.as_gb())
        } else if b >= MB {
            write!(f, "{:.2} MB", self.as_mb())
        } else if b >= KB {
            write!(f, "{:.2} KB", b as f64 / KB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |acc, x| acc + x)
    }
}

impl From<u64> for ByteSize {
    fn from(v: u64) -> Self {
        ByteSize(v)
    }
}

impl From<ByteSize> for u64 {
    fn from(v: ByteSize) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_units() {
        assert_eq!(ByteSize::kb(1).as_u64(), 1024);
        assert_eq!(ByteSize::mb(1).as_u64(), 1024 * 1024);
        assert_eq!(ByteSize::gb(2).as_u64(), 2 * GB);
        assert_eq!(ByteSize::tb(1).as_u64(), TB);
        assert_eq!(ByteSize::mb_f64(1.5).as_u64(), 3 * MB / 2);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(format!("{}", ByteSize::bytes(512)), "512 B");
        assert_eq!(format!("{}", ByteSize::kb(2)), "2.00 KB");
        assert_eq!(format!("{}", ByteSize::mb(243)), "243.00 MB");
        assert_eq!(format!("{}", ByteSize::gb(45)), "45.00 GB");
        assert_eq!(format!("{}", ByteSize::tb(278)), "278.00 TB");
    }

    #[test]
    fn arithmetic_saturates() {
        let max = ByteSize(u64::MAX);
        assert_eq!(max + ByteSize::gb(1), max);
        assert_eq!(ByteSize::gb(1) - ByteSize::gb(2), ByteSize::ZERO);
        assert_eq!(max * 2, max);
    }

    #[test]
    fn checked_sub_behaviour() {
        assert_eq!(
            ByteSize::gb(2).checked_sub(ByteSize::gb(1)),
            Some(ByteSize::gb(1))
        );
        assert_eq!(ByteSize::gb(1).checked_sub(ByteSize::gb(2)), None);
    }

    #[test]
    fn scale_and_fraction() {
        assert_eq!(ByteSize::gb(10).scale(0.5), ByteSize::gb(5));
        assert_eq!(ByteSize::gb(10).scale(0.0), ByteSize::ZERO);
        let f = ByteSize::gb(1).fraction_of(ByteSize::gb(4));
        assert!((f - 0.25).abs() < 1e-12);
        assert_eq!(ByteSize::gb(1).fraction_of(ByteSize::ZERO), 0.0);
    }

    #[test]
    fn div_ceil_counts_pieces() {
        assert_eq!(ByteSize::mb(9).div_ceil(ByteSize::mb(4)), 3);
        assert_eq!(ByteSize::mb(8).div_ceil(ByteSize::mb(4)), 2);
        assert_eq!(ByteSize::ZERO.div_ceil(ByteSize::mb(4)), 0);
    }

    #[test]
    #[should_panic(expected = "zero-sized unit")]
    fn div_ceil_zero_unit_panics() {
        let _ = ByteSize::mb(1).div_ceil(ByteSize::ZERO);
    }

    #[test]
    fn sum_of_sizes() {
        let total: ByteSize = vec![ByteSize::mb(1), ByteSize::mb(2), ByteSize::mb(3)]
            .into_iter()
            .sum();
        assert_eq!(total, ByteSize::mb(6));
    }

    #[test]
    fn ordering() {
        assert!(ByteSize::mb(50) < ByteSize::mb(243));
        assert_eq!(ByteSize::mb(1).max(ByteSize::kb(1)), ByteSize::mb(1));
        assert_eq!(ByteSize::mb(1).min(ByteSize::kb(1)), ByteSize::kb(1));
    }

    #[test]
    fn serde_round_trip() {
        let v = ByteSize::gb(45);
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, format!("{}", 45 * GB));
        let back: ByteSize = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
