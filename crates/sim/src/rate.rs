//! Bandwidth rate limiting for the maintenance and repair simulations.
//!
//! The repair subsystem charges every regeneration transfer against per-node
//! upload/download budgets, so concurrent repairs queue and interfere instead
//! of completing instantaneously.  [`RateLimiter`] models one such budget as a
//! single-server FIFO pipe: a reservation of `b` bytes at time `t` starts when
//! the pipe drains (`max(t, busy_until)`) and occupies it for `b / rate`
//! seconds.  The same abstraction backs the regeneration backlog of
//! `RegenerationSim` (the Table 3 pipeline).

use crate::bytesize::ByteSize;
use crate::event::SimTime;

/// The time window a reservation occupies on a [`RateLimiter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the transfer starts (the pipe's previous drain time).
    pub start: SimTime,
    /// When the transfer completes.
    pub done: SimTime,
}

/// A FIFO bandwidth budget with a virtual-time drain front.
#[derive(Debug, Clone, Copy)]
pub struct RateLimiter {
    bytes_per_sec: f64,
    busy_until: SimTime,
}

impl RateLimiter {
    /// Create a limiter draining `rate` bytes per second.
    ///
    /// Panics if the rate is zero (a pipe that never drains deadlocks every
    /// simulation built on it); use [`RateLimiter::unlimited`] for the
    /// infinite-bandwidth case.
    pub fn new(rate: ByteSize) -> Self {
        assert!(!rate.is_zero(), "rate limiter needs a positive rate");
        RateLimiter {
            bytes_per_sec: rate.as_u64() as f64,
            busy_until: SimTime::ZERO,
        }
    }

    /// A limiter with infinite bandwidth: every transfer is instantaneous.
    pub fn unlimited() -> Self {
        RateLimiter {
            bytes_per_sec: f64::INFINITY,
            busy_until: SimTime::ZERO,
        }
    }

    /// True if this limiter never delays a transfer.
    pub fn is_unlimited(&self) -> bool {
        self.bytes_per_sec.is_infinite()
    }

    /// The time at which the currently reserved work drains.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// How long a transfer of `bytes` occupies the pipe (independent of queueing).
    pub fn transfer_time(&self, bytes: ByteSize) -> SimTime {
        if self.is_unlimited() {
            SimTime::ZERO
        } else {
            SimTime::from_secs_f64(bytes.as_u64() as f64 / self.bytes_per_sec)
        }
    }

    /// Pending work as a duration: how long after `now` the pipe stays busy.
    pub fn backlog(&self, now: SimTime) -> SimTime {
        self.busy_until.saturating_sub(now)
    }

    /// True if nothing is queued at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Reserve the pipe for `bytes` starting no earlier than `now`; returns the
    /// occupied window and advances the drain front to its end.
    pub fn reserve(&mut self, bytes: ByteSize, now: SimTime) -> Reservation {
        let start = self.busy_until.max(now);
        let done = start + self.transfer_time(bytes);
        self.busy_until = done;
        Reservation { start, done }
    }

    /// Forget all queued work (e.g. the budget's owner failed).
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_queue_fifo() {
        let mut rl = RateLimiter::new(ByteSize::mb(1));
        let now = SimTime::from_secs(10);
        let first = rl.reserve(ByteSize::mb(2), now);
        assert_eq!(first.start, now);
        assert_eq!(first.done, SimTime::from_secs(12));
        // The second reservation waits for the first to drain.
        let second = rl.reserve(ByteSize::mb(1), now);
        assert_eq!(second.start, SimTime::from_secs(12));
        assert_eq!(second.done, SimTime::from_secs(13));
        assert_eq!(rl.busy_until(), SimTime::from_secs(13));
        assert_eq!(rl.backlog(now), SimTime::from_secs(3));
        assert!(!rl.is_idle(now));
    }

    #[test]
    fn idle_pipe_starts_immediately() {
        let mut rl = RateLimiter::new(ByteSize::kb(512));
        rl.reserve(ByteSize::kb(512), SimTime::ZERO);
        // After the backlog drains, a new reservation starts at `now`.
        let later = SimTime::from_secs(100);
        assert!(rl.is_idle(later));
        let r = rl.reserve(ByteSize::kb(256), later);
        assert_eq!(r.start, later);
        assert_eq!(r.done, later + SimTime::from_millis(500));
    }

    #[test]
    fn unlimited_never_delays() {
        let mut rl = RateLimiter::unlimited();
        assert!(rl.is_unlimited());
        let now = SimTime::from_secs(5);
        let r = rl.reserve(ByteSize::tb(100), now);
        assert_eq!(r.start, now);
        assert_eq!(r.done, now);
        assert_eq!(rl.transfer_time(ByteSize::tb(1)), SimTime::ZERO);
        assert!(rl.is_idle(now));
    }

    #[test]
    fn reset_clears_backlog() {
        let mut rl = RateLimiter::new(ByteSize::mb(1));
        rl.reserve(ByteSize::mb(100), SimTime::ZERO);
        assert!(rl.backlog(SimTime::ZERO) > SimTime::ZERO);
        rl.reset();
        assert_eq!(rl.backlog(SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn zero_rate_is_rejected() {
        let _ = RateLimiter::new(ByteSize::ZERO);
    }
}
