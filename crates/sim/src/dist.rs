//! Statistical distributions used to synthesise the paper's workloads.
//!
//! The evaluation relies on three distributions:
//!
//! * node contributed capacity ~ *Normal(45 GB, σ = 10 GB)* (Section 6.1),
//! * file sizes ~ a large-file trace with mean 243 MB, σ = 55 MB, truncated below
//!   at 50 MB (Section 6.1) — modelled as a truncated normal,
//! * Condor-pool contributed capacity ~ *Uniform(2 GB, 15 GB)* (Section 6.4).
//!
//! Zipf and exponential samplers are additionally provided for access-popularity
//! and inter-arrival modelling in the extension experiments.

use crate::rng::DetRng;

/// A sampling distribution over `f64`.
pub trait Distribution {
    /// Draw one sample.
    fn sample(&self, rng: &mut DetRng) -> f64;

    /// The distribution's mean (exact where known, otherwise the target mean).
    fn mean(&self) -> f64;
}

/// Normal distribution parameterised by mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean of the distribution.
    pub mean: f64,
    /// Standard deviation (must be non-negative).
    pub std_dev: f64,
}

impl Normal {
    /// Create a normal distribution. Panics if `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite(),
            "std_dev must be finite and >= 0"
        );
        assert!(mean.is_finite(), "mean must be finite");
        Normal { mean, std_dev }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.mean + self.std_dev * rng.standard_normal()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Normal distribution truncated to `[lo, hi]` by resampling.
///
/// Used for the file-size trace (minimum 50 MB — the paper filters smaller files
/// out of its collected trace) and for node capacities (which cannot be negative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    inner: Normal,
    lo: f64,
    hi: f64,
}

impl TruncatedNormal {
    /// Create a truncated normal over `[lo, hi]`.
    ///
    /// Panics if the interval is empty or if it lies implausibly far (> 8 σ) from
    /// the mean, which would make rejection sampling pathological.
    pub fn new(mean: f64, std_dev: f64, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "truncation interval must be non-empty");
        let inner = Normal::new(mean, std_dev);
        if std_dev > 0.0 {
            let dist = if mean < lo {
                (lo - mean) / std_dev
            } else if mean > hi {
                (mean - hi) / std_dev
            } else {
                0.0
            };
            assert!(
                dist <= 8.0,
                "truncation interval is more than 8 sigma away from the mean"
            );
        } else {
            assert!(
                (lo..=hi).contains(&mean),
                "degenerate (sigma=0) distribution must have its mean inside the interval"
            );
        }
        TruncatedNormal { inner, lo, hi }
    }

    /// Lower truncation bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper truncation bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Distribution for TruncatedNormal {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        loop {
            let x = self.inner.sample(rng);
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
    }
    fn mean(&self) -> f64 {
        self.inner.mean
    }
}

/// Continuous uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Create a uniform distribution over `[lo, hi)`. Panics if the interval is empty.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "uniform interval must be non-empty");
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Exponential distribution with the given rate (events per unit time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create an exponential distribution. Panics if the rate is not positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Exponential { rate }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        // Inverse CDF; guard against ln(0).
        let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
        -u.ln() / self.rate
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Sampling uses the precomputed cumulative distribution (O(log n) per draw),
/// which is fine for the n ≤ 10⁶ populations used in the experiments.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    mean: f64,
}

impl Zipf {
    /// Create a Zipf distribution over `1..=n` with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let mut weights = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            let w = 1.0 / (k as f64).powf(s);
            total += w;
            weights.push(total);
        }
        let mut mean = 0.0;
        let mut prev = 0.0;
        for (k, cum) in weights.iter().enumerate() {
            mean += (k as f64 + 1.0) * (cum - prev) / total;
            prev = *cum;
        }
        let cdf = weights.iter().map(|w| w / total).collect();
        Zipf { cdf, mean }
    }

    /// Draw a rank in `1..=n`.
    pub fn sample_rank(&self, rng: &mut DetRng) -> usize {
        let u = rng.next_f64();
        // lint:allow(panic) -- cdf entries are finite probabilities, never NaN
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

impl Distribution for Zipf {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.sample_rank(rng) as f64
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats<D: Distribution>(d: &D, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = DetRng::new(seed);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        (mean, var.max(0.0).sqrt())
    }

    #[test]
    fn normal_matches_parameters() {
        let d = Normal::new(45.0, 10.0);
        let (mean, sd) = sample_stats(&d, 100_000, 1);
        assert!((mean - 45.0).abs() < 0.2, "mean {mean}");
        assert!((sd - 10.0).abs() < 0.2, "sd {sd}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        // The paper's file-size distribution: mean 243 MB, sd 55 MB, min 50 MB.
        let d = TruncatedNormal::new(243.0, 55.0, 50.0, 4096.0);
        let mut rng = DetRng::new(2);
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            assert!((50.0..=4096.0).contains(&x));
        }
        let (mean, sd) = sample_stats(&d, 100_000, 3);
        assert!((mean - 243.0).abs() < 2.0, "mean {mean}");
        assert!((sd - 55.0).abs() < 2.0, "sd {sd}");
    }

    #[test]
    #[should_panic(expected = "8 sigma")]
    fn truncated_normal_rejects_unreachable_interval() {
        let _ = TruncatedNormal::new(0.0, 1.0, 100.0, 200.0);
    }

    #[test]
    fn uniform_matches_range() {
        let d = Uniform::new(2.0, 15.0);
        let mut rng = DetRng::new(4);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..15.0).contains(&x));
        }
        let (mean, _) = sample_stats(&d, 100_000, 5);
        assert!((mean - 8.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(0.25);
        let (mean, _) = sample_stats(&d, 200_000, 6);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn zipf_rank_one_is_most_popular() {
        let d = Zipf::new(100, 1.0);
        let mut rng = DetRng::new(7);
        let mut counts = vec![0usize; 101];
        for _ in 0..50_000 {
            let r = d.sample_rank(&mut rng);
            assert!((1..=100).contains(&r));
            counts[r] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn distribution_means_are_reported() {
        assert_eq!(Normal::new(5.0, 1.0).mean(), 5.0);
        assert_eq!(Uniform::new(0.0, 10.0).mean(), 5.0);
        assert_eq!(Exponential::new(0.5).mean(), 2.0);
        assert!(Zipf::new(10, 1.0).mean() > 1.0);
    }
}
