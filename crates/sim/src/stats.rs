//! Statistics and reporting helpers.
//!
//! Every experiment driver reports either a *figure* (an x/y curve per scheme,
//! e.g. "% failed stores vs. files inserted") or a *table* (rows of labelled
//! values, e.g. the erasure-code overhead table).  This module provides:
//!
//! * [`OnlineStats`] — single-pass mean / standard deviation (Welford), used for
//!   the chunk-count/size statistics of Table 1 and the regeneration statistics
//!   of Table 3;
//! * [`Histogram`] — fixed-bin counting for distribution inspection;
//! * [`Series`] and [`Figure`] — named x/y curves, with CSV/gnuplot-friendly dumps;
//! * [`TableBuilder`] — aligned plain-text tables matching the paper's layout.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Single-pass mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (n−1) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

/// Fixed-width-bin histogram over `[lo, hi)`; out-of-range samples are clamped
/// into the first/last bin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram must have at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((x - self.lo) / width).floor();
        let idx = idx.clamp(0.0, (self.bins.len() - 1) as f64) as usize;
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate quantile (0 ≤ q ≤ 1) from the binned data.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return self.lo;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut cum = 0;
        for (i, c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self.lo + width * (i as f64 + 0.5);
            }
        }
        self.hi
    }
}

/// A single named x/y curve, one per scheme per figure.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Series {
    /// Curve label (e.g. "PAST", "CFS", "Our System").
    pub name: String,
    /// `(x, y)` points in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create an empty series with a label.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Final y value, `None` when empty.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|p| p.1)
    }

    /// Maximum y value, `None` when empty.
    pub fn max_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.1)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.max(y))))
    }

    /// Linear interpolation of y at `x`; clamps outside the observed x range.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        if x <= self.points[0].0 {
            return Some(self.points[0].1);
        }
        // lint:allow(slice-index) -- points verified non-empty by the is_empty check above
        if x >= self.points[self.points.len() - 1].0 {
            return Some(self.points[self.points.len() - 1].1); // lint:allow(slice-index) -- points verified non-empty by the is_empty check above
        }
        for w in self.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if (x0..=x1).contains(&x) {
                if (x1 - x0).abs() < f64::EPSILON {
                    return Some(y0);
                }
                return Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0));
            }
        }
        None
    }
}

/// A figure: a titled collection of series with axis labels.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Figure {
    /// Figure title, e.g. "Figure 7: failed file stores".
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Create an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Look up a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Render the figure as a CSV block: header `x,<name>,...` then one row per
    /// x value of the first series (other series are linearly interpolated).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "# {}\n# x = {}, y = {}\n",
            self.title, self.x_label, self.y_label
        );
        let _ = write!(out, "x");
        for s in &self.series {
            let _ = write!(out, ",{}", s.name);
        }
        out.push('\n');
        if let Some(first) = self.series.first() {
            for &(x, _) in &first.points {
                let _ = write!(out, "{x}");
                for s in &self.series {
                    let y = s.interpolate(x).unwrap_or(f64::NAN);
                    let _ = write!(out, ",{y:.4}");
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Builder for aligned plain-text tables (the `repro` binary's output format).
#[derive(Debug, Clone, Default)]
pub struct TableBuilder {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TableBuilder {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; missing cells are rendered empty, extra cells are kept.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:<w$}  ");
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
            let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Percentage helper: `part / whole * 100`, 0 when the whole is zero.
pub fn percent(part: f64, whole: f64) -> f64 {
    if whole == 0.0 {
        0.0
    } else {
        100.0 * part / whole
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn online_stats_empty_and_single() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..400] {
            a.push(x);
        }
        for &x in &data[400..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins_and_quantile() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.push(i as f64);
        }
        assert_eq!(h.total(), 100);
        assert!(h.bins().iter().all(|&c| c == 10));
        let median = h.quantile(0.5);
        assert!((median - 45.0).abs() <= 10.0);
        // Out-of-range values clamp into edge bins.
        h.push(-5.0);
        h.push(500.0);
        assert_eq!(h.total(), 102);
        assert_eq!(h.bins()[0], 11);
        assert_eq!(h.bins()[9], 11);
    }

    #[test]
    fn series_interpolation() {
        let mut s = Series::new("test");
        s.push(0.0, 0.0);
        s.push(10.0, 100.0);
        assert_eq!(s.interpolate(5.0), Some(50.0));
        assert_eq!(s.interpolate(-1.0), Some(0.0));
        assert_eq!(s.interpolate(20.0), Some(100.0));
        assert_eq!(s.last_y(), Some(100.0));
        assert_eq!(s.max_y(), Some(100.0));
        assert_eq!(Series::new("empty").interpolate(1.0), None);
    }

    #[test]
    fn figure_csv_contains_all_series() {
        let mut fig = Figure::new("Figure X", "files", "% failed");
        let mut a = Series::new("PAST");
        a.push(0.0, 0.0);
        a.push(1.0, 36.0);
        let mut b = Series::new("Ours");
        b.push(0.0, 0.0);
        b.push(1.0, 5.2);
        fig.push_series(a);
        fig.push_series(b);
        let csv = fig.to_csv();
        assert!(csv.contains("PAST"));
        assert!(csv.contains("Ours"));
        assert!(csv.contains("36.0000"));
        assert!(fig.series_named("PAST").is_some());
        assert!(fig.series_named("CFS").is_none());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TableBuilder::new("Table 1", &["Scheme", "Chunks", "Size"]);
        t.row(&["CFS".into(), "61.25".into(), "4 MB".into()]);
        t.row(&["Our System".into(), "3.72".into(), "81.28 MB".into()]);
        let out = t.render();
        assert!(out.contains("Table 1"));
        assert!(out.contains("Our System"));
        assert!(out.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn percent_helper() {
        assert_eq!(percent(1.0, 4.0), 25.0);
        assert_eq!(percent(1.0, 0.0), 0.0);
    }
}
