//! Deterministic, forkable random-number generation.
//!
//! Every experiment in the workspace must be exactly reproducible from a single
//! seed: the paper averages ten simulation runs per data point, which we reproduce
//! by running the same experiment with seeds `base..base + 10`.  [`DetRng`] is a
//! small xoshiro256++ generator seeded through SplitMix64.  It deliberately avoids
//! depending on the `rand` crate's evolving API surface for its core state so that
//! the bit streams produced by a given seed never change underneath an experiment;
//! a [`rand::RngCore`] adapter is provided for interoperability (e.g. with
//! `proptest` strategies or `rand`-based shuffles).

use std::fmt;

/// SplitMix64 step, used for seeding and for cheap stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ random number generator.
///
/// * Seedable from a single `u64`.
/// * [`DetRng::fork`] derives an independent child stream from a textual label,
///   so different components (trace generation, node-id assignment, churn
///   scheduling, …) never perturb each other's random sequences even when the
///   order of calls between components changes.
#[derive(Clone)]
pub struct DetRng {
    s: [u64; 4],
    seed: u64,
}

impl fmt::Debug for DetRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DetRng(seed={})", self.seed)
    }
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s, seed }
    }

    /// The seed this generator (or its fork chain root) was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent generator for a named sub-component.
    ///
    /// The child stream depends only on the parent's *seed* and the label, not on
    /// how many numbers the parent has already produced, which keeps component
    /// streams stable as code evolves.
    pub fn fork(&self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        DetRng::new(self.seed ^ h.rotate_left(17))
    }

    /// Derive an independent generator for a numbered sub-stream (e.g. a run index).
    pub fn fork_indexed(&self, label: &str, index: u64) -> DetRng {
        let mut child = self.fork(label);
        child.seed = child
            .seed
            .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut sm = child.seed;
        child.s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        child
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be non-zero");
        // Lemire's multiply-shift rejection method (unbiased).
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        if lo == hi {
            return lo;
        }
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Choose a uniformly random element of a slice, `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Sample `k` distinct indices from `0..n` (reservoir-free partial shuffle);
    /// returns fewer if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Standard normal variate via the Marsaglia polar method.
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

/// Adapter implementing the `rand` crate's infallible [`rand::Rng`] trait (via
/// `TryRng<Error = Infallible>`) so a [`DetRng`] can drive `rand`-based APIs.
pub struct RandAdapter<'a>(pub &'a mut DetRng);

impl rand::rand_core::TryRng for RandAdapter<'_> {
    type Error = std::convert::Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        Ok(self.0.next_u32())
    }
    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(self.0.next_u64())
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error> {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.0.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.0.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn fork_is_stable_under_parent_consumption() {
        let mut parent = DetRng::new(7);
        let child_before = parent.fork("trace");
        let _ = parent.next_u64();
        let _ = parent.next_u64();
        let child_after = parent.fork("trace");
        let mut a = child_before;
        let mut b = child_after;
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let parent = DetRng::new(7);
        let mut a = parent.fork("alpha");
        let mut b = parent.fork("beta");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_indexed_produces_distinct_streams() {
        let parent = DetRng::new(9);
        let mut a = parent.fork_indexed("run", 0);
        let mut b = parent.fork_indexed("run", 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DetRng::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_bounded_and_covers() {
        let mut rng = DetRng::new(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = rng.next_below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues should appear");
    }

    #[test]
    fn range_u64_inclusive_bounds() {
        let mut rng = DetRng::new(13);
        for _ in 0..1000 {
            let x = rng.range_u64(5, 9);
            assert!((5..=9).contains(&x));
        }
        assert_eq!(rng.range_u64(4, 4), 4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "100 elements should not stay sorted"
        );
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = DetRng::new(19);
        let sample = rng.sample_indices(50, 20);
        assert_eq!(sample.len(), 20);
        let mut unique = sample.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 20);
        assert!(sample.iter().all(|&i| i < 50));
        assert_eq!(rng.sample_indices(5, 100).len(), 5);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = DetRng::new(23);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = rng.standard_normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.03, "variance {var} too far from 1");
    }

    #[test]
    fn rand_adapter_fill_bytes() {
        use rand::Rng;
        let mut rng = DetRng::new(29);
        let mut buf = [0u8; 37];
        RandAdapter(&mut rng).fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(31);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
