//! Failure-domain-aware block placement for contributory storage.
//!
//! The paper's desktop-grid setting is exactly the environment where nodes do
//! *not* fail independently: a lab powers down, a switch dies, a building
//! loses power.  Uniform DHT placement happily concentrates several blocks of
//! one chunk in the same lab — and the first whole-lab outage then costs more
//! blocks than the erasure code tolerates.  This crate provides the placement
//! subsystem that prevents that:
//!
//! * [`Topology`] — the site → rack/lab → node hierarchy with per-node domain
//!   lookup, built synthetically from a seed or derived from trace
//!   capacity/session data — plus [`DomainView`], the cheap shared membership
//!   snapshot consumers like the outage-aware failure detector query without
//!   owning the topology;
//! * [`PlacementStrategy`] — the pluggable target-selection policy, with
//!   [`OverlayRandom`] (the paper's oblivious DHT behaviour, extracted),
//!   [`DomainSpread`] (no chunk keeps more than its tolerable losses in any
//!   one domain, with a capacity-aware fallback), and [`CapacityWeighted`]
//!   implementations;
//! * [`SpreadReport`] — accounting of the diversity a deployment actually
//!   achieved (worst per-domain concentration, cap violations);
//! * [`ClusterView`] / [`ProbeView`] — the narrow cluster interface the
//!   strategies consult, implemented by `peerstripe_core::StorageCluster`.
//!
//! `peerstripe-core` routes the client's chunk placement and recovery
//! re-placement through these strategies; `peerstripe-repair` routes the
//! maintenance engine's regeneration targets through them and draws
//! correlated whole-domain outages over the same [`Topology`]; the
//! `repro placement-sweep` experiment compares the strategies under grouped
//! churn.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;
pub mod strategy;
pub mod topology;

pub use report::SpreadReport;
pub use strategy::{
    CapacityWeighted, ClusterView, DomainSpread, OverlayRandom, PlacementStrategy, ProbeView,
    RepairRequest, StrategyKind,
};
pub use topology::{Domain, DomainId, DomainView, Topology};
