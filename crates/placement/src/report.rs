//! Spread accounting: how diverse did placement actually come out?
//!
//! [`SpreadReport`] aggregates, over every chunk of a deployment, how its
//! blocks distribute across failure domains: the worst per-domain
//! concentration, the number of chunks violating the per-domain cap (the
//! chunks a single-domain outage can make unrecoverable), and the mean number
//! of distinct domains per chunk.  The `repro placement-sweep` experiment
//! prints one per strategy, which is the causal link between placement policy
//! and the durability numbers the sweep reports.

use crate::topology::DomainId;
use peerstripe_sim::OnlineStats;
use std::collections::BTreeMap;

/// Achieved placement diversity, accumulated chunk by chunk.
#[derive(Debug, Clone)]
pub struct SpreadReport {
    /// The per-domain block cap the deployment was asked to respect.
    pub domain_cap: usize,
    /// Chunks accounted.
    pub chunks: u64,
    /// Blocks accounted.
    pub blocks: u64,
    /// Blocks on nodes outside the topology (no domain to attribute).
    pub undomained_blocks: u64,
    /// The worst per-domain concentration seen in any single chunk.
    pub max_in_one_domain: usize,
    /// Chunks keeping more than `domain_cap` blocks in some single domain —
    /// each one is a chunk a whole-domain outage can take below its decode
    /// threshold.
    pub cap_violations: u64,
    /// Distribution of distinct domains used per chunk.
    pub distinct_domains: OnlineStats,
}

impl SpreadReport {
    /// Start an empty report for a deployment with the given per-domain cap.
    pub fn new(domain_cap: usize) -> Self {
        SpreadReport {
            domain_cap,
            chunks: 0,
            blocks: 0,
            undomained_blocks: 0,
            max_in_one_domain: 0,
            cap_violations: 0,
            distinct_domains: OnlineStats::new(),
        }
    }

    /// Account one chunk's blocks by the domain each landed in (`None` for
    /// blocks on nodes outside the topology).
    pub fn record_chunk<I>(&mut self, domains: I)
    where
        I: IntoIterator<Item = Option<DomainId>>,
    {
        let mut counts: BTreeMap<DomainId, usize> = BTreeMap::new();
        let mut blocks = 0u64;
        for d in domains {
            blocks += 1;
            match d {
                Some(d) => *counts.entry(d).or_default() += 1,
                None => self.undomained_blocks += 1,
            }
        }
        if blocks == 0 {
            return;
        }
        self.chunks += 1;
        self.blocks += blocks;
        let worst = counts.values().copied().max().unwrap_or(0);
        self.max_in_one_domain = self.max_in_one_domain.max(worst);
        if worst > self.domain_cap {
            self.cap_violations += 1;
        }
        self.distinct_domains.push(counts.len() as f64);
    }

    /// Mean number of distinct domains a chunk's blocks landed in.
    pub fn mean_distinct_domains(&self) -> f64 {
        if self.distinct_domains.count() == 0 {
            0.0
        } else {
            self.distinct_domains.mean()
        }
    }

    /// Fraction of chunks violating the cap, in `[0, 1]`.
    pub fn violation_fraction(&self) -> f64 {
        if self.chunks == 0 {
            0.0
        } else {
            self.cap_violations as f64 / self.chunks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_concentration_and_violations() {
        let mut report = SpreadReport::new(2);
        // Chunk A: 3 blocks in domain 0 (violation), 1 in domain 1.
        report.record_chunk([Some(0), Some(0), Some(0), Some(1)]);
        // Chunk B: spread 2-2 (at the cap, no violation).
        report.record_chunk([Some(0), Some(0), Some(1), Some(1)]);
        // Chunk C: one undomained block.
        report.record_chunk([Some(2), None]);
        assert_eq!(report.chunks, 3);
        assert_eq!(report.blocks, 10);
        assert_eq!(report.max_in_one_domain, 3);
        assert_eq!(report.cap_violations, 1);
        assert_eq!(report.undomained_blocks, 1);
        assert!((report.violation_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((report.mean_distinct_domains() - (2.0 + 2.0 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_chunks_are_ignored() {
        let mut report = SpreadReport::new(1);
        report.record_chunk(std::iter::empty());
        assert_eq!(report.chunks, 0);
        assert_eq!(report.mean_distinct_domains(), 0.0);
        assert_eq!(report.violation_fraction(), 0.0);
    }
}
