//! The failure-domain topology: site → rack/lab → node.
//!
//! Desktop-grid nodes do not fail independently — a lab powers down overnight,
//! a switch dies, a building loses power over a weekend.  [`Topology`] models
//! the physical hierarchy behind those correlated failures: every node belongs
//! to exactly one *domain* (a rack, lab, or office), and domains are grouped
//! into *sites* (buildings, campuses).  Placement strategies consult the
//! topology to keep a chunk's blocks spread over enough domains that losing
//! any single one never costs more blocks than the coding tolerates, and the
//! grouped-churn process in `peerstripe-repair` uses the same structure to
//! draw whole-domain outage events.
//!
//! Topologies are built synthetically from a seed ([`Topology::synthetic`],
//! [`Topology::uniform_groups`]) or derived from trace data: contributed
//! capacities cluster machines bought in the same procurement round into the
//! same lab ([`Topology::from_capacities`]), and session/downtime durations
//! separate office machines, laptops and always-on lab nodes
//! ([`Topology::from_sessions`]).

use peerstripe_overlay::NodeRef;
use peerstripe_sim::{ByteSize, DetRng};
use peerstripe_trace::SessionTrace;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Index of a failure domain within a [`Topology`].
pub type DomainId = u32;

/// A cheap, shareable snapshot of domain membership: node → domain lookup and
/// per-domain member lists behind one [`Arc`].
///
/// The failure detector (and any other subsystem that only needs to answer
/// "which lab is this node in, and who else is in it?") holds a `DomainView`
/// instead of owning a [`Topology`]: cloning is a refcount bump, the placement
/// layer keeps sole ownership of the full hierarchy (labels, sites, builders),
/// and both sides observe the same membership without copying it per
/// consumer.  Obtain one with [`Topology::domain_view`], or use
/// [`DomainView::unaffiliated`] where no topology is in play (every lookup
/// then answers `None`, which consumers must treat as "no correlation
/// information").
#[derive(Debug, Clone)]
pub struct DomainView {
    inner: Arc<DomainViewInner>,
}

#[derive(Debug)]
struct DomainViewInner {
    domain_of: Vec<Option<DomainId>>,
    members: Vec<Vec<NodeRef>>,
}

impl DomainView {
    /// A view with no domains at all: every node is unaffiliated.
    pub fn unaffiliated() -> Self {
        DomainView {
            inner: Arc::new(DomainViewInner {
                domain_of: Vec::new(),
                members: Vec::new(),
            }),
        }
    }

    /// The failure domain of a node, or `None` for nodes outside the hierarchy.
    pub fn domain_of(&self, node: NodeRef) -> Option<DomainId> {
        self.inner.domain_of.get(node).copied().flatten()
    }

    /// A domain's member nodes.
    pub fn members(&self, domain: DomainId) -> &[NodeRef] {
        &self.inner.members[domain as usize]
    }

    /// Number of members in a domain.
    pub fn domain_size(&self, domain: DomainId) -> usize {
        self.inner.members[domain as usize].len()
    }

    /// Number of domains in the view.
    pub fn domain_count(&self) -> usize {
        self.inner.members.len()
    }

    /// True if the view carries no domain information at all.
    pub fn is_unaffiliated(&self) -> bool {
        self.inner.members.is_empty()
    }
}

/// One failure domain: a rack, lab, or office that fails as a unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Domain {
    /// Human-readable label, e.g. `site1/lab3`.
    pub label: String,
    /// The site (building, campus) the domain belongs to.
    pub site: u32,
    /// The member nodes.
    pub members: Vec<NodeRef>,
}

/// The site → domain → node hierarchy with per-node domain lookup.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    domains: Vec<Domain>,
    /// Domain of every node, indexed by [`NodeRef`]; `None` for nodes outside
    /// the modelled hierarchy (late joiners, untracked contributors).
    domain_of: Vec<Option<DomainId>>,
    sites: u32,
}

impl Topology {
    /// Build a topology from explicit domain membership lists.  Panics if a
    /// node appears in two domains.
    pub fn from_domains(domains: Vec<Domain>) -> Self {
        let nodes = domains
            .iter()
            .flat_map(|d| d.members.iter())
            .max()
            .map(|&n| n + 1)
            .unwrap_or(0);
        let mut domain_of = vec![None; nodes];
        let mut sites = 0;
        for (i, domain) in domains.iter().enumerate() {
            sites = sites.max(domain.site + 1);
            for &node in &domain.members {
                assert!(
                    domain_of[node].is_none(),
                    "node {node} assigned to two domains"
                );
                domain_of[node] = Some(i as DomainId);
            }
        }
        Topology {
            domains,
            domain_of,
            sites,
        }
    }

    /// A single-site topology of consecutive groups of `group_size` nodes:
    /// nodes `0..group_size` form domain 0, and so on.  The simplest grouped
    /// model — "every switch serves `group_size` desks" — and the one the
    /// grouped-churn sweeps use (node refs are uncorrelated with overlay ids,
    /// so sequential grouping is as random as the DHT sees).
    pub fn uniform_groups(nodes: usize, group_size: usize) -> Self {
        assert!(group_size > 0, "group size must be positive");
        let domains = (0..nodes)
            .step_by(group_size)
            .enumerate()
            .map(|(g, start)| Domain {
                label: format!("site0/group{g}"),
                site: 0,
                members: (start..(start + group_size).min(nodes)).collect(),
            })
            .collect();
        Topology::from_domains(domains)
    }

    /// A randomised multi-site hierarchy: `sites` buildings, each holding
    /// `domains_per_site` labs, with nodes shuffled over the labs and lab
    /// sizes jittered by the seed (real labs are never the same size).
    pub fn synthetic(nodes: usize, sites: usize, domains_per_site: usize, seed: u64) -> Self {
        assert!(sites > 0 && domains_per_site > 0);
        let mut rng = DetRng::new(seed).fork("topology");
        let mut order: Vec<NodeRef> = (0..nodes).collect();
        rng.shuffle(&mut order);
        let total_domains = sites * domains_per_site;
        // Jittered split points: each domain's share is 0.5x .. 1.5x the mean.
        let mut weights: Vec<f64> = (0..total_domains).map(|_| 0.5 + rng.next_f64()).collect();
        let sum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= sum;
        }
        let mut domains = Vec::with_capacity(total_domains);
        let mut cursor = 0usize;
        for (d, weight) in weights.iter().enumerate() {
            let site = (d / domains_per_site) as u32;
            let take = if d == total_domains - 1 {
                nodes - cursor
            } else {
                ((weight * nodes as f64).round() as usize).min(nodes - cursor)
            };
            domains.push(Domain {
                label: format!("site{site}/lab{}", d % domains_per_site),
                site,
                members: order[cursor..cursor + take].to_vec(),
            });
            cursor += take;
        }
        Topology::from_domains(domains)
    }

    /// Derive domains from contributed capacities: machines bought in the same
    /// procurement round contribute near-identical disks, so sorting nodes by
    /// capacity and cutting the order into `domains` equal quantile slices
    /// approximates the lab structure of a real pool.
    pub fn from_capacities(capacities: &[ByteSize], domains: usize) -> Self {
        assert!(domains > 0, "need at least one domain");
        let mut order: Vec<NodeRef> = (0..capacities.len()).collect();
        order.sort_by_key(|&n| (capacities[n], n));
        let per = capacities.len().div_ceil(domains);
        let domains = order
            .chunks(per.max(1))
            .enumerate()
            .map(|(g, members)| Domain {
                label: format!("site0/capacity{g}"),
                site: 0,
                members: members.to_vec(),
            })
            .collect();
        Topology::from_domains(domains)
    }

    /// Derive domains from a session trace: machine `i`'s observed session and
    /// downtime lengths classify it as an office desktop (workday sessions,
    /// overnight gaps), a laptop (short sessions), or an always-on lab node
    /// (multi-day sessions), and each class is split round-robin into
    /// `domains_per_class` labs.
    pub fn from_sessions(trace: &SessionTrace, domains_per_class: usize) -> Self {
        assert!(domains_per_class > 0);
        let hour = 3_600.0;
        let mut classes: [Vec<NodeRef>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (node, &session) in trace.sessions.iter().enumerate() {
            let class = if session >= 24.0 * hour {
                2 // always-on lab machine
            } else if session <= 4.0 * hour {
                1 // laptop
            } else {
                0 // office desktop
            };
            classes[class].push(node);
        }
        let names = ["office", "laptop", "lab"];
        let mut domains = Vec::new();
        for (site, (class, members)) in names.iter().zip(classes).enumerate() {
            if members.is_empty() {
                continue;
            }
            let mut split: Vec<Vec<NodeRef>> = vec![Vec::new(); domains_per_class];
            for (i, node) in members.into_iter().enumerate() {
                split[i % domains_per_class].push(node); // lint:allow(slice-index) -- i % domains_per_class < domains_per_class == split.len()
            }
            for (g, members) in split.into_iter().enumerate() {
                if members.is_empty() {
                    continue;
                }
                domains.push(Domain {
                    label: format!("{class}/{g}"),
                    site: site as u32,
                    members,
                });
            }
        }
        Topology::from_domains(domains)
    }

    /// Number of failure domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Number of sites.
    pub fn site_count(&self) -> u32 {
        self.sites
    }

    /// Number of nodes the topology covers (the highest member ref + 1).
    pub fn node_count(&self) -> usize {
        self.domain_of.len()
    }

    /// The failure domain of a node, or `None` for nodes outside the hierarchy.
    pub fn domain_of(&self, node: NodeRef) -> Option<DomainId> {
        self.domain_of.get(node).copied().flatten()
    }

    /// A domain's member nodes.
    pub fn members(&self, domain: DomainId) -> &[NodeRef] {
        &self.domains[domain as usize].members
    }

    /// A domain's label.
    pub fn label(&self, domain: DomainId) -> &str {
        &self.domains[domain as usize].label
    }

    /// The site a domain belongs to.
    pub fn site_of(&self, domain: DomainId) -> u32 {
        self.domains[domain as usize].site
    }

    /// Iterate over all domains.
    pub fn domains(&self) -> impl Iterator<Item = (DomainId, &Domain)> {
        self.domains
            .iter()
            .enumerate()
            .map(|(i, d)| (i as DomainId, d))
    }

    /// Snapshot this topology's membership into a shareable [`DomainView`].
    ///
    /// The view copies only the membership structure (not labels or sites), so
    /// subsequent clones of the view are refcount bumps and the detector side
    /// never holds the placement layer's full hierarchy.
    pub fn domain_view(&self) -> DomainView {
        DomainView {
            inner: Arc::new(DomainViewInner {
                domain_of: self.domain_of.clone(),
                members: self.domains.iter().map(|d| d.members.clone()).collect(),
            }),
        }
    }

    /// Size of the largest domain.
    pub fn max_domain_size(&self) -> usize {
        self.domains
            .iter()
            .map(|d| d.members.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_groups_partition_every_node() {
        let topo = Topology::uniform_groups(23, 5);
        assert_eq!(topo.domain_count(), 5, "23 nodes in groups of 5");
        assert_eq!(topo.node_count(), 23);
        let mut seen = [false; 23];
        for (d, domain) in topo.domains() {
            for &n in &domain.members {
                assert!(!seen[n], "node {n} in two domains");
                seen[n] = true;
                assert_eq!(topo.domain_of(n), Some(d));
            }
        }
        assert!(seen.iter().all(|&s| s), "every node assigned");
        assert_eq!(topo.members(4).len(), 3, "last group holds the remainder");
        assert_eq!(topo.domain_of(100), None, "unknown nodes have no domain");
    }

    #[test]
    fn synthetic_hierarchy_is_deterministic_and_total() {
        let a = Topology::synthetic(200, 3, 4, 7);
        let b = Topology::synthetic(200, 3, 4, 7);
        assert_eq!(a, b);
        assert_eq!(a.domain_count(), 12);
        assert_eq!(a.site_count(), 3);
        let covered: usize = a.domains().map(|(_, d)| d.members.len()).sum();
        assert_eq!(covered, 200);
        for n in 0..200 {
            let d = a.domain_of(n).expect("every node has a domain");
            assert!(a.members(d).contains(&n));
            assert!(a.site_of(d) < 3);
        }
        // Jitter produces unequal lab sizes.
        let sizes: Vec<usize> = a.domains().map(|(_, d)| d.members.len()).collect();
        assert!(sizes.iter().any(|&s| s != sizes[0]));
    }

    #[test]
    fn capacity_domains_group_similar_disks() {
        let caps: Vec<ByteSize> = (0..40)
            .map(|i| ByteSize::gb(if i % 2 == 0 { 10 } else { 100 }))
            .collect();
        let topo = Topology::from_capacities(&caps, 4);
        assert_eq!(topo.domain_count(), 4);
        // Each domain is capacity-homogeneous: the two disk generations never
        // share a lab (20 small + 20 large disks over 4 labs of 10).
        for (_, d) in topo.domains() {
            let caps_in: std::collections::HashSet<u64> =
                d.members.iter().map(|&n| caps[n].as_u64()).collect();
            assert_eq!(caps_in.len(), 1, "{}: mixed procurement rounds", d.label);
        }
    }

    #[test]
    fn session_domains_separate_machine_classes() {
        let trace = SessionTrace::synthetic_desktop_grid(300, 11);
        let topo = Topology::from_sessions(&trace, 3);
        assert!(topo.domain_count() >= 3);
        let covered: usize = topo.domains().map(|(_, d)| d.members.len()).sum();
        assert_eq!(covered, 300);
        // Labels carry the inferred class.
        let labels: Vec<&str> = topo.domains().map(|(d, _)| topo.label(d)).collect();
        assert!(labels.iter().any(|l| l.starts_with("office/")));
        assert!(labels.iter().any(|l| l.starts_with("lab/")));
    }

    #[test]
    fn domain_view_mirrors_the_topology_and_shares_storage() {
        let topo = Topology::uniform_groups(23, 5);
        let view = topo.domain_view();
        assert_eq!(view.domain_count(), topo.domain_count());
        assert!(!view.is_unaffiliated());
        for n in 0..23 {
            assert_eq!(view.domain_of(n), topo.domain_of(n));
        }
        for (d, domain) in topo.domains() {
            assert_eq!(view.members(d), &domain.members[..]);
            assert_eq!(view.domain_size(d), domain.members.len());
        }
        assert_eq!(view.domain_of(100), None, "unknown nodes unaffiliated");
        // Clones share the same snapshot rather than copying it.
        let clone = view.clone();
        assert!(std::ptr::eq(view.members(0), clone.members(0)));

        let empty = DomainView::unaffiliated();
        assert!(empty.is_unaffiliated());
        assert_eq!(empty.domain_count(), 0);
        assert_eq!(empty.domain_of(0), None);
    }

    #[test]
    #[should_panic(expected = "two domains")]
    fn duplicate_membership_is_rejected() {
        Topology::from_domains(vec![
            Domain {
                label: "a".into(),
                site: 0,
                members: vec![0, 1],
            },
            Domain {
                label: "b".into(),
                site: 0,
                members: vec![1, 2],
            },
        ]);
    }
}
