//! Placement strategies: who gets the next block.
//!
//! The client's store path and every repair re-placement path route their
//! target selection through a [`PlacementStrategy`]:
//!
//! * [`OverlayRandom`] — the classic DHT behaviour (and the paper's): each
//!   block's name hashes to a key, the key routes to the numerically closest
//!   live node, and a `getCapacity` probe sizes the chunk.  Oblivious to
//!   failure domains.
//! * [`DomainSpread`] — failure-domain-aware, PAST-style replica diversity:
//!   the routed candidate is accepted only while its domain stays under the
//!   chunk's per-domain block cap; otherwise the strategy round-robins across
//!   the under-used domains, capacity-aware (the fullest domains are skipped,
//!   the freest node of the least-used domain wins).  With the cap set to the
//!   coding policy's tolerable losses, losing any single domain can never make
//!   a chunk unrecoverable.
//! * [`CapacityWeighted`] — targets drawn with probability proportional to
//!   reported free space, trading placement balance for domain obliviousness.
//!
//! Strategies see the cluster through the [`ClusterView`] / [`ProbeView`]
//! traits (implemented by `peerstripe_core::StorageCluster`), so this crate
//! stays below `core` in the dependency order.

use crate::topology::Topology;
use peerstripe_overlay::{Id, NodeRef};
use peerstripe_sim::{ByteSize, DetRng};

/// Read-only view of the cluster a placement strategy consults.
pub trait ClusterView {
    /// Route a key to the live node numerically closest to it, without
    /// charging protocol traffic.
    fn route_quiet(&self, key: Id) -> Option<NodeRef>;
    /// True if the node is currently live.
    fn is_alive(&self, node: NodeRef) -> bool;
    /// True if an object of the given size fits on the node right now.
    fn can_store(&self, node: NodeRef, size: ByteSize) -> bool;
    /// The node's current `getCapacity` report (free space it advertises).
    /// Direct per-node reports travel over IP, not the overlay, so they are
    /// not charged as lookups (Section 4.1 of the paper).
    fn report_of(&self, node: NodeRef) -> ByteSize;
    /// Number of nodes (live and failed).
    fn node_count(&self) -> usize;
    /// The currently live nodes.
    fn alive_nodes(&self) -> Vec<NodeRef>;
}

/// A [`ClusterView`] that can also issue routed `getCapacity` probes, which
/// are charged as overlay lookups (the client store path).
pub trait ProbeView: ClusterView {
    /// Route a key and probe the responsible node's capacity (one lookup).
    fn probe(&mut self, key: Id) -> Option<(NodeRef, ByteSize)>;
}

/// What a repair re-placement asks of a strategy.
#[derive(Debug, Clone)]
pub struct RepairRequest<'a> {
    /// Number of targets wanted.
    pub want: usize,
    /// Size each target must be able to store.
    pub size: ByteSize,
    /// Nodes already holding (registered) blocks of the chunk: a rebuilt block
    /// must never collocate with a live block of its own chunk.
    pub holders: &'a [NodeRef],
    /// Maximum blocks of this chunk any single failure domain may hold
    /// (`usize::MAX` disables the constraint).
    pub domain_cap: usize,
}

/// A pluggable target-selection policy for chunk placement and repair.
pub trait PlacementStrategy {
    /// Short name used in sweep tables.
    fn name(&self) -> &'static str;

    /// Choose one target per block key for a fresh chunk, returning each
    /// target with its capacity report (the minimum report sizes the chunk).
    /// `None` means the chunk cannot be placed under the strategy's
    /// constraints right now — a loud failure the caller surfaces as a
    /// zero-sized chunk retry, never a silently violated constraint.
    fn plan_chunk(
        &mut self,
        view: &mut dyn ProbeView,
        topology: Option<&Topology>,
        keys: &[Id],
        domain_cap: usize,
    ) -> Option<Vec<(NodeRef, ByteSize)>>;

    /// Choose up to `request.want` targets for rebuilt blocks of an existing
    /// chunk, excluding current holders and domains at their block cap.
    fn repair_targets(
        &mut self,
        view: &dyn ClusterView,
        topology: Option<&Topology>,
        request: &RepairRequest<'_>,
        rng: &mut DetRng,
    ) -> Vec<NodeRef>;
}

/// Today's oblivious behaviour, extracted: route every block key through the
/// overlay and take whatever live node answers.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlayRandom;

impl OverlayRandom {
    /// Create the strategy.
    pub fn new() -> Self {
        OverlayRandom
    }
}

impl PlacementStrategy for OverlayRandom {
    fn name(&self) -> &'static str {
        "overlay-random"
    }

    fn plan_chunk(
        &mut self,
        view: &mut dyn ProbeView,
        _topology: Option<&Topology>,
        keys: &[Id],
        _domain_cap: usize,
    ) -> Option<Vec<(NodeRef, ByteSize)>> {
        let mut out = Vec::with_capacity(keys.len());
        for &key in keys {
            out.push(view.probe(key)?);
        }
        Some(out)
    }

    fn repair_targets(
        &mut self,
        view: &dyn ClusterView,
        _topology: Option<&Topology>,
        request: &RepairRequest<'_>,
        rng: &mut DetRng,
    ) -> Vec<NodeRef> {
        // Random-key probes to live nodes with space that do not already hold
        // a block of the chunk (keeping the failure independence of the
        // original spread).
        let mut targets: Vec<NodeRef> = Vec::with_capacity(request.want);
        let mut attempts = 0;
        while targets.len() < request.want && attempts < request.want * 8 {
            attempts += 1;
            let Some(candidate) = view.route_quiet(Id::random(rng)) else {
                break;
            };
            if view.can_store(candidate, request.size)
                && !request.holders.contains(&candidate)
                && !targets.contains(&candidate)
            {
                targets.push(candidate);
            }
        }
        targets
    }
}

/// Failure-domain-aware spread: no chunk keeps more than its per-domain cap
/// of blocks in any one domain, with a capacity-aware round-robin fallback
/// when the routed domain is already at its cap (or out of space).
#[derive(Debug, Clone, Copy, Default)]
pub struct DomainSpread;

impl DomainSpread {
    /// Create the strategy.
    pub fn new() -> Self {
        DomainSpread
    }

    /// The best store-path target outside the saturated domains: domains with
    /// the fewest blocks of this chunk first (round-robin), the freest
    /// eligible node within, ties broken by node index for determinism.  The
    /// greedy freest-node pick self-balances here because every placed block
    /// charges its node's capacity immediately.
    fn fallback(
        view: &dyn ClusterView,
        topology: &Topology,
        counts: &[usize],
        chosen: &[NodeRef],
        cap: usize,
    ) -> Option<(NodeRef, ByteSize)> {
        let mut best: Option<(usize, ByteSize, NodeRef)> = None;
        for (d, domain) in topology.domains() {
            let used = counts[d as usize];
            if used >= cap {
                continue;
            }
            for &node in &domain.members {
                if !view.is_alive(node) || chosen.contains(&node) {
                    continue;
                }
                let report = view.report_of(node);
                if report.is_zero() {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bu, br, _)) => used < bu || (used == bu && report > br),
                };
                if better {
                    best = Some((used, report, node));
                }
            }
        }
        best.map(|(_, report, node)| (node, report))
    }

    /// One repair-path target: a uniformly random eligible node of the
    /// least-used domains.  Random within the domain tier — unlike the store
    /// path, repair reservations only charge capacity at transfer completion,
    /// so a deterministic freest-node pick would funnel every concurrent
    /// rebuild into one target and serialise repair on its bandwidth pipe.
    fn repair_pick(
        view: &dyn ClusterView,
        topology: &Topology,
        counts: &[usize],
        chosen: &[NodeRef],
        request: &RepairRequest<'_>,
        cap: usize,
        rng: &mut DetRng,
    ) -> Option<NodeRef> {
        let mut best_used = usize::MAX;
        let mut pool: Vec<NodeRef> = Vec::new();
        for (d, domain) in topology.domains() {
            let used = counts[d as usize];
            if used >= cap || used > best_used {
                continue;
            }
            let eligible = domain.members.iter().copied().filter(|&node| {
                view.is_alive(node)
                    && view.can_store(node, request.size)
                    && !request.holders.contains(&node)
                    && !chosen.contains(&node)
            });
            let mut eligible = eligible.peekable();
            if eligible.peek().is_none() {
                continue;
            }
            if used < best_used {
                best_used = used;
                pool.clear();
            }
            pool.extend(eligible);
        }
        rng.choose(&pool).copied()
    }
}

impl PlacementStrategy for DomainSpread {
    fn name(&self) -> &'static str {
        "domain-spread"
    }

    fn plan_chunk(
        &mut self,
        view: &mut dyn ProbeView,
        topology: Option<&Topology>,
        keys: &[Id],
        domain_cap: usize,
    ) -> Option<Vec<(NodeRef, ByteSize)>> {
        // Spreading over domains is impossible without a topology: refuse
        // loudly rather than silently degrade to oblivious placement.
        let topology = topology?;
        let cap = domain_cap.max(1);
        let mut counts = vec![0usize; topology.domain_count()];
        let mut chosen: Vec<NodeRef> = Vec::with_capacity(keys.len());
        let mut out = Vec::with_capacity(keys.len());
        for &key in keys {
            // Prefer the overlay's own answer (it keeps the DHT's lookup
            // semantics and load spread) while it lands in a least-used
            // domain: true round-robin, so a chunk's blocks balance over the
            // domains instead of merely staying under the cap — which keeps
            // chunks recoverable even through *overlapping* domain outages.
            let min_used = counts.iter().copied().min().unwrap_or(0);
            let routed = view.probe(key);
            let pick = match routed {
                Some((node, report))
                    if !report.is_zero()
                        && !chosen.contains(&node)
                        && topology.domain_of(node).is_none_or(|d| {
                            counts[d as usize] <= min_used && counts[d as usize] < cap
                        }) =>
                {
                    (node, report)
                }
                _ => Self::fallback(view, topology, &counts, &chosen, cap)?,
            };
            if let Some(d) = topology.domain_of(pick.0) {
                counts[d as usize] += 1;
            }
            chosen.push(pick.0);
            out.push(pick);
        }
        Some(out)
    }

    fn repair_targets(
        &mut self,
        view: &dyn ClusterView,
        topology: Option<&Topology>,
        request: &RepairRequest<'_>,
        rng: &mut DetRng,
    ) -> Vec<NodeRef> {
        let Some(topology) = topology else {
            // No topology to spread over: degrade to the oblivious behaviour
            // (the collocation exclusion still applies).
            return OverlayRandom.repair_targets(view, None, request, rng);
        };
        let cap = request.domain_cap.max(1);
        let mut counts = vec![0usize; topology.domain_count()];
        for &holder in request.holders {
            if let Some(d) = topology.domain_of(holder) {
                counts[d as usize] += 1;
            }
        }
        let mut targets: Vec<NodeRef> = Vec::with_capacity(request.want);
        while targets.len() < request.want {
            let Some(node) =
                Self::repair_pick(view, topology, &counts, &targets, request, cap, rng)
            else {
                break;
            };
            if let Some(d) = topology.domain_of(node) {
                counts[d as usize] += 1;
            }
            targets.push(node);
        }
        targets
    }
}

/// Targets drawn with probability proportional to reported free space.
#[derive(Debug, Clone)]
pub struct CapacityWeighted {
    rng: DetRng,
}

impl CapacityWeighted {
    /// Create the strategy; `seed` drives the weighted draws of the store path
    /// (repair draws use the caller's stream).
    pub fn new(seed: u64) -> Self {
        CapacityWeighted {
            rng: DetRng::new(seed).fork("capacity-weighted"),
        }
    }

    /// One weighted draw over the eligible nodes.
    #[allow(clippy::too_many_arguments)]
    fn draw(
        view: &dyn ClusterView,
        topology: Option<&Topology>,
        counts: &mut [usize],
        chosen: &[NodeRef],
        exclude: &[NodeRef],
        cap: usize,
        min_size: ByteSize,
        rng: &mut DetRng,
    ) -> Option<(NodeRef, ByteSize)> {
        let mut eligible: Vec<(NodeRef, ByteSize)> = Vec::new();
        let mut total = 0u128;
        for node in view.alive_nodes() {
            if chosen.contains(&node) || exclude.contains(&node) {
                continue;
            }
            if let (Some(t), true) = (topology, cap != usize::MAX) {
                if let Some(d) = t.domain_of(node) {
                    if counts[d as usize] >= cap {
                        continue;
                    }
                }
            }
            let report = view.report_of(node);
            if report.is_zero() || report < min_size {
                continue;
            }
            total += report.as_u64() as u128;
            eligible.push((node, report));
        }
        if eligible.is_empty() {
            return None;
        }
        // Float rounding can push x to (or past) the exact weight sum, so the
        // walk may run off the end; the last eligible node is the fallback,
        // and the domain bookkeeping below covers both outcomes.
        let mut pick = *eligible.last().expect("non-empty"); // lint:allow(panic) -- eligible verified non-empty before the weighted walk
        let mut x = (rng.next_f64() * total as f64) as u128;
        for &(node, report) in &eligible {
            let w = report.as_u64() as u128;
            if x < w {
                pick = (node, report);
                break;
            }
            x -= w;
        }
        if let Some(t) = topology {
            if let Some(d) = t.domain_of(pick.0) {
                counts[d as usize] += 1;
            }
        }
        Some(pick)
    }
}

impl PlacementStrategy for CapacityWeighted {
    fn name(&self) -> &'static str {
        "capacity-weighted"
    }

    fn plan_chunk(
        &mut self,
        view: &mut dyn ProbeView,
        topology: Option<&Topology>,
        keys: &[Id],
        domain_cap: usize,
    ) -> Option<Vec<(NodeRef, ByteSize)>> {
        let mut counts = vec![0usize; topology.map(Topology::domain_count).unwrap_or(0)];
        let mut chosen: Vec<NodeRef> = Vec::with_capacity(keys.len());
        let mut out = Vec::with_capacity(keys.len());
        for _ in keys {
            let (node, report) = Self::draw(
                view,
                topology,
                &mut counts,
                &chosen,
                &[],
                domain_cap,
                ByteSize::ZERO,
                &mut self.rng,
            )?;
            chosen.push(node);
            out.push((node, report));
        }
        Some(out)
    }

    fn repair_targets(
        &mut self,
        view: &dyn ClusterView,
        topology: Option<&Topology>,
        request: &RepairRequest<'_>,
        rng: &mut DetRng,
    ) -> Vec<NodeRef> {
        let mut counts = vec![0usize; topology.map(Topology::domain_count).unwrap_or(0)];
        for &holder in request.holders {
            if let Some(d) = topology.and_then(|t| t.domain_of(holder)) {
                counts[d as usize] += 1;
            }
        }
        let mut targets: Vec<NodeRef> = Vec::with_capacity(request.want);
        while targets.len() < request.want {
            let Some((node, _)) = Self::draw(
                view,
                topology,
                &mut counts,
                &targets,
                request.holders,
                request.domain_cap,
                request.size,
                rng,
            ) else {
                break;
            };
            targets.push(node);
        }
        targets
    }
}

/// The strategies a sweep can instantiate by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// [`OverlayRandom`].
    OverlayRandom,
    /// [`DomainSpread`].
    DomainSpread,
    /// [`CapacityWeighted`].
    CapacityWeighted,
}

impl StrategyKind {
    /// All kinds, in comparison order.
    pub const ALL: [StrategyKind; 3] = [
        StrategyKind::OverlayRandom,
        StrategyKind::DomainSpread,
        StrategyKind::CapacityWeighted,
    ];

    /// The strategy's table label.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::OverlayRandom => "overlay-random",
            StrategyKind::DomainSpread => "domain-spread",
            StrategyKind::CapacityWeighted => "capacity-weighted",
        }
    }

    /// Instantiate the strategy (the seed only matters for draws the strategy
    /// makes on its own stream).
    pub fn build(&self, seed: u64) -> Box<dyn PlacementStrategy> {
        match self {
            StrategyKind::OverlayRandom => Box::new(OverlayRandom::new()),
            StrategyKind::DomainSpread => Box::new(DomainSpread::new()),
            StrategyKind::CapacityWeighted => Box::new(CapacityWeighted::new(seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy cluster: node i is live unless failed, free space per node, and
    /// routing maps a key to `key % nodes` (live-adjusted by linear probing).
    struct MockView {
        free: Vec<ByteSize>,
        alive: Vec<bool>,
        probes: u64,
    }

    impl MockView {
        fn new(free: Vec<ByteSize>) -> Self {
            let n = free.len();
            MockView {
                free,
                alive: vec![true; n],
                probes: 0,
            }
        }
    }

    impl ClusterView for MockView {
        fn route_quiet(&self, key: Id) -> Option<NodeRef> {
            let n = self.free.len();
            (0..n)
                .map(|i| ((key.0 as usize) + i) % n)
                .find(|&c| self.alive[c])
        }
        fn is_alive(&self, node: NodeRef) -> bool {
            self.alive[node]
        }
        fn can_store(&self, node: NodeRef, size: ByteSize) -> bool {
            size <= self.free[node]
        }
        fn report_of(&self, node: NodeRef) -> ByteSize {
            self.free[node]
        }
        fn node_count(&self) -> usize {
            self.free.len()
        }
        fn alive_nodes(&self) -> Vec<NodeRef> {
            (0..self.free.len()).filter(|&n| self.alive[n]).collect()
        }
    }

    impl ProbeView for MockView {
        fn probe(&mut self, key: Id) -> Option<(NodeRef, ByteSize)> {
            self.probes += 1;
            self.route_quiet(key).map(|n| (n, self.free[n]))
        }
    }

    fn keys(n: usize) -> Vec<Id> {
        (0..n as u128).map(Id).collect()
    }

    #[test]
    fn overlay_random_routes_every_key_and_charges_probes() {
        let mut view = MockView::new(vec![ByteSize::mb(10); 8]);
        let picks = OverlayRandom::new()
            .plan_chunk(&mut view, None, &keys(4), usize::MAX)
            .unwrap();
        assert_eq!(picks.len(), 4);
        assert_eq!(view.probes, 4);
        assert_eq!(
            picks.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "keys route straight through"
        );
    }

    #[test]
    fn overlay_random_repair_excludes_holders() {
        let view = MockView::new(vec![ByteSize::mb(10); 6]);
        let mut rng = DetRng::new(3);
        let holders = vec![0, 1, 2, 3, 4];
        let targets = OverlayRandom::new().repair_targets(
            &view,
            None,
            &RepairRequest {
                want: 1,
                size: ByteSize::mb(1),
                holders: &holders,
                domain_cap: usize::MAX,
            },
            &mut rng,
        );
        assert_eq!(targets, vec![5], "only the non-holder is eligible");
    }

    #[test]
    fn domain_spread_respects_the_cap() {
        // 12 nodes in 4 domains of 3; cap 1: a 4-block chunk must use all four
        // domains even though routing concentrates on low node refs.
        let mut view = MockView::new(vec![ByteSize::mb(10); 12]);
        let topo = Topology::uniform_groups(12, 3);
        let picks = DomainSpread::new()
            .plan_chunk(&mut view, Some(&topo), &keys(4), 1)
            .unwrap();
        let domains: std::collections::HashSet<_> = picks
            .iter()
            .map(|(n, _)| topo.domain_of(*n).unwrap())
            .collect();
        assert_eq!(domains.len(), 4, "one block per domain: {picks:?}");
    }

    #[test]
    fn domain_spread_fails_loudly_when_domains_run_out() {
        // 2 domains, cap 1 → at most 2 blocks placeable; a 3-block chunk must
        // be refused outright, not silently concentrated.
        let mut view = MockView::new(vec![ByteSize::mb(10); 6]);
        let topo = Topology::uniform_groups(6, 3);
        assert!(DomainSpread::new()
            .plan_chunk(&mut view, Some(&topo), &keys(3), 1)
            .is_none());
        // And without a topology it refuses everything.
        assert!(DomainSpread::new()
            .plan_chunk(&mut view, None, &keys(1), 1)
            .is_none());
    }

    #[test]
    fn domain_spread_fallback_is_capacity_aware() {
        // Domain 0 is full; the store-path fallback must pick the freest
        // node of the open domain.
        let mut free = vec![ByteSize::ZERO; 3];
        free.extend([ByteSize::mb(1), ByteSize::mb(50), ByteSize::mb(5)]);
        let mut view = MockView::new(free);
        let topo = Topology::uniform_groups(6, 3);
        let picks = DomainSpread::new()
            .plan_chunk(&mut view, Some(&topo), &keys(1), 2)
            .unwrap();
        assert_eq!(picks[0].0, 4, "freest node of the open domain");
        // The repair path scatters instead (capacity at completion time, so
        // greedy freest-node picks would serialise concurrent rebuilds), but
        // still lands only in the open domain.
        let targets = DomainSpread::new().repair_targets(
            &view,
            Some(&topo),
            &RepairRequest {
                want: 1,
                size: ByteSize::kb(1),
                holders: &[],
                domain_cap: 2,
            },
            &mut DetRng::new(1),
        );
        assert_eq!(targets.len(), 1);
        assert_eq!(topo.domain_of(targets[0]), Some(1), "full domain skipped");
    }

    #[test]
    fn domain_spread_repair_counts_existing_holders() {
        // Holders already fill domain 0 to the cap; the rebuilt block must
        // land in domain 1.
        let view = MockView::new(vec![ByteSize::mb(10); 6]);
        let topo = Topology::uniform_groups(6, 3);
        let holders = vec![0, 1];
        let targets = DomainSpread::new().repair_targets(
            &view,
            Some(&topo),
            &RepairRequest {
                want: 2,
                size: ByteSize::mb(1),
                holders: &holders,
                domain_cap: 2,
            },
            &mut DetRng::new(1),
        );
        assert_eq!(targets.len(), 2);
        for t in &targets {
            assert_eq!(topo.domain_of(*t), Some(1), "domain 0 is at cap");
        }
    }

    #[test]
    fn capacity_weighted_prefers_free_nodes_and_skips_full_ones() {
        let mut free = vec![ByteSize::ZERO; 4];
        free.extend([ByteSize::gb(100), ByteSize::kb(1)]);
        let mut view = MockView::new(free);
        let mut strategy = CapacityWeighted::new(9);
        let mut hits = [0u32; 6];
        for _ in 0..50 {
            let picks = strategy
                .plan_chunk(&mut view, None, &keys(1), usize::MAX)
                .unwrap();
            hits[picks[0].0] += 1;
        }
        assert_eq!(hits[..4].iter().sum::<u32>(), 0, "full nodes never chosen");
        assert!(hits[4] > hits[5], "free space dominates the draw: {hits:?}");
    }

    #[test]
    fn strategy_kind_builds_every_strategy() {
        for kind in StrategyKind::ALL {
            let s = kind.build(1);
            assert_eq!(s.name(), kind.label());
        }
    }
}
