//! The failure detector: probe-based departure detection plus the permanence
//! timeout that separates transient churn from real failures.
//!
//! A departure at time `t` is *noticed* at the next probe boundary after `t`
//! plus the configured detection lag, and *declared permanent* once the node
//! has been away for the permanence timeout.  Declarations are guarded by a
//! per-node generation counter so that a node returning before its declaration
//! fires invalidates the stale event instead of being written off.

use crate::config::DetectorConfig;
use peerstripe_overlay::NodeRef;
use peerstripe_sim::SimTime;

/// A pending declaration handed back by [`FailureDetector::node_down`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingDeclaration {
    /// The down generation this declaration belongs to.
    pub generation: u64,
    /// When the node is first noticed as down.
    pub detected_at: SimTime,
    /// When the node should be declared permanently dead if still away.
    pub declare_at: SimTime,
}

/// Tracks which nodes are down and validates declaration events.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    config: DetectorConfig,
    generation: Vec<u64>,
    down_since: Vec<Option<SimTime>>,
}

impl FailureDetector {
    /// Create a detector for `nodes` participants.
    pub fn new(nodes: usize, config: DetectorConfig) -> Self {
        assert!(
            config.probe_period_secs > 0.0,
            "probe period must be positive"
        );
        FailureDetector {
            config,
            generation: vec![0; nodes],
            down_since: vec![None; nodes],
        }
    }

    /// The detector's timing configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Record a departure at `now`; returns the declaration to schedule.
    pub fn node_down(&mut self, node: NodeRef, now: SimTime) -> PendingDeclaration {
        self.down_since[node] = Some(now);
        let t = now.as_secs_f64();
        let p = self.config.probe_period_secs;
        // The next probe strictly after the departure notices it.
        let detected = (t / p).floor() * p + p + self.config.detection_lag_secs;
        let declare = detected.max(t + self.config.permanence_timeout_secs);
        PendingDeclaration {
            generation: self.generation[node],
            detected_at: SimTime::from_secs_f64(detected),
            declare_at: SimTime::from_secs_f64(declare),
        }
    }

    /// Record a return: bumps the node's generation so any pending declaration
    /// for the previous down period is invalidated.
    pub fn node_up(&mut self, node: NodeRef) {
        self.down_since[node] = None;
        self.generation[node] += 1;
    }

    /// True if the node is still down *and* the declaration belongs to the
    /// current down period (not a stale event from before a return).
    pub fn confirm(&self, node: NodeRef, generation: u64) -> bool {
        self.down_since[node].is_some() && self.generation[node] == generation
    }

    /// Since when the node has been down, if it is.
    pub fn down_since(&self, node: NodeRef) -> Option<SimTime> {
        self.down_since[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> FailureDetector {
        FailureDetector::new(
            4,
            DetectorConfig {
                probe_period_secs: 100.0,
                detection_lag_secs: 10.0,
                permanence_timeout_secs: 1_000.0,
            },
        )
    }

    #[test]
    fn detection_aligns_to_the_next_probe() {
        let mut d = detector();
        let pending = d.node_down(0, SimTime::from_secs(250));
        // Down at 250 → probed at 300 → reported at 310.
        assert_eq!(pending.detected_at, SimTime::from_secs(310));
        // Declaration waits for the permanence timeout (250 + 1000).
        assert_eq!(pending.declare_at, SimTime::from_secs(1250));
        assert_eq!(d.down_since(0), Some(SimTime::from_secs(250)));
    }

    #[test]
    fn short_timeout_is_dominated_by_detection() {
        let mut d = FailureDetector::new(
            1,
            DetectorConfig {
                probe_period_secs: 100.0,
                detection_lag_secs: 10.0,
                permanence_timeout_secs: 5.0,
            },
        );
        let pending = d.node_down(0, SimTime::from_secs(250));
        // The timeout expires before the probe even notices the departure, so
        // the declaration cannot fire earlier than detection.
        assert_eq!(pending.declare_at, SimTime::from_secs(310));
    }

    #[test]
    fn returns_invalidate_pending_declarations() {
        let mut d = detector();
        let pending = d.node_down(2, SimTime::from_secs(50));
        assert!(d.confirm(2, pending.generation));
        d.node_up(2);
        assert!(!d.confirm(2, pending.generation), "stale generation");
        assert_eq!(d.down_since(2), None);
        // A fresh down period gets a fresh generation.
        let second = d.node_down(2, SimTime::from_secs(500));
        assert_ne!(second.generation, pending.generation);
        assert!(d.confirm(2, second.generation));
        assert!(!d.confirm(2, pending.generation));
    }
}
