//! The continuous-time maintenance engine.
//!
//! Drives a stored deployment through churn on the shared
//! [`peerstripe_sim::EventQueue`]: nodes depart and return on sampled
//! session/downtime lengths, the [`FailureDetector`] turns long absences into
//! permanent-death declarations, and the [`RepairScheduler`] regenerates the
//! declared-lost blocks under per-node bandwidth budgets, placing them through
//! the overlay placement path.  Availability (live blocks above the decode
//! threshold) and durability (registered blocks above it) are tracked
//! incrementally per event, so a 10 000-node run costs O(blocks touched) per
//! event rather than a scan per sample.

use crate::config::{ChurnProcess, RepairConfig};
use crate::detector::FailureDetector;
use crate::scheduler::RepairScheduler;
use peerstripe_core::{
    DamageLedger, MaintenanceMetrics, MaintenanceSample, ManifestStore, StorageCluster,
};
use peerstripe_overlay::NodeRef;
use peerstripe_placement::{OverlayRandom, PlacementStrategy, RepairRequest, Topology};
use peerstripe_sim::dist::{Distribution, Exponential};
use peerstripe_sim::{ByteSize, DetRng, EventQueue, SimTime};

/// Events the maintenance engine processes.
#[derive(Debug, Clone)]
pub enum MaintenanceEvent {
    /// A node leaves the overlay (transient or permanent; nobody knows yet).
    Depart {
        /// The departing node.
        node: NodeRef,
        /// The session generation the event belongs to.  A group outage that
        /// cuts a node's session short bumps the generation, so the stale
        /// per-node event chain dies instead of double-driving the node.
        session: u64,
    },
    /// A transiently departed node returns.
    Return {
        /// The returning node.
        node: NodeRef,
        /// The session generation the event belongs to.
        session: u64,
    },
    /// A whole failure domain goes down at once (grouped churn mode).
    GroupDepart {
        /// The affected topology domain.
        group: u32,
    },
    /// A group outage ends: exactly the members it took down return.
    GroupReturn {
        /// The affected topology domain.
        group: u32,
        /// The members the outage took down (nodes already down individually
        /// at outage start are *not* included — their own return drives them).
        members: Vec<NodeRef>,
    },
    /// The failure detector's permanence timeout expires for a node.
    DeclareDead {
        /// The absent node.
        node: NodeRef,
        /// The down generation the declaration belongs to (stale ones are
        /// ignored — the node returned in the meantime).
        generation: u64,
    },
    /// A scheduled regeneration finishes its transfers.
    RepairDone {
        /// The repaired chunk.
        chunk: u32,
        /// Where the rebuilt blocks land.
        placements: Vec<(NodeRef, ByteSize)>,
        /// Network bytes the repair moved.
        traffic: ByteSize,
    },
    /// Re-attempt a repair that was deferred (not enough live decode sources
    /// or placement targets at the time).
    RetryRepair(u32),
    /// Periodic availability/durability sample.
    Sample,
}

/// Aggregate outcome of a maintenance run.
#[derive(Debug, Clone)]
pub struct MaintenanceReport {
    /// Virtual time the engine has reached.
    pub sim_time: SimTime,
    /// Events processed.
    pub events: u64,
    /// Files tracked.
    pub files_total: u64,
    /// Files permanently lost.
    pub files_lost: u64,
    /// Files unavailable at the end of the run.
    pub files_unavailable: u64,
    /// Mean sampled availability percentage.
    pub availability_mean_pct: f64,
    /// Lowest sampled availability percentage.
    pub availability_min_pct: f64,
    /// Total repair traffic.
    pub repair_bytes: ByteSize,
    /// Individual blocks regenerated.
    pub blocks_regenerated: u64,
    /// User bytes under maintenance.
    pub useful_bytes: ByteSize,
    /// Repair traffic per useful byte protected.
    pub repair_per_useful_byte: f64,
    /// Permanent departures drawn by the churn process.
    pub permanent_failures: u64,
    /// Transient departures drawn by the churn process.
    pub transient_departures: u64,
    /// Whole-group outage events drawn by the grouped churn mode.
    pub group_outages: u64,
    /// Node departures caused by group outages.
    pub group_departures: u64,
    /// Nodes declared dead that later returned.
    pub false_declarations: u64,
}

/// The event-driven churn & repair engine.
pub struct MaintenanceEngine {
    cluster: StorageCluster,
    ledger: DamageLedger,
    queue: EventQueue<MaintenanceEvent>,
    detector: FailureDetector,
    scheduler: RepairScheduler,
    churn: ChurnProcess,
    sample_period: SimTime,
    rng: DetRng,
    // Per chunk, indexed like the ledger.
    alive_blocks: Vec<u32>,
    in_flight: Vec<u32>,
    target_blocks: Vec<u32>,
    block_size: Vec<ByteSize>,
    retry_pending: Vec<bool>,
    // Per file.
    file_failed_chunks: Vec<u32>,
    file_lost_chunks: Vec<u32>,
    files_unavailable: u64,
    // Per node.
    permanent: Vec<bool>,
    declared: Vec<bool>,
    /// Session generation per node; bumped when a group outage cuts a session
    /// short so the node's stale Depart/Return chain is invalidated.
    session_gen: Vec<u64>,
    // Grouped churn (indexed by churn-topology domain).
    group_down_until: Vec<SimTime>,
    grouped_rng: DetRng,
    // Placement of rebuilt blocks.
    placement: Box<dyn PlacementStrategy>,
    topology: Option<Topology>,
    metrics: MaintenanceMetrics,
    horizon: SimTime,
}

impl MaintenanceEngine {
    /// Build the engine over a loaded deployment.
    ///
    /// `cluster` and `manifests` describe the system at time zero (every node
    /// up); `seed` makes the whole run — churn draws, permanence coin flips,
    /// placement probes — reproducible.
    pub fn new(
        cluster: StorageCluster,
        manifests: &ManifestStore,
        churn: ChurnProcess,
        config: RepairConfig,
        seed: u64,
    ) -> Self {
        let ledger = DamageLedger::build(manifests);
        let nodes = cluster.node_count();
        let chunks = ledger.chunk_count();
        let mut alive_blocks = Vec::with_capacity(chunks);
        let mut target_blocks = Vec::with_capacity(chunks);
        let mut block_size = Vec::with_capacity(chunks);
        for c in 0..chunks as u32 {
            let blocks = ledger.blocks(c);
            alive_blocks.push(blocks.len() as u32);
            target_blocks.push(blocks.len() as u32);
            block_size.push(
                blocks
                    .first()
                    .map(|(_, s)| *s)
                    .unwrap_or_else(|| ByteSize::bytes(1)),
            );
        }
        let mut rng = DetRng::new(seed).fork("maintenance");
        let group_count = churn
            .grouped
            .as_ref()
            .map(|g| g.topology.domain_count())
            .unwrap_or(0);
        // The grouped mode's topology doubles as the default placement
        // topology, so repair re-placement is domain-aware whenever the churn
        // is (override with [`MaintenanceEngine::with_placement`]).
        let topology = churn.grouped.as_ref().map(|g| g.topology.clone());
        let mut engine = MaintenanceEngine {
            detector: FailureDetector::new(nodes, config.detector),
            scheduler: RepairScheduler::new(nodes, config.bandwidth, config.policy),
            sample_period: SimTime::from_secs_f64(config.sample_period_secs),
            queue: EventQueue::new(),
            file_failed_chunks: vec![0; ledger.file_count()],
            file_lost_chunks: vec![0; ledger.file_count()],
            files_unavailable: 0,
            in_flight: vec![0; chunks],
            retry_pending: vec![false; chunks],
            permanent: vec![false; nodes],
            declared: vec![false; nodes],
            session_gen: vec![0; nodes],
            group_down_until: vec![SimTime::ZERO; group_count],
            grouped_rng: DetRng::new(seed).fork("grouped-churn"),
            placement: Box::new(OverlayRandom::new()),
            topology,
            metrics: MaintenanceMetrics::new(),
            horizon: SimTime::ZERO,
            cluster,
            ledger,
            churn,
            alive_blocks,
            target_blocks,
            block_size,
            rng: rng.fork("engine"),
        };
        // Every node starts up, already partway through a session: the first
        // departure lands at a uniformly random *residual* of a sampled
        // session length, so time zero is a steady-state snapshot rather than
        // a synchronised wave of fresh sessions all expiring together.
        for node in 0..nodes {
            let session = engine.churn.sessions.sample_session(&mut rng);
            let residual = session * rng.next_f64();
            engine.queue.schedule_at(
                SimTime::from_secs_f64(residual),
                MaintenanceEvent::Depart { node, session: 0 },
            );
        }
        // Grouped mode: every domain's first outage arrives after an
        // exponential wait on its own stream, so the independent-session draws
        // above are byte-identical with and without grouping.
        if let Some(grouped) = &engine.churn.grouped {
            let rate = 1.0 / grouped.mean_outage_interval_secs;
            for group in 0..group_count as u32 {
                let wait = Exponential::new(rate).sample(&mut engine.grouped_rng);
                engine.queue.schedule_at(
                    SimTime::from_secs_f64(wait),
                    MaintenanceEvent::GroupDepart { group },
                );
            }
        }
        engine
            .queue
            .schedule_at(engine.sample_period, MaintenanceEvent::Sample);
        engine
    }

    /// Route rebuilt-block placement through an explicit strategy (and
    /// optionally a different topology than the churn's).  The default is
    /// [`OverlayRandom`] over the grouped-churn topology, if any.
    pub fn with_placement(
        mut self,
        strategy: Box<dyn PlacementStrategy>,
        topology: Option<Topology>,
    ) -> Self {
        self.placement = strategy;
        if topology.is_some() {
            self.topology = topology;
        }
        self
    }

    /// Advance the simulation by `duration` of virtual time.
    pub fn run_for(&mut self, duration: SimTime) {
        self.horizon += duration;
        let deadline = self.horizon;
        let mut queue = std::mem::take(&mut self.queue);
        queue.run_until(deadline, |q, now, event| self.handle(q, now, event));
        self.queue = queue;
    }

    /// The metrics accumulated so far.
    pub fn metrics(&self) -> &MaintenanceMetrics {
        &self.metrics
    }

    /// The block ledger (current placements and losses).
    pub fn ledger(&self) -> &DamageLedger {
        &self.ledger
    }

    /// The cluster under maintenance.
    pub fn cluster(&self) -> &StorageCluster {
        &self.cluster
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.queue.processed()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Files currently unavailable.
    pub fn files_unavailable(&self) -> u64 {
        self.files_unavailable
    }

    /// Summarise the run.
    pub fn report(&self) -> MaintenanceReport {
        let useful = self.ledger.tracked_bytes();
        MaintenanceReport {
            sim_time: self.queue.now(),
            events: self.queue.processed(),
            files_total: self.ledger.file_count() as u64,
            files_lost: self.metrics.files_lost,
            files_unavailable: self.files_unavailable,
            availability_mean_pct: self.metrics.mean_availability_pct(),
            availability_min_pct: self.metrics.min_availability_pct(),
            repair_bytes: self.metrics.repair_bytes,
            blocks_regenerated: self.metrics.blocks_regenerated,
            useful_bytes: useful,
            repair_per_useful_byte: self.metrics.repair_bytes_per_useful_byte(useful),
            permanent_failures: self.metrics.permanent_failures,
            transient_departures: self.metrics.transient_departures,
            group_outages: self.metrics.group_outages,
            group_departures: self.metrics.group_departures,
            false_declarations: self.metrics.false_declarations,
        }
    }

    /// True if the grouped-churn domain is currently in an outage.
    pub fn group_outage_active(&self, group: u32) -> bool {
        self.group_down_until
            .get(group as usize)
            .is_some_and(|&until| self.queue.now() < until)
    }

    /// The topology rebuilt blocks are placed against, if any.
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// Verify the engine's incremental availability accounting against a full
    /// recomputation from the ledger and the overlay: per-chunk live-block
    /// counters, per-file failed-chunk counters, and the unavailable-file
    /// total must all balance.  O(blocks); used by the grouped-churn
    /// conservation property tests.
    pub fn accounting_is_consistent(&self) -> bool {
        let mut failed_chunks = vec![0u32; self.ledger.file_count()];
        for chunk in 0..self.ledger.chunk_count() as u32 {
            let ci = chunk as usize;
            let fi = self.ledger.file_of(chunk) as usize;
            if self.ledger.is_lost(chunk) {
                // Lost chunks freeze their availability accounting; they stay
                // failed forever.
                failed_chunks[fi] += 1;
                continue;
            }
            let alive = self
                .ledger
                .blocks(chunk)
                .iter()
                .filter(|(n, _)| self.cluster.overlay().is_alive(*n))
                .count() as u32;
            if alive != self.alive_blocks[ci] {
                return false;
            }
            if alive < self.ledger.needed(chunk) as u32 {
                failed_chunks[fi] += 1;
            }
        }
        let unavailable = failed_chunks.iter().filter(|&&c| c > 0).count() as u64;
        failed_chunks
            .iter()
            .zip(&self.file_failed_chunks)
            .all(|(recomputed, tracked)| recomputed == tracked)
            && unavailable == self.files_unavailable
    }

    fn handle(
        &mut self,
        q: &mut EventQueue<MaintenanceEvent>,
        now: SimTime,
        event: MaintenanceEvent,
    ) {
        match event {
            MaintenanceEvent::Depart { node, session } => {
                if session == self.session_gen[node] {
                    self.on_depart(q, now, node);
                }
            }
            MaintenanceEvent::Return { node, session } => {
                if session == self.session_gen[node] {
                    self.on_return(q, now, node);
                }
            }
            MaintenanceEvent::GroupDepart { group } => self.on_group_depart(q, now, group),
            MaintenanceEvent::GroupReturn { group, members } => {
                self.on_group_return(q, now, group, members)
            }
            MaintenanceEvent::DeclareDead { node, generation } => {
                self.on_declare(q, now, node, generation)
            }
            MaintenanceEvent::RepairDone {
                chunk,
                placements,
                traffic,
            } => self.on_repair_done(q, now, chunk, placements, traffic),
            MaintenanceEvent::RetryRepair(chunk) => {
                self.retry_pending[chunk as usize] = false;
                self.maybe_repair(q, now, chunk);
            }
            MaintenanceEvent::Sample => self.on_sample(q, now),
        }
    }

    fn on_depart(&mut self, q: &mut EventQueue<MaintenanceEvent>, now: SimTime, node: NodeRef) {
        if !self.cluster.overlay().is_alive(node) {
            return;
        }
        self.cluster.fail_node(node);
        if self.rng.next_f64() < self.churn.permanent_fraction {
            // The disk is gone; the node never returns.
            self.permanent[node] = true;
            self.metrics.permanent_failures += 1;
        } else {
            self.metrics.transient_departures += 1;
            let downtime = self.churn.sessions.sample_downtime(&mut self.rng);
            q.schedule_after(
                SimTime::from_secs_f64(downtime),
                MaintenanceEvent::Return {
                    node,
                    session: self.session_gen[node],
                },
            );
        }
        for chunk in self.ledger.chunks_on(node).to_vec() {
            self.chunk_block_down(chunk);
        }
        let pending = self.detector.node_down(node, now);
        q.schedule_at(
            pending.declare_at,
            MaintenanceEvent::DeclareDead {
                node,
                generation: pending.generation,
            },
        );
    }

    /// A whole failure domain goes down at once: every live member departs,
    /// with its individual session chain invalidated (the outage cut it
    /// short).  Members already down individually are untouched — their own
    /// return event still drives them, deferred past the outage end.
    fn on_group_depart(&mut self, q: &mut EventQueue<MaintenanceEvent>, now: SimTime, group: u32) {
        let Some(grouped) = self.churn.grouped.as_ref() else {
            return;
        };
        let members = grouped.topology.members(group).to_vec();
        let downtime_rate = 1.0 / grouped.mean_outage_downtime_secs;
        let mut taken = Vec::new();
        for node in members {
            if !self.cluster.overlay().is_alive(node) {
                continue;
            }
            self.session_gen[node] += 1;
            self.cluster.fail_node(node);
            self.metrics.group_departures += 1;
            for chunk in self.ledger.chunks_on(node).to_vec() {
                self.chunk_block_down(chunk);
            }
            // The failure detector cannot tell a lab outage from real loss:
            // the permanence timeout starts counting, exactly as for any
            // other departure.
            let pending = self.detector.node_down(node, now);
            q.schedule_at(
                pending.declare_at,
                MaintenanceEvent::DeclareDead {
                    node,
                    generation: pending.generation,
                },
            );
            taken.push(node);
        }
        self.metrics.group_outages += 1;
        let downtime = Exponential::new(downtime_rate).sample(&mut self.grouped_rng);
        let until = now + SimTime::from_secs_f64(downtime);
        self.group_down_until[group as usize] = until;
        q.schedule_at(
            until,
            MaintenanceEvent::GroupReturn {
                group,
                members: taken,
            },
        );
    }

    /// A group outage ends: exactly the members it took down return (dead
    /// disks and overlapping individual downtimes excepted), and the domain's
    /// next outage is drawn.
    fn on_group_return(
        &mut self,
        q: &mut EventQueue<MaintenanceEvent>,
        now: SimTime,
        group: u32,
        members: Vec<NodeRef>,
    ) {
        self.group_down_until[group as usize] = now;
        for node in members {
            self.return_node(q, now, node);
        }
        if let Some(grouped) = self.churn.grouped.as_ref() {
            let rate = 1.0 / grouped.mean_outage_interval_secs;
            let wait = Exponential::new(rate).sample(&mut self.grouped_rng);
            q.schedule_after(
                SimTime::from_secs_f64(wait),
                MaintenanceEvent::GroupDepart { group },
            );
        }
    }

    fn on_return(&mut self, q: &mut EventQueue<MaintenanceEvent>, now: SimTime, node: NodeRef) {
        // A member of a domain in outage cannot come back up on its own — the
        // power is out; its individual return is deferred past the outage.
        if let Some(grouped) = self.churn.grouped.as_ref() {
            if let Some(domain) = grouped.topology.domain_of(node) {
                let until = self.group_down_until[domain as usize];
                if now < until {
                    q.schedule_at(
                        until + SimTime::from_secs(1),
                        MaintenanceEvent::Return {
                            node,
                            session: self.session_gen[node],
                        },
                    );
                    return;
                }
            }
        }
        self.return_node(q, now, node);
    }

    /// A down node comes back up: rejoin, reconcile with the failure
    /// detector, and start its next session.
    fn return_node(&mut self, q: &mut EventQueue<MaintenanceEvent>, now: SimTime, node: NodeRef) {
        if self.permanent[node] || self.cluster.overlay().is_alive(node) {
            return;
        }
        self.cluster.overlay_mut().rejoin(node);
        self.detector.node_up(node);
        if self.declared[node] {
            // Falsely written off: the node is back, but its blocks were
            // already deregistered (and possibly re-created elsewhere), so it
            // rejoins as an empty contributor — including its capacity
            // accounting, or the orphaned objects would pin space forever and
            // starve placement on exactly the nodes that churn the most.
            self.cluster.node_mut(node).wipe();
            self.declared[node] = false;
            self.metrics.false_declarations += 1;
        } else {
            let chunks = self.ledger.chunks_on(node).to_vec();
            for &chunk in &chunks {
                self.chunk_block_up(chunk);
            }
            // Redundancy (and decode sources) came back: deferred repairs of
            // the chunks this node participates in may be able to run now.
            let mut seen = std::collections::HashSet::new();
            for chunk in chunks {
                if seen.insert(chunk) {
                    self.maybe_repair(q, now, chunk);
                }
            }
        }
        let session = self.churn.sessions.sample_session(&mut self.rng);
        q.schedule_after(
            SimTime::from_secs_f64(session),
            MaintenanceEvent::Depart {
                node,
                session: self.session_gen[node],
            },
        );
    }

    fn on_declare(
        &mut self,
        q: &mut EventQueue<MaintenanceEvent>,
        now: SimTime,
        node: NodeRef,
        generation: u64,
    ) {
        if !self.detector.confirm(node, generation) {
            return;
        }
        self.declared[node] = true;
        for loss in self.ledger.remove_node(node) {
            if loss.survivors < self.ledger.needed(loss.chunk) {
                self.write_off(loss.chunk);
            } else {
                self.maybe_repair(q, now, loss.chunk);
            }
        }
    }

    fn on_repair_done(
        &mut self,
        q: &mut EventQueue<MaintenanceEvent>,
        now: SimTime,
        chunk: u32,
        placements: Vec<(NodeRef, ByteSize)>,
        traffic: ByteSize,
    ) {
        let blocks = placements.len() as u64;
        self.scheduler.complete(blocks);
        let ci = chunk as usize;
        self.in_flight[ci] = self.in_flight[ci].saturating_sub(blocks as u32);
        let mut placed = 0u64;
        if !self.ledger.is_lost(chunk) {
            for (node, size) in placements {
                // The target must still be alive and still have the space it
                // had at scheduling time; the reservation charges its capacity
                // so future can_store probes see regenerated blocks.
                if self.cluster.overlay().is_alive(node)
                    && self.cluster.node_mut(node).reserve(size).is_ok()
                {
                    self.ledger.place_block(chunk, node, size);
                    self.chunk_block_up(chunk);
                    placed += 1;
                } else {
                    self.metrics.repairs_dropped += 1;
                }
            }
        } else {
            self.metrics.repairs_dropped += blocks;
        }
        // The transfers happened whether or not every placement stuck.
        self.metrics.record_repair(traffic, placed);
        if !self.ledger.is_lost(chunk) {
            self.maybe_repair(q, now, chunk);
        }
    }

    fn on_sample(&mut self, q: &mut EventQueue<MaintenanceEvent>, now: SimTime) {
        self.metrics.record_sample(
            MaintenanceSample {
                at: now,
                files_unavailable: self.files_unavailable,
                files_lost: self.metrics.files_lost,
                repair_bytes: self.metrics.repair_bytes,
                repairs_in_flight: self.scheduler.in_flight(),
            },
            self.ledger.file_count() as u64,
        );
        q.schedule_after(self.sample_period, MaintenanceEvent::Sample);
    }

    /// Decide whether (and how much) to regenerate for `chunk`, and charge the
    /// transfers.  Defers silently when decode sources or placement targets are
    /// not currently available — the next return/declaration/completion event
    /// touching the chunk retries.
    fn maybe_repair(&mut self, q: &mut EventQueue<MaintenanceEvent>, now: SimTime, chunk: u32) {
        let ci = chunk as usize;
        if self.ledger.is_lost(chunk) {
            return;
        }
        let needed = self.ledger.needed(chunk);
        let placed = self.ledger.blocks(chunk).len();
        let want = self.scheduler.policy().blocks_wanted(
            placed,
            self.in_flight[ci] as usize,
            needed,
            self.target_blocks[ci] as usize,
        );
        if want == 0 {
            return;
        }
        // Decode sources: `needed` distinct live holders of the chunk's blocks.
        let mut sources: Vec<NodeRef> = Vec::with_capacity(needed);
        for (node, _) in self.ledger.blocks(chunk) {
            if self.cluster.overlay().is_alive(*node) && !sources.contains(node) {
                sources.push(*node);
                if sources.len() == needed {
                    break;
                }
            }
        }
        if sources.len() < needed {
            // Not decodable right now: retry at the next probe boundary (a
            // holder returning earlier also retries).
            self.schedule_retry(q, chunk);
            return;
        }
        // Placement targets through the placement strategy: a rebuilt block
        // never collocates with a registered block of its chunk, and with a
        // topology in play, domains already at the chunk's block cap are
        // excluded (so repair re-placement preserves the original spread).
        let size = self.block_size[ci];
        let holders: Vec<NodeRef> = self.ledger.blocks(chunk).iter().map(|(n, _)| *n).collect();
        let domain_cap = if self.topology.is_some() {
            (self.target_blocks[ci] as usize)
                .saturating_sub(needed)
                .max(1)
        } else {
            usize::MAX
        };
        let request = RepairRequest {
            want,
            size,
            holders: &holders,
            domain_cap,
        };
        let targets = self.placement.repair_targets(
            &self.cluster,
            self.topology.as_ref(),
            &request,
            &mut self.rng,
        );
        if targets.is_empty() {
            self.schedule_retry(q, chunk);
            return;
        }
        let plan = self
            .scheduler
            .schedule(chunk, size, &sources, &targets, now);
        self.in_flight[ci] += plan.placements.len() as u32;
        q.schedule_at(
            plan.done_at,
            MaintenanceEvent::RepairDone {
                chunk,
                placements: plan.placements,
                traffic: plan.traffic,
            },
        );
    }

    /// Queue a deferred-repair retry for `chunk` one probe period out (at most
    /// one pending retry per chunk, so deferrals cannot flood the queue).
    fn schedule_retry(&mut self, q: &mut EventQueue<MaintenanceEvent>, chunk: u32) {
        let ci = chunk as usize;
        if self.retry_pending[ci] {
            return;
        }
        self.retry_pending[ci] = true;
        let period = SimTime::from_secs_f64(self.detector.config().probe_period_secs.max(60.0));
        q.schedule_after(period, MaintenanceEvent::RetryRepair(chunk));
    }

    /// A block of `chunk` went offline (its holder departed).
    fn chunk_block_down(&mut self, chunk: u32) {
        let ci = chunk as usize;
        if self.ledger.is_lost(chunk) {
            return;
        }
        let needed = self.ledger.needed(chunk) as u32;
        let was_ok = self.alive_blocks[ci] >= needed;
        self.alive_blocks[ci] = self.alive_blocks[ci].saturating_sub(1);
        if was_ok && self.alive_blocks[ci] < needed {
            let fi = self.ledger.file_of(chunk) as usize;
            self.file_failed_chunks[fi] += 1;
            if self.file_failed_chunks[fi] == 1 {
                self.files_unavailable += 1;
            }
        }
    }

    /// A block of `chunk` came (back) online.
    fn chunk_block_up(&mut self, chunk: u32) {
        let ci = chunk as usize;
        if self.ledger.is_lost(chunk) {
            return;
        }
        let needed = self.ledger.needed(chunk) as u32;
        let was_ok = self.alive_blocks[ci] >= needed;
        self.alive_blocks[ci] += 1;
        if !was_ok && self.alive_blocks[ci] >= needed {
            let fi = self.ledger.file_of(chunk) as usize;
            self.file_failed_chunks[fi] = self.file_failed_chunks[fi].saturating_sub(1);
            if self.file_failed_chunks[fi] == 0 {
                self.files_unavailable = self.files_unavailable.saturating_sub(1);
            }
        }
    }

    /// `chunk` fell below its decode threshold with its lost blocks written
    /// off: the data is gone for good.
    fn write_off(&mut self, chunk: u32) {
        if self.ledger.is_lost(chunk) {
            return;
        }
        self.ledger.mark_lost(chunk);
        let fi = self.ledger.file_of(chunk) as usize;
        self.file_lost_chunks[fi] += 1;
        self.metrics.record_loss(
            self.ledger.chunk_size(chunk),
            self.file_lost_chunks[fi] == 1,
        );
        // A lost chunk is unavailable forever; freeze it into the availability
        // accounting (it was already below threshold — losing placed blocks
        // implies losing live ones — so nothing to transition here).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BandwidthBudget, DetectorConfig, RepairPolicy, SessionModel};
    use peerstripe_core::{
        ClusterConfig, CodingPolicy, PeerStripe, PeerStripeConfig, StorageSystem,
    };
    use peerstripe_trace::{CapacityModel, FileRecord};

    fn loaded(nodes: usize, files: usize, seed: u64) -> PeerStripe {
        let mut rng = DetRng::new(seed);
        let cluster = ClusterConfig {
            nodes,
            capacity: CapacityModel::Fixed(ByteSize::gb(2)),
            report_fraction: 1.0,
            track_objects: true,
        }
        .build(&mut rng);
        let mut ps = PeerStripe::new(
            cluster,
            PeerStripeConfig::default().with_coding(CodingPolicy::online_default()),
        );
        for i in 0..files {
            assert!(ps
                .store_file(&FileRecord::new(format!("file-{i}"), ByteSize::mb(200)))
                .is_stored());
        }
        ps
    }

    fn config(policy: RepairPolicy, timeout_secs: f64) -> RepairConfig {
        RepairConfig {
            policy,
            detector: DetectorConfig {
                probe_period_secs: 60.0,
                detection_lag_secs: 10.0,
                permanence_timeout_secs: timeout_secs,
            },
            bandwidth: BandwidthBudget::symmetric(ByteSize::mb(8)),
            sample_period_secs: 1_800.0,
        }
    }

    fn churn(permanent_fraction: f64) -> ChurnProcess {
        ChurnProcess {
            sessions: SessionModel::Synthetic {
                mean_session_secs: 4.0 * 3_600.0,
                mean_downtime_secs: 2.0 * 3_600.0,
            },
            permanent_fraction,
            grouped: None,
        }
    }

    fn engine(policy: RepairPolicy, permanent_fraction: f64, seed: u64) -> MaintenanceEngine {
        let ps = loaded(80, 60, seed);
        let manifests = ps.manifests().clone();
        MaintenanceEngine::new(
            ps.into_cluster(),
            &manifests,
            churn(permanent_fraction),
            // Permanence timeout well past the 2 h mean downtime, as a sanely
            // operated deployment would set it.
            config(policy, 12.0 * 3_600.0),
            seed,
        )
    }

    #[test]
    fn pure_transient_churn_loses_nothing_without_declarations() {
        // Permanence timeout far beyond every downtime and no permanent
        // departures: the engine must ride out the churn with zero loss and
        // zero repair traffic.
        let ps = loaded(60, 40, 5);
        let manifests = ps.manifests().clone();
        let mut engine = MaintenanceEngine::new(
            ps.into_cluster(),
            &manifests,
            churn(0.0),
            config(RepairPolicy::Eager, 1e9),
            5,
        );
        engine.run_for(SimTime::from_secs(48 * 3_600));
        let report = engine.report();
        assert!(report.events > 100, "churn must actually happen");
        assert_eq!(report.files_lost, 0);
        assert_eq!(report.repair_bytes, ByteSize::ZERO);
        assert_eq!(report.permanent_failures, 0);
        assert!(report.transient_departures > 0);
        assert!(report.availability_mean_pct <= 100.0);
        assert!(report.availability_min_pct >= 0.0);
    }

    #[test]
    fn permanent_failures_trigger_bandwidth_charged_repairs() {
        let mut engine = engine(RepairPolicy::Eager, 0.05, 7);
        engine.run_for(SimTime::from_secs(48 * 3_600));
        let report = engine.report();
        assert!(report.permanent_failures > 0);
        assert!(
            report.blocks_regenerated > 0,
            "declared losses must be repaired: {report:?}"
        );
        assert!(report.repair_bytes > ByteSize::ZERO);
        assert!(report.repair_per_useful_byte > 0.0);
        // Eager repair keeps durability high under moderate permanent churn.
        assert!(
            report.files_lost < report.files_total / 2,
            "repair must save most files: {report:?}"
        );
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let mut a = engine(RepairPolicy::Lazy { margin: 1 }, 0.05, 11);
        let mut b = engine(RepairPolicy::Lazy { margin: 1 }, 0.05, 11);
        a.run_for(SimTime::from_secs(24 * 3_600));
        b.run_for(SimTime::from_secs(24 * 3_600));
        let (ra, rb) = (a.report(), b.report());
        assert_eq!(ra.events, rb.events);
        assert_eq!(ra.repair_bytes, rb.repair_bytes);
        assert_eq!(ra.files_lost, rb.files_lost);
        assert_eq!(ra.false_declarations, rb.false_declarations);
        assert_eq!(ra.transient_departures, rb.transient_departures);
    }

    #[test]
    fn aggressive_timeouts_cause_false_declarations() {
        // A 5-minute permanence timeout against multi-hour downtimes: nearly
        // every transient departure is falsely declared dead.
        let ps = loaded(60, 40, 13);
        let manifests = ps.manifests().clone();
        let mut engine = MaintenanceEngine::new(
            ps.into_cluster(),
            &manifests,
            churn(0.0),
            config(RepairPolicy::Eager, 300.0),
            13,
        );
        engine.run_for(SimTime::from_secs(48 * 3_600));
        let report = engine.report();
        assert!(
            report.false_declarations > 0,
            "short timeout must misfire: {report:?}"
        );
        assert!(
            report.repair_bytes > ByteSize::ZERO,
            "false declarations cost repair traffic"
        );
    }

    #[test]
    fn group_outages_take_whole_domains_down_and_bring_them_back() {
        use peerstripe_placement::Topology;
        // Individual sessions so long they never expire inside the run: every
        // departure in this simulation is a group outage.
        let ps = loaded(60, 40, 21);
        let manifests = ps.manifests().clone();
        let topology = Topology::uniform_groups(60, 10);
        let churn = ChurnProcess {
            sessions: SessionModel::Synthetic {
                mean_session_secs: 1e12,
                mean_downtime_secs: 3_600.0,
            },
            permanent_fraction: 0.0,
            grouped: Some(crate::GroupedChurn::new(topology.clone(), 8.0, 3.0)),
        };
        let mut engine = MaintenanceEngine::new(
            ps.into_cluster(),
            &manifests,
            churn,
            // Timeout far beyond every outage: nothing is ever declared dead.
            config(RepairPolicy::Eager, 1e9),
            21,
        );
        engine.run_for(SimTime::from_secs(72 * 3_600));
        let report = engine.report();
        assert!(report.group_outages > 0, "outages must fire: {report:?}");
        assert!(report.group_departures > 0);
        assert_eq!(report.transient_departures, 0, "sessions never expire");
        assert_eq!(report.permanent_failures, 0);
        assert_eq!(report.files_lost, 0, "outages are transient");
        assert_eq!(report.repair_bytes, ByteSize::ZERO, "nothing declared dead");
        assert!(
            report.availability_min_pct < 100.0,
            "outages hurt availability"
        );
        assert!(engine.accounting_is_consistent());
        // Every down node sits in a domain currently in outage: group events
        // touch exactly their members.
        for node in 0..60 {
            if !engine.cluster().overlay().is_alive(node) {
                let domain = topology.domain_of(node).unwrap();
                assert!(
                    engine.group_outage_active(domain),
                    "node {node} is down outside an outage of its domain"
                );
            }
        }
    }

    #[test]
    fn aggressive_timeouts_turn_group_outages_into_declaration_waves() {
        use peerstripe_placement::Topology;
        let ps = loaded(60, 40, 23);
        let manifests = ps.manifests().clone();
        let churn = ChurnProcess {
            sessions: SessionModel::Synthetic {
                mean_session_secs: 1e12,
                mean_downtime_secs: 3_600.0,
            },
            permanent_fraction: 0.0,
            // 12 h outages against a 2 h permanence timeout: every outage
            // writes the whole domain off and triggers a regeneration wave.
            grouped: Some(crate::GroupedChurn::new(
                Topology::uniform_groups(60, 10),
                24.0,
                12.0,
            )),
        };
        let mut engine = MaintenanceEngine::new(
            ps.into_cluster(),
            &manifests,
            churn,
            config(RepairPolicy::Eager, 2.0 * 3_600.0),
            23,
        );
        engine.run_for(SimTime::from_secs(72 * 3_600));
        let report = engine.report();
        assert!(report.group_outages > 0);
        assert!(
            report.false_declarations > 0,
            "returning domains were written off: {report:?}"
        );
        assert!(report.repair_bytes > ByteSize::ZERO);
        assert!(engine.accounting_is_consistent());
    }

    #[test]
    fn grouped_runs_are_deterministic_and_stack_with_individual_churn() {
        use peerstripe_placement::{DomainSpread, Topology};
        let build = || {
            let ps = loaded(80, 60, 29);
            let manifests = ps.manifests().clone();
            let topology = Topology::uniform_groups(80, 8);
            let churn = ChurnProcess {
                sessions: SessionModel::Synthetic {
                    mean_session_secs: 6.0 * 3_600.0,
                    mean_downtime_secs: 2.0 * 3_600.0,
                },
                permanent_fraction: 0.02,
                grouped: Some(crate::GroupedChurn::new(topology.clone(), 16.0, 6.0)),
            };
            MaintenanceEngine::new(
                ps.into_cluster(),
                &manifests,
                churn,
                config(RepairPolicy::Eager, 12.0 * 3_600.0),
                29,
            )
            .with_placement(Box::new(DomainSpread::new()), None)
        };
        let mut a = build();
        let mut b = build();
        a.run_for(SimTime::from_secs(48 * 3_600));
        b.run_for(SimTime::from_secs(48 * 3_600));
        let (ra, rb) = (a.report(), b.report());
        assert_eq!(ra.events, rb.events);
        assert_eq!(ra.repair_bytes, rb.repair_bytes);
        assert_eq!(ra.group_outages, rb.group_outages);
        assert_eq!(ra.files_lost, rb.files_lost);
        // Both churn processes actually ran.
        assert!(ra.transient_departures > 0);
        assert!(ra.group_departures > 0);
        assert!(
            a.topology().is_some(),
            "grouped topology auto-wires placement"
        );
        assert!(a.accounting_is_consistent());
    }

    #[test]
    fn run_for_composes() {
        let mut a = engine(RepairPolicy::Eager, 0.05, 17);
        let mut b = engine(RepairPolicy::Eager, 0.05, 17);
        a.run_for(SimTime::from_secs(36 * 3_600));
        b.run_for(SimTime::from_secs(12 * 3_600));
        b.run_for(SimTime::from_secs(24 * 3_600));
        assert_eq!(a.report().events, b.report().events);
        assert_eq!(a.report().repair_bytes, b.report().repair_bytes);
    }
}
