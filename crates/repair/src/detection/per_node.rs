//! The per-node permanence-timeout policy: the classic failure detector.
//!
//! A departure at time `t` is *noticed* at the next probe boundary after `t`
//! plus the configured detection lag, and *declared permanent* once the node
//! has been away for the permanence timeout.  Declarations are guarded by a
//! per-node generation counter so that a node returning before its declaration
//! fires invalidates the stale event instead of being written off.  Every node
//! is judged independently — which is exactly the behaviour the outage-aware
//! policy exists to improve on when absences are correlated.

use super::{schedule_declaration, DeclarationVerdict, DetectionPolicy, DownTracker};
use crate::config::DetectorConfig;
use crate::detection::PendingDeclaration;
use peerstripe_overlay::NodeRef;
use peerstripe_sim::SimTime;

/// Tracks which nodes are down and validates declaration events, one node at
/// a time.
#[derive(Debug, Clone)]
pub struct PerNodeTimeout {
    config: DetectorConfig,
    tracker: DownTracker,
}

impl PerNodeTimeout {
    /// Create a detector for `nodes` participants.
    pub fn new(nodes: usize, config: DetectorConfig) -> Self {
        assert!(
            config.probe_period_secs > 0.0,
            "probe period must be positive"
        );
        PerNodeTimeout {
            config,
            tracker: DownTracker::new(nodes),
        }
    }

    /// True if the node is still down *and* the declaration belongs to the
    /// current down period (not a stale event from before a return).
    pub fn confirm(&self, node: NodeRef, generation: u64) -> bool {
        self.tracker.confirm(node, generation)
    }
}

impl DetectionPolicy for PerNodeTimeout {
    fn config(&self) -> &DetectorConfig {
        &self.config
    }

    fn node_down(&mut self, node: NodeRef, now: SimTime) -> PendingDeclaration {
        let generation = self.tracker.down(node, now);
        schedule_declaration(&self.config, now, generation)
    }

    fn node_up(&mut self, node: NodeRef, _now: SimTime) {
        self.tracker.up(node);
    }

    fn decide(&mut self, node: NodeRef, generation: u64, _now: SimTime) -> DeclarationVerdict {
        if self.tracker.confirm(node, generation) {
            DeclarationVerdict::Declare
        } else {
            DeclarationVerdict::Cancel
        }
    }

    fn down_since(&self, node: NodeRef) -> Option<SimTime> {
        self.tracker.down_since(node)
    }

    fn label(&self) -> String {
        "per-node".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> PerNodeTimeout {
        PerNodeTimeout::new(
            4,
            DetectorConfig {
                probe_period_secs: 100.0,
                detection_lag_secs: 10.0,
                permanence_timeout_secs: 1_000.0,
                retry_floor_secs: 60.0,
            },
        )
    }

    #[test]
    fn detection_aligns_to_the_next_probe() {
        let mut d = detector();
        let pending = d.node_down(0, SimTime::from_secs(250));
        // Down at 250 → probed at 300 → reported at 310.
        assert_eq!(pending.detected_at, SimTime::from_secs(310));
        // Declaration waits for the permanence timeout (250 + 1000).
        assert_eq!(pending.declare_at, SimTime::from_secs(1250));
        assert_eq!(d.down_since(0), Some(SimTime::from_secs(250)));
    }

    #[test]
    fn short_timeout_is_dominated_by_detection() {
        let mut d = PerNodeTimeout::new(
            1,
            DetectorConfig {
                probe_period_secs: 100.0,
                detection_lag_secs: 10.0,
                permanence_timeout_secs: 5.0,
                retry_floor_secs: 60.0,
            },
        );
        let pending = d.node_down(0, SimTime::from_secs(250));
        // The timeout expires before the probe even notices the departure, so
        // the declaration cannot fire earlier than detection.
        assert_eq!(pending.declare_at, SimTime::from_secs(310));
    }

    #[test]
    fn returns_invalidate_pending_declarations() {
        let mut d = detector();
        let pending = d.node_down(2, SimTime::from_secs(50));
        assert!(d.confirm(2, pending.generation));
        d.node_up(2, SimTime::from_secs(60));
        assert!(!d.confirm(2, pending.generation), "stale generation");
        assert_eq!(d.down_since(2), None);
        // A fresh down period gets a fresh generation.
        let second = d.node_down(2, SimTime::from_secs(500));
        assert_ne!(second.generation, pending.generation);
        assert!(d.confirm(2, second.generation));
        assert!(!d.confirm(2, pending.generation));
    }

    #[test]
    fn verdicts_mirror_confirmation() {
        let mut d = detector();
        let pending = d.node_down(1, SimTime::from_secs(10));
        assert_eq!(
            d.decide(1, pending.generation, pending.declare_at),
            DeclarationVerdict::Declare
        );
        d.node_up(1, SimTime::from_secs(20));
        assert_eq!(
            d.decide(1, pending.generation, pending.declare_at),
            DeclarationVerdict::Cancel,
            "a return cancels the held declaration"
        );
    }
}
